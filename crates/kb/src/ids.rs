//! Compact, type-safe identifiers.
//!
//! Entities and types are referred to by dense `u32` indexes throughout the
//! pipeline; the newtypes below prevent accidentally indexing one table with
//! the other's id — a real hazard in the extraction counters where both
//! appear side by side.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an entity within a [`crate::KnowledgeBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of an entity type within a [`crate::KnowledgeBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl EntityId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(TypeId(9).to_string(), "t9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(TypeId(0) < TypeId(10));
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(EntityId(7).index(), 7);
        assert_eq!(TypeId(5).index(), 5);
    }
}
