//! Process-global property interner: [`Property`] ↔ [`PropertyId`].
//!
//! The extraction hot path emits one statement per matched pattern, and the
//! counters used to key on an owned [`Property`] — a heap clone per recorded
//! statement *and* per lookup. Interning assigns each distinct property a
//! dense `u32` id exactly once, so the hot structures key on
//! `(EntityId, PropertyId)`: two machine words, hashed in a few cycles,
//! with no allocation anywhere on the per-sentence path.
//!
//! # Contention model
//!
//! The global table is *sharded*: properties are distributed over
//! 16 independent `RwLock`ed shards keyed by the head
//! adjective, so concurrent workers interning different vocabulary never
//! serialize on one lock. On top of that, each worker carries a private
//! [`InternCache`] — an `FxHashMap` of every surface (and every resolved
//! id) it has seen. After the first few documents the corpus vocabulary is
//! fully cached and the steady-state hot path (`InternCache::intern_surface`
//! on a repeat surface) takes **zero locks**: a single local hash probe,
//! no atomics, no shared memory writes. The cache counts its hits and its
//! global-table fallbacks ([`CacheStats`]) so a run report can prove the
//! steady state was actually lock-free.
//!
//! Id values are process-local and depend on discovery order — which, under
//! parallel extraction, depends on thread interleaving. They are therefore
//! never serialized and never used as a sort key where cross-run
//! determinism matters: serialization codecs resolve ids back to properties
//! and order entries by the resolved form, and deserialization re-interns.
//! Within one process the mapping is stable, so id-keyed maps compare
//! consistently.
//!
//! The table only grows (interned properties are never freed); the property
//! vocabulary of a corpus is small, so this is by design.

use crate::property::Property;
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of an interned [`Property`].
///
/// Deliberately not `Ord`: numeric values reflect discovery order, not any
/// property ordering. Resolve before sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropertyId(pub u32);

/// Number of independent lock shards in the global table. Distinct head
/// adjectives spread over shards, so workers interning different
/// vocabulary take different locks; a power of two keeps the modulo a
/// mask.
const SHARD_COUNT: usize = 16;

/// One shard's maps. A property and its canonical surface always live in
/// the same shard (both hash the head adjective), so an insert updates
/// both maps under a single shard lock.
#[derive(Default)]
struct Shard {
    by_property: FxHashMap<Property, u32>,
    /// Canonical surface form ("very big") → id: the zero-allocation entry
    /// point for surfaces assembled in a scratch buffer.
    by_surface: FxHashMap<String, u32>,
}

/// The sharded global table. Ids are dense across shards: allocation
/// appends to `properties` under its own lock, always acquired *after*
/// the owning shard's write lock (and never the other way around), so the
/// two-level locking cannot deadlock.
struct Sharded {
    shards: [RwLock<Shard>; SHARD_COUNT],
    properties: RwLock<Vec<Property>>,
}

fn table() -> &'static Sharded {
    static TABLE: OnceLock<Sharded> = OnceLock::new();
    TABLE.get_or_init(|| Sharded {
        shards: std::array::from_fn(|_| RwLock::new(Shard::default())),
        properties: RwLock::new(Vec::new()),
    })
}

/// FNV-1a over the adjective bytes → shard index. Both entry points hash
/// the same key — `Property::head()` and the last word of a canonical
/// surface are the same string — so lookups by either form land in the
/// shard that holds the entry.
fn shard_of(adjective: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in adjective.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash as usize) & (SHARD_COUNT - 1)
}

/// Inserts `property` into its shard, allocating a fresh dense id unless a
/// racing thread got there first. The caller has already missed on a read
/// probe.
fn insert(property: &Property) -> u32 {
    let mut shard = table().shards[shard_of(property.head())].write();
    // Re-check under the write lock: a racing thread may have inserted
    // between our read probe and here. Without this, the same property
    // could be assigned two ids.
    if let Some(&id) = shard.by_property.get(property) {
        return id;
    }
    let id = {
        let mut properties = table().properties.write();
        let id = u32::try_from(properties.len()).expect("property interner overflow"); // lint:allow(no-panic-in-lib): a corpus cannot reach 2^32 distinct properties
        properties.push(property.clone());
        id
    };
    shard.by_property.insert(property.clone(), id);
    shard.by_surface.insert(property.to_string(), id);
    id
}

impl PropertyId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Interns a property, returning its stable id (idempotent).
    pub fn intern(property: &Property) -> Self {
        let shard = &table().shards[shard_of(property.head())];
        if let Some(&id) = shard.read().by_property.get(property) {
            return PropertyId(id);
        }
        PropertyId(insert(property))
    }

    /// The id `property` already has, if it was ever interned.
    ///
    /// Read-only queries (evidence counts, provenance, opinions) use this so
    /// probing for never-extracted properties cannot grow the table.
    pub fn lookup(property: &Property) -> Option<Self> {
        table().shards[shard_of(property.head())]
            .read()
            .by_property
            .get(property)
            .map(|&id| PropertyId(id))
    }

    /// Interns a canonical surface form (lowercase words separated by single
    /// spaces, e.g. `"very big"`); allocation-free when the surface was seen
    /// before. Returns `None` for a blank surface.
    pub fn intern_surface(surface: &str) -> Option<Self> {
        let adjective = surface.split_whitespace().next_back()?;
        let shard = &table().shards[shard_of(adjective)];
        if let Some(&id) = shard.read().by_surface.get(surface) {
            return Some(PropertyId(id));
        }
        let property = Property::parse(surface)?;
        Some(PropertyId(insert(&property)))
    }

    /// The property behind this id.
    ///
    /// # Panics
    /// Panics on an id that did not come from this process's interner.
    pub fn resolve(self) -> Property {
        table().properties.read()[self.index()].clone()
    }
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Hit/fallback tallies for one [`InternCache`]. Merged across workers and
/// flushed as `extract.intern.*` counters, these prove whether the
/// steady-state extraction path touched the global table at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the worker-local cache — zero locks taken.
    pub hits: u64,
    /// Probes that fell through to the sharded global table.
    pub global_lookups: u64,
}

impl CacheStats {
    /// Merges another worker's tallies into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.global_lookups += other.global_lookups;
    }
}

/// A worker-local interner cache: surface → id and id → property, with no
/// locks on a hit.
///
/// Extraction workers thread one of these through the per-sentence pattern
/// matcher. The corpus vocabulary is small and heavily repeated, so after
/// warm-up every probe is a hit and the worker never touches the global
/// table — the property on the steady-state hot path costs one local hash
/// probe and nothing else.
///
/// The cache is append-consistent with the global table by construction:
/// it only stores ids the global table handed out, and the global table
/// never reassigns an id.
#[derive(Debug, Default)]
pub struct InternCache {
    by_surface: FxHashMap<String, PropertyId>,
    /// Dense id → resolved property, grown on demand.
    resolved: Vec<Option<Property>>,
    stats: CacheStats,
}

impl InternCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a canonical surface form through the cache. A repeat
    /// surface is answered locally without touching the global table;
    /// a novel one falls through to [`PropertyId::intern_surface`] and is
    /// remembered. Returns `None` for a blank surface.
    pub fn intern_surface(&mut self, surface: &str) -> Option<PropertyId> {
        if let Some(&id) = self.by_surface.get(surface) {
            self.stats.hits += 1;
            return Some(id);
        }
        let id = PropertyId::intern_surface(surface)?;
        self.stats.global_lookups += 1;
        self.by_surface.insert(surface.to_owned(), id);
        Some(id)
    }

    /// Makes `id` resolvable via [`peek`](Self::peek) without another
    /// global-table read.
    pub fn ensure_resolved(&mut self, id: PropertyId) {
        let index = id.index();
        if index >= self.resolved.len() {
            self.resolved.resize(index + 1, None);
        }
        if self.resolved[index].is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.global_lookups += 1;
            self.resolved[index] = Some(id.resolve());
        }
    }

    /// The cached property behind `id`, if [`Self::ensure_resolved`]
    /// has seen it. Immutable, so it can be used
    /// inside sort comparators.
    pub fn peek(&self, id: PropertyId) -> Option<&Property> {
        self.resolved.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Resolves `id` through the cache: a global-table read the first
    /// time, local thereafter.
    pub fn resolve(&mut self, id: PropertyId) -> &Property {
        self.ensure_resolved(id);
        match &self.resolved[id.index()] {
            Some(property) => property,
            None => unreachable!("ensure_resolved fills the slot"), // lint:allow(panic-reachability): filled one line up
        }
    }

    /// The cache's hit/fallback tallies so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

// Serialized as the resolved property (ids are process-local and must never
// reach disk); deserialization re-interns. Derived codecs on id-carrying
// structs therefore keep the same JSON shapes as before interning.
impl serde::Serialize for PropertyId {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.resolve())
    }
}

impl serde::Deserialize for PropertyId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let property: Property = serde::Deserialize::from_value(v)?;
        Ok(PropertyId::intern(&property))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let p = Property::with_adverbs(&["very"], "fluffy");
        let a = PropertyId::intern(&p);
        let b = PropertyId::intern(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let p = Property::with_adverbs(&["really", "very"], "intern-small");
        assert_eq!(PropertyId::intern(&p).resolve(), p);
    }

    #[test]
    fn distinct_properties_get_distinct_ids() {
        let a = PropertyId::intern(&Property::adjective("intern-big"));
        let b = PropertyId::intern(&Property::with_adverbs(&["very"], "intern-big"));
        assert_ne!(a, b);
    }

    #[test]
    fn surface_and_property_paths_agree() {
        let p = Property::with_adverbs(&["densely"], "intern-populated");
        let by_property = PropertyId::intern(&p);
        let by_surface = PropertyId::intern_surface("densely intern-populated").unwrap();
        assert_eq!(by_property, by_surface);
        assert_eq!(by_surface.resolve(), p);
    }

    #[test]
    fn blank_surface_is_none() {
        assert_eq!(PropertyId::intern_surface(""), None);
        assert_eq!(PropertyId::intern_surface("   "), None);
    }

    #[test]
    fn lookup_does_not_insert() {
        let novel = Property::adjective("intern-never-extracted");
        assert_eq!(PropertyId::lookup(&novel), None);
        let id = PropertyId::intern(&novel);
        assert_eq!(PropertyId::lookup(&novel), Some(id));
    }

    #[test]
    fn ids_stay_dense_across_shards() {
        // Adjectives chosen to hash into different shards; every id must
        // still resolve, i.e. the dense properties vec has no holes.
        for i in 0..40 {
            let p = Property::adjective(&format!("intern-dense-{i}"));
            let id = PropertyId::intern(&p);
            assert_eq!(id.resolve(), p);
        }
    }

    #[test]
    fn cache_agrees_with_global_and_counts_hits() {
        let mut cache = InternCache::new();
        let a = cache.intern_surface("very intern-cached").unwrap();
        assert_eq!(cache.stats().global_lookups, 1);
        assert_eq!(cache.stats().hits, 0);
        // Repeat probe: a pure local hit.
        let b = cache.intern_surface("very intern-cached").unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().global_lookups, 1);
        // And it agrees with the uncached path.
        assert_eq!(PropertyId::intern_surface("very intern-cached").unwrap(), a);
        assert_eq!(cache.intern_surface(" "), None);
    }

    #[test]
    fn cache_resolve_is_local_after_first_read() {
        let p = Property::adjective("intern-cache-resolve");
        let id = PropertyId::intern(&p);
        let mut cache = InternCache::new();
        assert_eq!(cache.peek(id), None);
        assert_eq!(cache.resolve(id), &p);
        let lookups = cache.stats().global_lookups;
        assert_eq!(cache.resolve(id), &p);
        assert_eq!(
            cache.stats().global_lookups,
            lookups,
            "second resolve hit the global table"
        );
        assert_eq!(cache.peek(id), Some(&p));
    }

    #[test]
    fn cache_stats_merge_sums() {
        let mut a = CacheStats {
            hits: 2,
            global_lookups: 1,
        };
        a.merge(CacheStats {
            hits: 3,
            global_lookups: 4,
        });
        assert_eq!(
            a,
            CacheStats {
                hits: 5,
                global_lookups: 5,
            }
        );
    }

    #[test]
    fn serde_goes_through_the_property() {
        use serde::{Deserialize, Serialize};
        let p = Property::with_adverbs(&["very"], "intern-serde");
        let id = PropertyId::intern(&p);
        // The value tree is the property's, not a raw number.
        assert_eq!(Serialize::to_value(&id), Serialize::to_value(&p));
        let back = PropertyId::from_value(&Serialize::to_value(&id)).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn display_form() {
        let id = PropertyId::intern(&Property::adjective("intern-display"));
        assert_eq!(id.to_string(), format!("p{}", id.0));
    }
}
