//! Process-global property interner: [`Property`] ↔ [`PropertyId`].
//!
//! The extraction hot path emits one statement per matched pattern, and the
//! counters used to key on an owned [`Property`] — a heap clone per recorded
//! statement *and* per lookup. Interning assigns each distinct property a
//! dense `u32` id exactly once, so the hot structures key on
//! `(EntityId, PropertyId)`: two machine words, hashed in a few cycles,
//! with no allocation anywhere on the per-sentence path.
//!
//! Id values are process-local and depend on discovery order — which, under
//! parallel extraction, depends on thread interleaving. They are therefore
//! never serialized and never used as a sort key where cross-run
//! determinism matters: serialization codecs resolve ids back to properties
//! and order entries by the resolved form, and deserialization re-interns.
//! Within one process the mapping is stable, so id-keyed maps compare
//! consistently.
//!
//! The table only grows (interned properties are never freed); the property
//! vocabulary of a corpus is small, so this is by design.

use crate::property::Property;
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of an interned [`Property`].
///
/// Deliberately not `Ord`: numeric values reflect discovery order, not any
/// property ordering. Resolve before sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropertyId(pub u32);

#[derive(Default)]
struct Interner {
    by_property: FxHashMap<Property, u32>,
    /// Canonical surface form ("very big") → id: the zero-allocation entry
    /// point for surfaces assembled in a scratch buffer.
    by_surface: FxHashMap<String, u32>,
    properties: Vec<Property>,
}

impl Interner {
    fn insert(&mut self, property: &Property) -> u32 {
        if let Some(&id) = self.by_property.get(property) {
            return id;
        }
        let id = u32::try_from(self.properties.len()).expect("property interner overflow"); // lint:allow(no-panic-in-lib): a corpus cannot reach 2^32 distinct properties
        self.by_property.insert(property.clone(), id);
        self.by_surface.insert(property.to_string(), id);
        self.properties.push(property.clone());
        id
    }
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

impl PropertyId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Interns a property, returning its stable id (idempotent).
    pub fn intern(property: &Property) -> Self {
        if let Some(&id) = table().read().by_property.get(property) {
            return PropertyId(id);
        }
        PropertyId(table().write().insert(property))
    }

    /// The id `property` already has, if it was ever interned.
    ///
    /// Read-only queries (evidence counts, provenance, opinions) use this so
    /// probing for never-extracted properties cannot grow the table.
    pub fn lookup(property: &Property) -> Option<Self> {
        table()
            .read()
            .by_property
            .get(property)
            .map(|&id| PropertyId(id))
    }

    /// Interns a canonical surface form (lowercase words separated by single
    /// spaces, e.g. `"very big"`); allocation-free when the surface was seen
    /// before. Returns `None` for a blank surface.
    pub fn intern_surface(surface: &str) -> Option<Self> {
        if let Some(&id) = table().read().by_surface.get(surface) {
            return Some(PropertyId(id));
        }
        let property = Property::parse(surface)?;
        Some(PropertyId(table().write().insert(&property)))
    }

    /// The property behind this id.
    ///
    /// # Panics
    /// Panics on an id that did not come from this process's interner.
    pub fn resolve(self) -> Property {
        table().read().properties[self.index()].clone()
    }
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

// Serialized as the resolved property (ids are process-local and must never
// reach disk); deserialization re-interns. Derived codecs on id-carrying
// structs therefore keep the same JSON shapes as before interning.
impl serde::Serialize for PropertyId {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.resolve())
    }
}

impl serde::Deserialize for PropertyId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let property: Property = serde::Deserialize::from_value(v)?;
        Ok(PropertyId::intern(&property))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let p = Property::with_adverbs(&["very"], "fluffy");
        let a = PropertyId::intern(&p);
        let b = PropertyId::intern(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let p = Property::with_adverbs(&["really", "very"], "intern-small");
        assert_eq!(PropertyId::intern(&p).resolve(), p);
    }

    #[test]
    fn distinct_properties_get_distinct_ids() {
        let a = PropertyId::intern(&Property::adjective("intern-big"));
        let b = PropertyId::intern(&Property::with_adverbs(&["very"], "intern-big"));
        assert_ne!(a, b);
    }

    #[test]
    fn surface_and_property_paths_agree() {
        let p = Property::with_adverbs(&["densely"], "intern-populated");
        let by_property = PropertyId::intern(&p);
        let by_surface = PropertyId::intern_surface("densely intern-populated").unwrap();
        assert_eq!(by_property, by_surface);
        assert_eq!(by_surface.resolve(), p);
    }

    #[test]
    fn blank_surface_is_none() {
        assert_eq!(PropertyId::intern_surface(""), None);
        assert_eq!(PropertyId::intern_surface("   "), None);
    }

    #[test]
    fn lookup_does_not_insert() {
        let novel = Property::adjective("intern-never-extracted");
        assert_eq!(PropertyId::lookup(&novel), None);
        let id = PropertyId::intern(&novel);
        assert_eq!(PropertyId::lookup(&novel), Some(id));
    }

    #[test]
    fn serde_goes_through_the_property() {
        use serde::{Deserialize, Serialize};
        let p = Property::with_adverbs(&["very"], "intern-serde");
        let id = PropertyId::intern(&p);
        // The value tree is the property's, not a raw number.
        assert_eq!(Serialize::to_value(&id), Serialize::to_value(&p));
        let back = PropertyId::from_value(&Serialize::to_value(&id)).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn display_form() {
        let id = PropertyId::intern(&Property::adjective("intern-display"));
        assert_eq!(id.to_string(), format!("p{}", id.0));
    }
}
