//! End-to-end fault tolerance over real sockets: a live server is
//! booted per test and driven through the failure modes the robustness
//! envelope exists for — corrupt hot reloads, worker panics, overload
//! shedding, slowloris clients, graceful shutdown — asserting each time
//! that valid queries keep answering correctly.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use surveyor::prelude::*;
use surveyor::{save_snapshot, CorpusSource, Surveyor, SurveyorConfig};
use surveyor_obs::MetricsRegistry;
use surveyor_server::{percent_encode, start, ServedState, ServerConfig, ServerHandle};

/// A tiny mined world, deterministic per seed (different seeds produce
/// different snapshots, which the reload tests rely on).
fn snapshot_bytes(seed: u64) -> Vec<u8> {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    b.add_entity("Kitten", animal).finish();
    b.add_entity("Spider", animal).finish();
    b.add_entity("Puppy", animal).finish();
    let kb = Arc::new(b.build());
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain(
            "animal",
            Property::adjective("cute"),
            DomainParams::default(),
        )
        .build();
    let generator = CorpusGenerator::new(world, CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 5,
            ..Default::default()
        },
    );
    save_snapshot(&surveyor.run(&CorpusSource::new(&generator)))
}

fn boot(config: ServerConfig) -> ServerHandle {
    let bytes = snapshot_bytes(7);
    let state = Arc::new(ServedState::from_snapshot_bytes(&bytes, 1, "test-boot").unwrap());
    start(config, state, Arc::new(MetricsRegistry::new())).unwrap()
}

fn debug_config() -> ServerConfig {
    ServerConfig {
        debug_routes: true,
        ..ServerConfig::default()
    }
}

/// One full HTTP exchange: connect, send `request` verbatim, read the
/// whole reply (the server always closes), return (status, full reply).
fn exchange(addr: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("unparseable reply: {reply:?}"));
    (status, reply)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        format!("POST {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
    )
}

/// A `/decide` path plus the expected `"positive"` value for the first
/// stored opinion of the booted snapshot.
fn known_query(handle: &ServerHandle) -> (String, bool) {
    let state = handle.shared().load();
    let block = state
        .store
        .blocks()
        .iter()
        .find(|b| !b.opinions.is_empty())
        .expect("mined world has opinions");
    let opinion = &block.opinions[0];
    // Resolve through find_opinion: /decide answers with the most
    // confident block when an entity holds the property under several
    // types, so the expected bit must come from the same resolution.
    let property = block.property.to_string();
    let (_, resolved) = state
        .store
        .find_opinion(&opinion.entity_name, &block.property)
        .expect("enumerated opinion resolves");
    let path = format!(
        "/decide/{}/{}",
        percent_encode(&opinion.entity_name),
        percent_encode(&property)
    );
    (path, resolved.positive)
}

fn assert_answers(addr: SocketAddr, query: &(String, bool)) {
    let (status, reply) = get(addr, &query.0);
    assert_eq!(status, 200, "known query failed: {reply}");
    let want = format!("\"positive\": {}", query.1);
    assert!(reply.contains(&want), "wrong verdict in {reply}");
}

#[test]
fn corrupt_reload_is_rejected_and_serving_continues() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    let query = known_query(&handle);
    assert_answers(addr, &query);

    let dir = std::env::temp_dir();
    let corrupt_path = dir.join(format!("surveyor_it_corrupt_{}.swire", std::process::id()));
    let valid_path = dir.join(format!("surveyor_it_valid_{}.swire", std::process::id()));
    let mut corrupt = snapshot_bytes(7);
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&corrupt_path, &corrupt).unwrap();
    std::fs::write(&valid_path, snapshot_bytes(11)).unwrap();

    // The corrupt candidate is rejected with a 422 and generation 1
    // keeps serving — validate-then-swap leaves no broken window.
    let (status, reply) = post(
        addr,
        &format!("/ctl/reload?path={}", corrupt_path.display()),
    );
    assert_eq!(status, 422, "corrupt reload not rejected: {reply}");
    assert!(reply.contains("\"reloaded\": false"), "{reply}");
    assert_answers(addr, &query);
    let (status, reply) = get(addr, "/readyz");
    assert_eq!(status, 200);
    assert!(reply.contains("\"generation\": 1"), "{reply}");

    // A valid candidate swaps in and bumps the generation.
    let (status, reply) = post(addr, &format!("/ctl/reload?path={}", valid_path.display()));
    assert_eq!(status, 200, "valid reload rejected: {reply}");
    assert!(reply.contains("\"generation\": 2"), "{reply}");
    let (status, reply) = get(addr, "/readyz");
    assert_eq!(status, 200);
    assert!(reply.contains("\"generation\": 2"), "{reply}");

    let registry = handle.metrics().registry().clone();
    assert_eq!(registry.counter_value("serve.reload.rejected"), 1);
    assert_eq!(registry.counter_value("serve.reload.ok"), 1);
    handle.shutdown();
    let _ = std::fs::remove_file(&corrupt_path);
    let _ = std::fs::remove_file(&valid_path);
}

#[test]
fn panic_is_isolated_to_one_request() {
    let handle = boot(debug_config());
    let addr = handle.addr();
    let query = known_query(&handle);

    let (status, reply) = post(addr, "/ctl/panic");
    assert_eq!(status, 500, "panic route should answer 500: {reply}");
    assert!(reply.contains("isolated"), "{reply}");

    // The worker pool survived; queries still answer correctly.
    assert_answers(addr, &query);
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(handle.metrics().registry().counter_value("serve.panics"), 1);
    handle.shutdown();
}

#[test]
fn overload_sheds_with_retry_after() {
    let handle = boot(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        debug_routes: true,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Wedge the single worker, then burst: capacity 1 means at most one
    // request can wait, so the rest are shed inline with Retry-After.
    let stall = std::thread::spawn(move || post(addr, "/ctl/stall?ms=600"));
    std::thread::sleep(Duration::from_millis(100));
    let replies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || get(addr, "/healthz")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed: Vec<&(u16, String)> = replies.iter().filter(|(s, _)| *s == 503).collect();
    assert!(!shed.is_empty(), "burst was not shed: {replies:?}");
    for (_, reply) in &shed {
        assert!(reply.contains("Retry-After:"), "shed without hint: {reply}");
    }
    let (status, reply) = stall.join().unwrap();
    assert_eq!(status, 200, "stalled request lost: {reply}");
    assert!(handle.metrics().registry().counter_value("serve.shed") >= 1);

    // Load lifts; the server admits requests again.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn slowloris_request_gets_408_not_a_wedged_worker() {
    let handle = boot(ServerConfig {
        request_budget: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Trickle half a request line and stop. The deadline stamped at
    // accept expires and the worker answers 408 instead of waiting on
    // the socket forever.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HT").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 408"), "got: {reply:?}");
    assert_eq!(
        handle
            .metrics()
            .registry()
            .counter_value("serve.deadline_expired"),
        1
    );

    // The worker that timed the request out is back in rotation.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_via_control_route() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    let (status, reply) = post(addr, "/ctl/shutdown");
    assert_eq!(status, 200);
    assert!(reply.contains("\"shutting_down\": true"), "{reply}");
    // join() returns only after the accept thread and every worker have
    // exited — this would hang (and the harness time out) otherwise.
    handle.join();
}

#[test]
fn protocol_errors_map_to_statuses() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    let (status, _) = exchange(addr, b"BREW /coffee HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400, "unknown method");
    let (status, _) = exchange(addr, b"not http at all\r\n\r\n");
    assert_eq!(status, 400, "garbage head");
    let (status, _) = get(addr, "/no/such/route");
    assert_eq!(status, 404, "unknown route");
    let (status, _) = post(addr, "/decide/Kitten/cute");
    assert_eq!(status, 405, "POST on a read route");
    let (status, _) = post(addr, "/ctl/panic");
    assert_eq!(status, 405, "debug route without debug_routes");
    // Blow the header-count cap (not the byte cap: that would leave
    // unread bytes in the kernel buffer and risk an RST eating the 431).
    let flooded = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        "x-pad: 0123\r\n".repeat(100)
    );
    let (status, _) = exchange(addr, flooded.as_bytes());
    assert_eq!(status, 431, "header flood");

    let registry = handle.metrics().registry().clone();
    assert!(registry.counter_value("serve.malformed") >= 3);
    handle.shutdown();
}
