//! Property-based suites for the HTTP request parser: the parser is
//! total (any byte buffer maps to `Ok` or a typed error, never a panic)
//! and valid requests round-trip through percent-encoding exactly.
//!
//! Totality is what keeps the server's per-connection `catch_unwind` a
//! last-resort backstop instead of a load-bearing control path: the
//! chaos bench can throw arbitrary bytes at a worker and the worker
//! answers `400`, it does not unwind.

use proptest::prelude::*;
use surveyor_server::{parse_head, percent_encode, Method, Request};

/// Path/query components, biased toward the troublemakers: empty-ish
/// ASCII, multibyte UTF-8, and characters that must percent-escape.
fn component() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9]{1,12}",
        "[ -~]{1,12}",
        Just("Los Angeles".to_string()),
        Just("très grand".to_string()),
        Just("ぴかぴか".to_string()),
        Just("a/b?c&d=e%f+g".to_string()),
    ]
}

fn method() -> impl Strategy<Value = Method> {
    prop_oneof![Just(Method::Get), Just(Method::Post)]
}

/// Renders a request head the way a well-behaved client would: every
/// segment and query token percent-encoded.
fn render_head(
    method: Method,
    segments: &[String],
    query: &[(String, String)],
    headers: &[String],
) -> String {
    let mut target = String::new();
    for segment in segments {
        target.push('/');
        target.push_str(&percent_encode(segment));
    }
    if target.is_empty() {
        target.push('/');
    }
    if !query.is_empty() {
        target.push('?');
        for (i, (k, v)) in query.iter().enumerate() {
            if i > 0 {
                target.push('&');
            }
            target.push_str(&percent_encode(k));
            target.push('=');
            target.push_str(&percent_encode(v));
        }
    }
    let mut head = format!("{} {target} HTTP/1.1\r\n", method.as_str());
    for (i, value) in headers.iter().enumerate() {
        head.push_str(&format!("x-h{i}: {value}\r\n"));
    }
    head.push_str("\r\n");
    head
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes parse to `Ok` or a typed error — never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = parse_head(&data);
    }

    /// Arbitrary *text* after a plausible request-line prefix — the fuzz
    /// reaches past the method/version gate into target and header
    /// parsing.
    #[test]
    fn arbitrary_suffixes_never_panic(
        prefix in prop_oneof![Just("GET "), Just("POST "), Just("")],
        suffix in "[ -~\r\n%]{0,256}",
    ) {
        let head = format!("{prefix}{suffix}");
        let _ = parse_head(head.as_bytes());
    }

    /// Single-byte corruptions of a valid head parse to `Ok` or a typed
    /// error — never a panic.
    #[test]
    fn mutated_heads_never_panic(
        method in method(),
        segments in prop::collection::vec(component(), 0..4),
        query in prop::collection::vec((component(), component()), 0..3),
        position in 0u64..u64::MAX,
        mask in 1u8..=255,
    ) {
        let mut bytes = render_head(method, &segments, &query, &[]).into_bytes();
        let index = (position % bytes.len() as u64) as usize;
        bytes[index] ^= mask;
        let _ = parse_head(&bytes);
    }

    /// A well-formed request round-trips: encode → parse recovers the
    /// method, every segment, and every query pair, in order.
    #[test]
    fn valid_requests_round_trip(
        method in method(),
        segments in prop::collection::vec(component(), 0..4),
        query in prop::collection::vec((component(), component()), 0..3),
        headers in prop::collection::vec("[ -~]{0,20}", 0..4),
    ) {
        let head = render_head(method, &segments, &query, &headers);
        let request = parse_head(head.as_bytes()).map_err(|e| {
            TestCaseError::Fail(format!("valid head rejected: {e}\n{head}"))
        })?;
        let want = Request { method, segments, query };
        prop_assert_eq!(request, want, "head was: {:?}", head);
    }

    /// `query_param` finds the first binding of a key.
    #[test]
    fn query_param_returns_first_binding(
        key in "[a-z]{1,8}",
        first in component(),
        second in component(),
    ) {
        let head = format!(
            "GET /x?{k}={a}&{k}={b} HTTP/1.1\r\n\r\n",
            k = percent_encode(&key),
            a = percent_encode(&first),
            b = percent_encode(&second),
        );
        let request = parse_head(head.as_bytes()).map_err(|e| {
            TestCaseError::Fail(format!("valid head rejected: {e}"))
        })?;
        prop_assert_eq!(request.query_param(&key), Some(first.as_str()));
    }
}
