//! The bounded accept→worker queue: the load-shedding boundary.
//!
//! Accepted connections are handed to workers through a fixed-capacity
//! queue. When it is full the accept path does **not** block and does
//! **not** buffer — it sheds the connection with an immediate `503` +
//! `Retry-After`. Overload therefore costs the server a bounded amount
//! of memory (capacity × connection handle) no matter how hard clients
//! push, which is the entire point: an overwhelmed server that answers
//! "come back later" fast stays available; one that queues without bound
//! dies of memory pressure serving nobody.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! shim carries no `Condvar`. Lock poisoning is survived, not unwrapped:
//! a panicking worker already has `catch_unwind` isolation above it, and
//! the queue's state (a `VecDeque` plus a flag) is valid after any
//! partial operation, so every acquisition goes through
//! `unwrap_or_else(PoisonError::into_inner)`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the item.
    Full(T),
    /// The queue is closed (shutdown in progress) — refuse the item.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the refused item.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(item) | Self::Closed(item) => item,
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. `Err(Full)` at capacity (the shed signal),
    /// `Err(Closed)` once [`Self::close`] has been called.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Waits for an item; returns `None` only when the
    /// queue is closed **and** drained — workers use that as their
    /// exit signal, so shutdown completes in-flight work first.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain,
    /// and every blocked consumer wakes.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-admits.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        // The queued item still comes out; then the exit signal.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
        assert!(!q.is_empty());
    }
}
