//! Per-request deadlines on the monotonic clock.
//!
//! Every accepted connection gets a [`Deadline`] stamped at accept time;
//! the remaining budget is threaded through head reading, routing, and
//! response writing as socket timeouts. The anchor is `Instant` — the
//! monotonic clock — never `SystemTime`: a wall-clock step (NTP, DST)
//! must not extend or shrink a request's budget. The single
//! `Instant::now()` read carries a lint pragma because the reading
//! bounds *service* time and never influences mined output.

use std::time::{Duration, Instant};

/// A monotonic deadline: a start anchor plus a fixed budget.
///
/// The deadline is `Copy` and carries no interior state, so it can be
/// handed across the accept → queue → worker boundary and consulted at
/// every blocking point without coordination.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// Opens a deadline with `budget` starting now.
    pub fn starting_now(budget: Duration) -> Self {
        Self {
            start: Instant::now(), // lint:allow(no-wall-clock): monotonic request-budget anchor; bounds service time only and never influences mined output
            budget,
        }
    }

    /// The budget this deadline was opened with.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Time left before the deadline, or `None` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.checked_sub(self.start.elapsed())
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }

    /// Time since the deadline was opened (drives latency histograms).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The remaining budget clamped to at least `floor` — used for
    /// best-effort writes of *error* responses (a 408 for an expired
    /// request still deserves a brief write window) without ever handing
    /// a zero timeout to the socket layer, which `std` rejects.
    pub fn write_window(&self, floor: Duration) -> Duration {
        self.remaining().unwrap_or(Duration::ZERO).max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget() {
        let d = Deadline::starting_now(Duration::from_secs(5));
        assert!(!d.expired());
        let rem = d.remaining().expect("fresh deadline");
        assert!(rem <= Duration::from_secs(5));
        assert!(rem > Duration::from_secs(4));
        assert_eq!(d.budget(), Duration::from_secs(5));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::starting_now(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn write_window_never_hits_zero() {
        let d = Deadline::starting_now(Duration::ZERO);
        assert_eq!(
            d.write_window(Duration::from_millis(50)),
            Duration::from_millis(50)
        );
        let fresh = Deadline::starting_now(Duration::from_secs(10));
        assert!(fresh.write_window(Duration::from_millis(50)) > Duration::from_secs(9));
    }

    #[test]
    fn elapsed_grows() {
        let d = Deadline::starting_now(Duration::from_secs(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.elapsed() >= Duration::from_millis(2));
    }
}
