//! A hand-rolled, total HTTP/1.1 subset: request-head parsing and
//! response writing over `std::net::TcpStream`.
//!
//! The parser is **total**: any byte buffer maps to `Ok(Request)` or a
//! typed [`HttpError`] — never a panic. That property is what lets the
//! per-connection `catch_unwind` in the server loop stay a last-resort
//! backstop instead of a load-bearing control path, and it is pinned by
//! the vendored-proptest suite in `tests/http_props.rs`.
//!
//! Scope is deliberately narrow — the server speaks exactly what its
//! clients need: `GET`/`POST`, a percent-encoded path with an optional
//! query string, headers that are scanned for syntactic sanity but not
//! interpreted, one request per connection, `Connection: close` on every
//! response. Bodies are never read; control operations carry their
//! arguments in the query string.

use crate::deadline::Deadline;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers + blank line).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// The two methods the API speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only queries.
    Get,
    /// Control-plane mutations (`/ctl/...`).
    Post,
}

impl Method {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Get => "GET",
            Self::Post => "POST",
        }
    }
}

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Percent-decoded path segments (`/decide/Los%20Angeles/big` →
    /// `["decide", "Los Angeles", "big"]`).
    pub segments: Vec<String>,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first query value stored under `key`, if any.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The undecoded-path shape for log-style rendering: segments
    /// re-joined with `/`.
    pub fn path(&self) -> String {
        let mut out = String::new();
        for segment in &self.segments {
            out.push('/');
            out.push_str(segment);
        }
        if out.is_empty() {
            out.push('/');
        }
        out
    }
}

/// Why a request could not be served at the HTTP layer. Every variant
/// maps to a response status (or a silent close when the peer is gone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`] → `431`.
    TooLarge,
    /// The bytes are not a parseable request head → `400`.
    Malformed(&'static str),
    /// The request's deadline expired while reading → `408`.
    Expired,
    /// The peer closed the connection before a full head arrived.
    Disconnected,
    /// The socket failed mid-read.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooLarge => write!(f, "request head too large"),
            Self::Malformed(detail) => write!(f, "malformed request: {detail}"),
            Self::Expired => write!(f, "deadline expired while reading request"),
            Self::Disconnected => write!(f, "peer disconnected mid-request"),
            Self::Io(kind) => write!(f, "socket error while reading request: {kind:?}"),
        }
    }
}

/// Decodes `%XX` escapes. `None` on a dangling or non-hex escape.
fn percent_decode(raw: &str) -> Option<Vec<u8>> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                // Form-style space, accepted for client convenience.
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Some(out)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes one path segment or query token for request building
/// (used by tests, the bench load generator, and clients).
pub fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for b in raw.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(*b as char)
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit(u32::from(b >> 4), 16)
                        .unwrap_or('0')
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit(u32::from(b & 0xf), 16)
                        .unwrap_or('0')
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

fn decode_component(raw: &str, context: &'static str) -> Result<String, HttpError> {
    let bytes = percent_decode(raw).ok_or(HttpError::Malformed(context))?;
    String::from_utf8(bytes).map_err(|_| HttpError::Malformed(context))
}

/// Parses a complete request head (everything up to and including the
/// blank line). Total: never panics on any input.
pub fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;

    let mut parts = request_line.split(' ');
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(_) => return Err(HttpError::Malformed("unsupported method")),
        None => return Err(HttpError::Malformed("missing method")),
    };
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    match parts.next() {
        Some("HTTP/1.1" | "HTTP/1.0") => {}
        _ => return Err(HttpError::Malformed("missing or unsupported HTTP version")),
    }
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens on request line"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("target must be origin-form"));
    }

    // Headers: bounded count, each line must look like `name: value`.
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line (and any trailing split artifact)
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        let Some(colon) = line.find(':') else {
            return Err(HttpError::Malformed("header line without colon"));
        };
        if colon == 0 {
            return Err(HttpError::Malformed("header with empty name"));
        }
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut segments = Vec::new();
    for raw in raw_path.split('/').filter(|s| !s.is_empty()) {
        segments.push(decode_component(raw, "bad percent-escape in path")?);
    }
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|s| !s.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((
                decode_component(k, "bad percent-escape in query key")?,
                decode_component(v, "bad percent-escape in query value")?,
            ));
        }
    }
    Ok(Request {
        method,
        segments,
        query,
    })
}

/// Reads a request head from `stream` under `deadline`, enforcing
/// [`MAX_HEAD_BYTES`]. The remaining budget becomes the socket read
/// timeout, re-derived after every partial read, so a slowloris-style
/// client that trickles bytes cannot hold a worker past the deadline.
pub fn read_head(stream: &mut TcpStream, deadline: &Deadline) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        let Some(remaining) = deadline.remaining() else {
            return Err(HttpError::Expired);
        };
        // A zero timeout is rejected by std; clamp to 1ms.
        let timeout = remaining.max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return Err(HttpError::Io(std::io::ErrorKind::InvalidInput));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::TooLarge);
                }
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    // Trim anything past the head terminator (the start
                    // of an ignored body).
                    if let Some(end) = head.windows(4).position(|w| w == b"\r\n\r\n") {
                        head.truncate(end + 4);
                    }
                    return Ok(head);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Expired);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::ConnectionAborted
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                return Err(HttpError::Disconnected);
            }
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }
}

/// A response about to be written. One per connection; every response
/// closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Optional `Retry-After` seconds (the load-shedding signal).
    pub retry_after: Option<u32>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a serializable value.
    pub fn json(status: u16, value: &serde_json::Value) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            // Serializing a `Value` tree cannot fail; fall back to an
            // empty object rather than unwrapping.
            body: serde_json::to_string_pretty(value)
                .unwrap_or_else(|_| "{}".to_owned())
                .into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
            body: body.as_bytes().to_vec(),
        }
    }

    /// The shed response: `503` with a `Retry-After` hint, written
    /// straight from the accept path when the work queue is full.
    pub fn shed(retry_after_seconds: u32) -> Self {
        let mut r = Self::json(
            503,
            &serde_json::json!({
                "error": "server overloaded; request shed",
                "retry_after_seconds": retry_after_seconds,
            }),
        );
        r.retry_after = Some(retry_after_seconds);
        r
    }

    /// Renders the full wire form (status line, headers, body).
    pub fn render(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if let Some(secs) = self.retry_after {
            out.extend_from_slice(format!("Retry-After: {secs}\r\n").as_bytes());
        }
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response under the request's deadline. The write
    /// window never drops below `floor` so even an expired request gets
    /// a brief chance to carry its error status to the peer.
    pub fn write_to(&self, stream: &mut TcpStream, deadline: &Deadline) -> std::io::Result<()> {
        let window = deadline.write_window(Duration::from_millis(100));
        stream.set_write_timeout(Some(window))?;
        stream.write_all(&self.render())?;
        stream.flush()
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(s: &str) -> Result<Request, HttpError> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_simple_get() {
        let req = head("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.segments, vec!["healthz"]);
        assert!(req.query.is_empty());
        assert_eq!(req.path(), "/healthz");
    }

    #[test]
    fn decodes_percent_escapes_and_query() {
        let req = head("GET /decide/Los%20Angeles/big?k=5&x=a%26b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments, vec!["decide", "Los Angeles", "big"]);
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("x"), Some("a&b"));
        assert_eq!(req.query_param("absent"), None);
    }

    #[test]
    fn plus_decodes_to_space() {
        let req = head("GET /decide/Los+Angeles/big HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments[1], "Los Angeles");
    }

    #[test]
    fn rejects_malformed_heads() {
        for (case, bytes) in [
            ("bad method", "PUT /x HTTP/1.1\r\n\r\n"),
            ("no version", "GET /x\r\n\r\n"),
            ("bad version", "GET /x HTTP/2\r\n\r\n"),
            ("extra tokens", "GET /x HTTP/1.1 extra\r\n\r\n"),
            ("not origin form", "GET http://e/x HTTP/1.1\r\n\r\n"),
            ("dangling escape", "GET /x%2 HTTP/1.1\r\n\r\n"),
            ("non-hex escape", "GET /x%zz HTTP/1.1\r\n\r\n"),
            ("colonless header", "GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            ("empty header name", "GET /x HTTP/1.1\r\n: v\r\n\r\n"),
            ("empty", ""),
        ] {
            assert!(head(bytes).is_err(), "{case} should be rejected");
        }
    }

    #[test]
    fn header_flood_is_too_large() {
        let mut s = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            s.push_str(&format!("h{i}: v\r\n"));
        }
        s.push_str("\r\n");
        assert_eq!(head(&s), Err(HttpError::TooLarge));
    }

    #[test]
    fn encode_decode_round_trip() {
        for s in ["Los Angeles", "très grand", "a/b?c&d=e", "ぴかぴか", ""] {
            let encoded = percent_encode(s);
            let req = head(&format!("GET /seg/{encoded} HTTP/1.1\r\n\r\n")).unwrap();
            let want: Vec<&str> = if s.is_empty() {
                vec!["seg"]
            } else {
                vec!["seg", s]
            };
            assert_eq!(req.segments, want, "round-tripping {s:?}");
        }
    }

    #[test]
    fn response_renders_with_length_and_close() {
        let r = Response::text(200, "ok");
        let rendered = String::from_utf8(r.render()).unwrap();
        assert!(rendered.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(rendered.contains("Content-Length: 2\r\n"));
        assert!(rendered.contains("Connection: close\r\n"));
        assert!(rendered.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let r = Response::shed(1);
        let rendered = String::from_utf8(r.render()).unwrap();
        assert!(rendered.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(rendered.contains("Retry-After: 1\r\n"));
    }
}
