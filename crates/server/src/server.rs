//! The server proper: listener, bounded queue, worker pool, shutdown.
//!
//! Threading model — one accept thread plus `workers` request threads:
//!
//! ```text
//!   accept thread ──try_push──▶ BoundedQueue ──pop──▶ worker × N
//!        │ (full → 503+Retry-After, written inline)        │
//!        │                                                  ├─ catch_unwind per connection
//!        └── shutdown nudge ◀──── /ctl/shutdown ────────────┘
//! ```
//!
//! Every accepted connection is stamped with a [`Deadline`] *at accept
//! time*, so time spent waiting in the queue counts against the budget —
//! under overload a request times out honestly instead of being served
//! stale. Workers wrap each connection in `catch_unwind`; a panicking
//! request costs one `500`, never the process. Graceful shutdown closes
//! the queue (draining queued work), unblocks the accept thread with a
//! loopback "nudge" connection, and joins every thread.

use crate::deadline::Deadline;
use crate::http::{parse_head, read_head, HttpError, Response};
use crate::metrics::ServerMetrics;
use crate::queue::BoundedQueue;
use crate::routes::{route, ControlAction, RouteContext};
use crate::state::{ServedState, SharedState, StateCache};
use serde_json::json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use surveyor_obs::MetricsRegistry;

/// Tunable knobs. The defaults suit tests and the smoke gate; the CLI
/// exposes the ones operators care about.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Request worker threads.
    pub workers: usize,
    /// Bounded queue capacity — the load-shedding threshold.
    pub queue_capacity: usize,
    /// Per-request budget, stamped at accept.
    pub request_budget: Duration,
    /// `Retry-After` seconds on shed responses.
    pub retry_after_seconds: u32,
    /// Enables `/ctl/panic` and `/ctl/stall` (tests and chaos benches).
    pub debug_routes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            request_budget: Duration::from_secs(2),
            retry_after_seconds: 1,
            debug_routes: false,
        }
    }
}

/// One accepted connection traveling accept → queue → worker.
#[derive(Debug)]
struct Job {
    stream: TcpStream,
    deadline: Deadline,
}

/// The shutdown latch. `trigger` is idempotent; the first call also
/// opens a throwaway loopback connection so a blocking `accept()`
/// returns and observes the flag.
#[derive(Debug)]
struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        }
    }

    fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or POST `/ctl/shutdown` and then
/// [`ServerHandle::join`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    shared: Arc<SharedState>,
    metrics: ServerMetrics,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric handles (and, through them, the registry).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The shared state slot (tests inspect generations through this).
    pub fn shared(&self) -> &Arc<SharedState> {
        &self.shared
    }

    /// Triggers graceful shutdown and waits for every thread: queued
    /// requests drain, workers exit, the accept thread joins.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_threads();
    }

    /// Blocks until the server stops on its own (a client POSTed
    /// `/ctl/shutdown`). This is the CLI `serve` foreground path.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Starts a server on `config` serving `initial`, reporting into
/// `registry`. Returns once the listener is bound and the threads are
/// running.
pub fn start(
    config: ServerConfig,
    initial: Arc<ServedState>,
    registry: Arc<MetricsRegistry>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = ServerMetrics::new(registry);
    let shared = Arc::new(SharedState::new(initial));
    let signal = Arc::new(ShutdownSignal {
        flag: AtomicBool::new(false),
        addr,
    });
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_capacity));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let queue = queue.clone();
        let shared = shared.clone();
        let metrics = metrics.clone();
        let signal = signal.clone();
        let debug_routes = config.debug_routes;
        let thread = std::thread::Builder::new()
            .name(format!("serve-worker-{i}"))
            .spawn(move || worker_loop(&queue, &shared, &metrics, &signal, debug_routes))?;
        workers.push(thread);
    }

    let accept_thread = {
        let queue = queue.clone();
        let metrics = metrics.clone();
        let signal = signal.clone();
        let budget = config.request_budget;
        let retry_after = config.retry_after_seconds;
        std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &queue, &metrics, &signal, budget, retry_after))?
    };

    Ok(ServerHandle {
        addr,
        signal,
        shared,
        metrics,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<Job>,
    metrics: &ServerMetrics,
    signal: &ShutdownSignal,
    budget: Duration,
    retry_after: u32,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if signal.is_triggered() {
                    // The nudge connection (or a client racing shutdown).
                    break;
                }
                let deadline = Deadline::starting_now(budget);
                if let Err(refused) = queue.try_push(Job { stream, deadline }) {
                    // Shed inline: the 503 costs the accept thread one
                    // tiny buffered write, and the client learns to back
                    // off immediately instead of waiting for a timeout.
                    metrics.shed.inc();
                    let Job {
                        mut stream,
                        deadline,
                    } = refused.into_inner();
                    // Drain what the client already sent before answering:
                    // closing a socket with unread inbound data resets the
                    // connection, and the 503 would be lost in flight. One
                    // short bounded read clears the common case (the whole
                    // head is already queued on loopback) without letting
                    // a slow client wedge the accept thread.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
                    let mut scratch = [0u8; 4096];
                    let _ = std::io::Read::read(&mut stream, &mut scratch);
                    let response = Response::shed(retry_after);
                    if response.write_to(&mut stream, &deadline).is_ok() {
                        metrics.count_response(response.status);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if signal.is_triggered() {
                    break;
                }
                // Transient accept failure (e.g. EMFILE under churn):
                // back off briefly rather than spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    queue.close();
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    shared: &SharedState,
    metrics: &ServerMetrics,
    signal: &ShutdownSignal,
    debug_routes: bool,
) {
    let mut cache = StateCache::new(shared);
    while let Some(job) = queue.pop() {
        let Job {
            mut stream,
            deadline,
        } = job;
        metrics.requests.inc();
        let served = catch_unwind(AssertUnwindSafe(|| {
            serve_one(
                &mut stream,
                &deadline,
                shared,
                &mut cache,
                metrics,
                debug_routes,
            )
        }));
        metrics.observe_latency(deadline.elapsed().as_secs_f64());
        match served {
            Ok(ControlAction::Shutdown) => signal.trigger(),
            Ok(ControlAction::None) => {}
            Err(_) => {
                // The request panicked; the process did not. Best-effort
                // 500 so the client is not left hanging.
                metrics.panics.inc();
                let response =
                    Response::json(500, &json!({ "error": "internal panic; request isolated" }));
                if response.write_to(&mut stream, &deadline).is_ok() {
                    metrics.count_response(response.status);
                }
            }
        }
    }
}

/// Serves one connection end to end: read head under deadline, parse,
/// route, write. Returns the route's control action.
fn serve_one(
    stream: &mut TcpStream,
    deadline: &Deadline,
    shared: &SharedState,
    cache: &mut StateCache,
    metrics: &ServerMetrics,
    debug_routes: bool,
) -> ControlAction {
    let request = match read_head(stream, deadline).and_then(|head| parse_head(&head)) {
        Ok(request) => request,
        Err(e) => {
            let response = match &e {
                HttpError::TooLarge => {
                    metrics.malformed.inc();
                    Some(Response::json(431, &json!({ "error": e.to_string() })))
                }
                HttpError::Malformed(_) => {
                    metrics.malformed.inc();
                    Some(Response::json(400, &json!({ "error": e.to_string() })))
                }
                HttpError::Expired => {
                    metrics.deadline_expired.inc();
                    Some(Response::json(408, &json!({ "error": e.to_string() })))
                }
                HttpError::Disconnected | HttpError::Io(_) => {
                    metrics.disconnects.inc();
                    None // nobody is listening; close cleanly
                }
            };
            if let Some(response) = response {
                if response.write_to(stream, deadline).is_ok() {
                    metrics.count_response(response.status);
                }
            }
            return ControlAction::None;
        }
    };

    // The budget covers routing too: a request that spent its budget in
    // the queue gets an honest 408 instead of a stale answer.
    if deadline.expired() {
        metrics.deadline_expired.inc();
        let response = Response::json(408, &json!({ "error": "deadline expired in queue" }));
        if response.write_to(stream, deadline).is_ok() {
            metrics.count_response(response.status);
        }
        return ControlAction::None;
    }

    let mut ctx = RouteContext {
        shared,
        cache,
        metrics,
        debug_routes,
    };
    let outcome = route(&request, &mut ctx);
    if outcome.response.write_to(stream, deadline).is_ok() {
        metrics.count_response(outcome.response.status);
    } else {
        metrics.disconnects.inc();
    }
    outcome.action
}
