//! Endpoint routing over the served decision index.
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET | `/healthz` | liveness: process is up |
//! | GET | `/readyz` | readiness: index generation + epoch |
//! | GET | `/decide/{entity}/{property}` | the verdict on one pair |
//! | GET | `/entity/{entity}?k=N` | top-k most confident properties |
//! | GET | `/model/{type}/{property}` | fitted model parameters |
//! | GET | `/evidence/{entity}/{property}` | evidence + provenance drill-down |
//! | GET | `/metrics` | the `surveyor-obs` run report |
//! | POST | `/ctl/reload?path=P` | validate-then-swap hot reload |
//! | POST | `/ctl/shutdown` | graceful drain-and-exit |
//! | POST | `/ctl/panic` | *(debug)* deliberate worker panic |
//! | POST | `/ctl/stall?ms=N` | *(debug)* hold a worker for N ms |
//!
//! Routing is pure dispatch; the robustness envelope (deadline, queue,
//! `catch_unwind`) lives in `server.rs`. The one stateful route is
//! `/ctl/reload`, which embodies validate-then-swap: candidate bytes
//! must build a full [`ServedState`] before
//! the shared slot moves, so rejection leaves the old index serving.

use crate::http::{Method, Request, Response};
use crate::metrics::ServerMetrics;
use crate::state::{ServedState, SharedState, StateCache};
use serde_json::json;
use std::sync::Arc;
use surveyor::kb::Property;
use surveyor::{CombinationBlock, StoredOpinion};

/// What the worker should do after writing the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Keep serving.
    None,
    /// Begin graceful shutdown (the `/ctl/shutdown` route).
    Shutdown,
}

/// A routed response plus its post-write control action.
#[derive(Debug)]
pub struct RouteOutcome {
    /// The response to write.
    pub response: Response,
    /// What to do after writing it.
    pub action: ControlAction,
}

impl RouteOutcome {
    fn reply(response: Response) -> Self {
        Self {
            response,
            action: ControlAction::None,
        }
    }
}

/// Everything a route can touch.
pub struct RouteContext<'a> {
    /// The shared reload slot.
    pub shared: &'a SharedState,
    /// This worker's epoch-cached state handle.
    pub cache: &'a mut StateCache,
    /// Pre-resolved counters + the registry behind `/metrics`.
    pub metrics: &'a ServerMetrics,
    /// Whether `/ctl/panic` and `/ctl/stall` are enabled.
    pub debug_routes: bool,
}

/// Ceiling on `/ctl/stall` so a typo cannot wedge a worker for minutes.
const MAX_STALL_MS: u64 = 10_000;

/// Ceiling on `?k=` so one request cannot ask for an unbounded payload.
const MAX_TOP_K: usize = 100;

fn not_found(detail: &str) -> Response {
    Response::json(404, &json!({ "error": detail }))
}

fn bad_request(detail: &str) -> Response {
    Response::json(400, &json!({ "error": detail }))
}

fn opinion_json(block: &CombinationBlock, opinion: &StoredOpinion) -> serde_json::Value {
    json!({
        "entity": opinion.entity_name,
        "type": block.type_name,
        "property": block.property.to_string(),
        "positive": opinion.positive,
        "probability": opinion.probability,
        "positive_statements": opinion.positive_statements,
        "negative_statements": opinion.negative_statements,
    })
}

/// Dispatches one parsed request.
pub fn route(req: &Request, ctx: &mut RouteContext<'_>) -> RouteOutcome {
    let segments: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    match (req.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => RouteOutcome::reply(Response::text(200, "ok")),
        (Method::Get, ["readyz"]) => {
            let epoch = ctx.shared.epoch();
            let state = ctx.cache.get(ctx.shared);
            RouteOutcome::reply(Response::json(
                200,
                &json!({
                    "ready": true,
                    "generation": state.generation,
                    "epoch": epoch,
                    "source": state.source,
                    "snapshot_bytes": state.snapshot_bytes,
                    "associations": state.store.len(),
                }),
            ))
        }
        (Method::Get, ["decide", entity, property]) => {
            let Some(property) = Property::parse(property) else {
                return RouteOutcome::reply(bad_request("unparseable property"));
            };
            let state = ctx.cache.get(ctx.shared);
            match state.store.find_opinion(entity, &property) {
                Some((block, opinion)) => {
                    RouteOutcome::reply(Response::json(200, &opinion_json(block, opinion)))
                }
                None => RouteOutcome::reply(not_found("no stored opinion for entity/property")),
            }
        }
        (Method::Get, ["entity", entity]) => {
            let k = match req.query_param("k") {
                None => 10,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(k) if k >= 1 => k.min(MAX_TOP_K),
                    _ => return RouteOutcome::reply(bad_request("k must be a positive integer")),
                },
            };
            let state = ctx.cache.get(ctx.shared);
            let hits = state.store.opinions_of_entity(entity);
            if hits.is_empty() {
                return RouteOutcome::reply(not_found("unknown entity"));
            }
            let properties: Vec<serde_json::Value> = hits
                .iter()
                .take(k)
                .map(|(b, o)| opinion_json(b, o))
                .collect();
            RouteOutcome::reply(Response::json(
                200,
                &json!({ "entity": entity, "k": k, "properties": properties }),
            ))
        }
        (Method::Get, ["model", type_name, property]) => {
            let Some(property) = Property::parse(property) else {
                return RouteOutcome::reply(bad_request("unparseable property"));
            };
            let state = ctx.cache.get(ctx.shared);
            match state.store.combination(type_name, &property) {
                Some(block) => RouteOutcome::reply(Response::json(
                    200,
                    &json!({
                        "type": block.type_name,
                        "property": block.property.to_string(),
                        "p_agree": block.p_agree,
                        "rate_pos": block.rate_pos,
                        "rate_neg": block.rate_neg,
                        "decided_entities": block.opinions.len(),
                    }),
                )),
                None => RouteOutcome::reply(not_found("no model for type/property")),
            }
        }
        (Method::Get, ["evidence", entity, property]) => {
            let Some(property) = Property::parse(property) else {
                return RouteOutcome::reply(bad_request("unparseable property"));
            };
            let state = ctx.cache.get(ctx.shared);
            match state.store.find_opinion(entity, &property) {
                Some((block, opinion)) => RouteOutcome::reply(Response::json(
                    200,
                    &json!({
                        "entity": opinion.entity_name,
                        "type": block.type_name,
                        "property": block.property.to_string(),
                        "positive_statements": opinion.positive_statements,
                        "negative_statements": opinion.negative_statements,
                        "supporting_documents": opinion.supporting_documents,
                    }),
                )),
                None => RouteOutcome::reply(not_found("no evidence for entity/property")),
            }
        }
        (Method::Get, ["metrics"]) => {
            let report = ctx.metrics.registry().report();
            RouteOutcome::reply(Response {
                status: 200,
                content_type: "application/json",
                retry_after: None,
                body: report.to_json().into_bytes(),
            })
        }
        (Method::Post, ["ctl", "reload"]) => RouteOutcome::reply(reload(req, ctx)),
        (Method::Post, ["ctl", "shutdown"]) => RouteOutcome {
            response: Response::json(200, &json!({ "shutting_down": true })),
            action: ControlAction::Shutdown,
        },
        (Method::Post, ["ctl", "panic"]) if ctx.debug_routes => {
            panic!("deliberate fault-injection panic via /ctl/panic") // lint:allow(no-panic-in-lib): config-gated fault-injection endpoint exercising catch_unwind isolation
        }
        (_, ["ctl", "stall"]) if ctx.debug_routes => {
            let ms = req
                .query_param("ms")
                .and_then(|raw| raw.parse::<u64>().ok())
                .unwrap_or(100)
                .min(MAX_STALL_MS);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            RouteOutcome::reply(Response::json(200, &json!({ "stalled_ms": ms })))
        }
        (Method::Post, _) => RouteOutcome::reply(Response::json(
            405,
            &json!({ "error": "POST is only accepted on /ctl routes" }),
        )),
        (Method::Get, _) => RouteOutcome::reply(not_found("unknown route")),
    }
}

/// The hot-reload route: read → validate end-to-end → swap, with the
/// old state serving throughout and surviving any rejection.
fn reload(req: &Request, ctx: &mut RouteContext<'_>) -> Response {
    let Some(path) = req.query_param("path") else {
        ctx.metrics.reload_rejected.inc();
        return bad_request("reload requires a ?path= query parameter");
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            ctx.metrics.reload_rejected.inc();
            return bad_request(&format!("cannot read snapshot file: {}", e.kind()));
        }
    };
    let current_generation = ctx.cache.get(ctx.shared).generation;
    match ServedState::from_snapshot_bytes(&bytes, current_generation + 1, path) {
        Ok(next) => {
            ctx.shared.swap(Arc::new(next));
            ctx.metrics.reload_ok.inc();
            let state = ctx.cache.get(ctx.shared);
            Response::json(
                200,
                &json!({
                    "reloaded": true,
                    "generation": state.generation,
                    "source": state.source,
                    "associations": state.store.len(),
                }),
            )
        }
        Err(e) => {
            ctx.metrics.reload_rejected.inc();
            Response::json(
                422,
                &json!({
                    "reloaded": false,
                    "error": e.to_string(),
                    "serving_generation": current_generation,
                }),
            )
        }
    }
}
