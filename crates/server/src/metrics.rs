//! Server telemetry on the `surveyor-obs` registry.
//!
//! All counters are resolved to [`Counter`] handles once at startup —
//! the registry's name→counter map is never locked on the request path,
//! matching the registry's own hot-path guidance. The same registry
//! backs `/metrics`, so every number here is visible to clients and to
//! the `bench serve` artifact.

use std::sync::Arc;
use surveyor_obs::{Counter, Histogram, MetricsRegistry};

/// Pre-resolved handles for every server metric.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    /// Requests admitted to the work queue.
    pub requests: Counter,
    /// Connections shed with `503` because the queue was full.
    pub shed: Counter,
    /// Worker panics contained by `catch_unwind`.
    pub panics: Counter,
    /// Requests whose deadline expired before a response was written.
    pub deadline_expired: Counter,
    /// Heads that failed to parse (`400`/`431`).
    pub malformed: Counter,
    /// Peers that vanished mid-request.
    pub disconnects: Counter,
    /// Hot reloads that validated and swapped.
    pub reload_ok: Counter,
    /// Hot reloads rejected with the old index still serving.
    pub reload_rejected: Counter,
    /// Responses by status class.
    pub responses_2xx: Counter,
    /// 4xx responses.
    pub responses_4xx: Counter,
    /// 5xx responses.
    pub responses_5xx: Counter,
    latency: Arc<Histogram>,
}

impl ServerMetrics {
    /// Resolves every handle against `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            shed: registry.counter("serve.shed"),
            panics: registry.counter("serve.panics"),
            deadline_expired: registry.counter("serve.deadline_expired"),
            malformed: registry.counter("serve.malformed"),
            disconnects: registry.counter("serve.disconnects"),
            reload_ok: registry.counter("serve.reload.ok"),
            reload_rejected: registry.counter("serve.reload.rejected"),
            responses_2xx: registry.counter("serve.responses.2xx"),
            responses_4xx: registry.counter("serve.responses.4xx"),
            responses_5xx: registry.counter("serve.responses.5xx"),
            latency: registry.histogram("serve.latency_seconds"),
            registry,
        }
    }

    /// The registry behind `/metrics` and run reports.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Counts a written response into its status class.
    pub fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }

    /// Records one request's service latency.
    pub fn observe_latency(&self, seconds: f64) {
        self.latency.observe(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let m = ServerMetrics::new(registry.clone());
        m.requests.inc();
        m.shed.add(2);
        m.count_response(200);
        m.count_response(404);
        m.count_response(503);
        m.observe_latency(0.001);
        assert_eq!(registry.counter_value("serve.requests"), 1);
        assert_eq!(registry.counter_value("serve.shed"), 2);
        assert_eq!(registry.counter_value("serve.responses.2xx"), 1);
        assert_eq!(registry.counter_value("serve.responses.4xx"), 1);
        assert_eq!(registry.counter_value("serve.responses.5xx"), 1);
        let report = registry.report();
        assert!(report.histograms.contains_key("serve.latency_seconds"));
    }
}
