//! The served decision index and its hot-swap machinery.
//!
//! A [`ServedState`] is one fully validated snapshot, materialized into
//! the queryable [`SubjectiveKb`] store. [`SharedState`] holds the
//! current one behind an epoch counter: readers keep a per-worker
//! [`StateCache`] whose steady-state cost is a single relaxed atomic
//! load — the slot mutex is touched only on the epoch change a reload
//! causes. This mirrors the per-worker interner cache from the scaling
//! work: cheap reads, coordination only when the world actually moves.
//!
//! Reload is **validate-then-swap**: the replacement bytes must decode
//! (wire structure, CRC, version — the PR-7 never-panic decoder) *and*
//! rebuild into a semantically consistent output before the swap
//! happens. A corrupt candidate is rejected with the old state still
//! serving; there is no window where readers can observe a broken index.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use surveyor::{SnapshotError, SubjectiveKb};

/// One immutable, fully validated, queryable snapshot generation.
#[derive(Debug)]
pub struct ServedState {
    /// The materialized decision index.
    pub store: SubjectiveKb,
    /// Reload generation: 1 for the boot snapshot, +1 per accepted swap.
    pub generation: u64,
    /// Where the bytes came from (path or a descriptive label).
    pub source: String,
    /// Size of the snapshot container, in bytes.
    pub snapshot_bytes: u64,
}

impl ServedState {
    /// Validates `bytes` end to end and materializes the decision index.
    ///
    /// This is the only way to build a `ServedState`, so every state the
    /// server can ever serve has passed both the structural (wire) and
    /// semantic (cross-reference) validation layers.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        generation: u64,
        source: &str,
    ) -> Result<Self, SnapshotError> {
        let output = surveyor::load_snapshot(bytes)?;
        let store = SubjectiveKb::from_output(&output, output.kb());
        Ok(Self {
            store,
            generation,
            source: source.to_owned(),
            snapshot_bytes: bytes.len() as u64,
        })
    }
}

/// The shared slot all workers read and the reload path swaps.
#[derive(Debug)]
pub struct SharedState {
    epoch: AtomicU64,
    slot: Mutex<Arc<ServedState>>,
}

impl SharedState {
    /// Opens the slot on an initial state at epoch 0.
    pub fn new(initial: Arc<ServedState>) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(initial),
        }
    }

    /// The current epoch; bumped by every accepted swap.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current state out of the slot (locks briefly).
    pub fn load(&self) -> Arc<ServedState> {
        self.slot.lock().clone()
    }

    /// Installs `next` and bumps the epoch. In-flight requests keep the
    /// `Arc` they already cloned; the old state drops when the last one
    /// finishes.
    pub fn swap(&self, next: Arc<ServedState>) {
        let mut slot = self.slot.lock();
        *slot = next;
        // Publish under the lock so a reader that sees the new epoch is
        // guaranteed to find the new state in the slot.
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// A per-worker cached handle onto [`SharedState`]. `get` is the hot
/// path: one atomic epoch read, no lock, unless a reload happened.
#[derive(Debug)]
pub struct StateCache {
    epoch: u64,
    state: Arc<ServedState>,
}

impl StateCache {
    /// Primes the cache from the shared slot.
    pub fn new(shared: &SharedState) -> Self {
        Self {
            epoch: shared.epoch(),
            state: shared.load(),
        }
    }

    /// The current state, refreshed only when the epoch moved.
    pub fn get(&mut self, shared: &SharedState) -> &Arc<ServedState> {
        let epoch = shared.epoch();
        if epoch != self.epoch {
            self.state = shared.load();
            self.epoch = epoch;
        }
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use surveyor::prelude::*;
    use surveyor::{save_snapshot, CorpusSource, Surveyor, SurveyorConfig};

    fn snapshot_bytes() -> Vec<u8> {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Spider", animal).finish();
        let kb = Arc::new(b.build());
        let world = WorldBuilder::new(kb.clone(), 7)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build();
        let generator = CorpusGenerator::new(world, CorpusConfig::default());
        let surveyor = Surveyor::new(
            kb,
            SurveyorConfig {
                rho: 5,
                ..Default::default()
            },
        );
        save_snapshot(&surveyor.run(&CorpusSource::new(&generator)))
    }

    #[test]
    fn builds_from_valid_bytes() {
        let bytes = snapshot_bytes();
        let state = ServedState::from_snapshot_bytes(&bytes, 1, "test").unwrap();
        assert_eq!(state.generation, 1);
        assert_eq!(state.snapshot_bytes, bytes.len() as u64);
        assert!(!state.store.is_empty());
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let mut bytes = snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(ServedState::from_snapshot_bytes(&bytes, 1, "bad").is_err());
        assert!(ServedState::from_snapshot_bytes(b"junk", 1, "junk").is_err());
    }

    #[test]
    fn cache_refreshes_only_on_epoch_change() {
        let bytes = snapshot_bytes();
        let a = Arc::new(ServedState::from_snapshot_bytes(&bytes, 1, "a").unwrap());
        let shared = SharedState::new(a);
        let mut cache = StateCache::new(&shared);
        assert_eq!(cache.get(&shared).generation, 1);

        let b = Arc::new(ServedState::from_snapshot_bytes(&bytes, 2, "b").unwrap());
        shared.swap(b);
        assert_eq!(shared.epoch(), 1);
        assert_eq!(cache.get(&shared).generation, 2);
        // Stable epoch → cached Arc is reused.
        assert_eq!(cache.get(&shared).generation, 2);
    }
}
