//! `surveyor-server`: a fault-hardened HTTP/1.1 query server over a
//! `surveyor-wire` decision-index snapshot.
//!
//! The paper's deliverable is a queryable index of subjective verdicts;
//! this crate is the serving half of that promise. The routing is thin —
//! the engineering is the robustness envelope:
//!
//! - **Deadlines** ([`Deadline`]): every request carries a monotonic
//!   budget stamped at accept, threaded through head reading, routing,
//!   and response writing as socket timeouts.
//! - **Load shedding** ([`BoundedQueue`]): a fixed-capacity accept→worker
//!   queue; overload is answered with an immediate `503` + `Retry-After`,
//!   never with unbounded buffering.
//! - **Panic isolation**: each connection runs under `catch_unwind`; a
//!   poisoned request costs one `500`, not the process.
//! - **Hot reload** ([`SharedState`]): replacement snapshots are fully
//!   validated *before* an atomic `Arc` swap; a corrupt candidate is
//!   rejected with the old index still serving.
//! - **Graceful shutdown**: `/ctl/shutdown` drains queued requests and
//!   joins every thread before the process exits.
//!
//! Like `wire`, `obs`, and `lint`, the crate is dependency-light by
//! design: the HTTP layer is hand-rolled over `std::net` so the whole
//! serving stack stays auditable and offline-buildable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod routes;
pub mod server;
pub mod state;

pub use deadline::Deadline;
pub use http::{
    parse_head, percent_encode, HttpError, Method, Request, Response, MAX_HEADERS, MAX_HEAD_BYTES,
};
pub use metrics::ServerMetrics;
pub use queue::{BoundedQueue, PushError};
pub use routes::{route, ControlAction, RouteContext, RouteOutcome};
pub use server::{start, ServerConfig, ServerHandle};
pub use state::{ServedState, SharedState, StateCache};
