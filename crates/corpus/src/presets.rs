//! Preset worlds for the paper's experiments.
//!
//! Each preset pins a knowledge base, a set of (type, property) domains,
//! and behavioral parameters chosen to reproduce the *shape* of the
//! corresponding evaluation: polarity bias (negative statements are much
//! rarer than positive ones for most properties — §2), occurrence bias
//! (dominant-positive entities are mentioned more), per-combination
//! parameter variation (§7.3 found agreement differs between `dangerous
//! animals`, `dangerous sports`, and `boring sports`), and long-tail
//! sparsity (most entities are never mentioned — Figure 9).

use crate::generator::{CorpusConfig, CorpusGenerator, RegionSpec};
use crate::world::{DomainParams, OpinionRule, PopularityRule, World, WorldBuilder};
use std::sync::Arc;
use surveyor_kb::seed::{
    self, ATTR_AREA_KM2, ATTR_GDP_PER_CAPITA, ATTR_POPULATION, ATTR_RELATIVE_HEIGHT_M,
};
use surveyor_kb::Property;

/// The §2 / Figure 3 empirical study: 461 Californian cities and the
/// property `big`. Opinions follow population through a soft threshold;
/// popularity follows population, producing the "big cities are mentioned
/// more" occurrence bias of Figures 3(a)/3(b).
pub fn big_cities_world(seed: u64) -> World {
    let (kb, _) = seed::california_cities(seed);
    WorldBuilder::new(Arc::new(kb), seed)
        .domain(
            "city",
            Property::adjective("big"),
            DomainParams {
                p_agree: 0.88,
                rate_pos: 18.0,
                rate_neg: 2.0,
                opinions: OpinionRule::AttributeThreshold {
                    attr: ATTR_POPULATION.to_owned(),
                    threshold: 300_000.0,
                    softness: 0.8,
                },
                popularity: PopularityRule::ByAttribute {
                    attr: ATTR_POPULATION.to_owned(),
                    exponent: 0.55,
                },
                aspect_noise: 0.3,
                part_of_noise: 0.15,
                filler_noise: 0.5,
                extended_verb_share: 0.12,
                double_negation_share: 0.02,
                plural_subjects: false,
                crowd_agreement: None,
                author_jitter: 0.0,
                spurious_positive_rate: 0.4,
                spurious_negative_rate: 0.0,
            },
        )
        .build()
}

/// Per-combination behavioral profile for the Table 2 matrix. Columns:
/// `(property, pA*, rate_pos, rate_neg, positive_share, crowd_agreement)`.
///
/// The profiles encode the §7.3 observations: agreement is higher for
/// `dangerous animals` (0.93) than `dangerous sports` (0.85) than `boring
/// sports` (0.78); `cute` has a strong positive polarity bias (people
/// rarely write "X is not cute"); `calm`/`quiet` lean the other way.
type Profile = (&'static str, f64, f64, f64, f64, f64);

const ANIMAL_PROFILES: [Profile; 5] = [
    ("dangerous", 0.95, 11.8, 0.21, 0.17, 0.93),
    ("cute", 0.95, 15.5, 0.21, 0.22, 0.90),
    ("big", 0.95, 9.7, 0.21, 0.12, 0.88),
    ("friendly", 0.95, 8.9, 0.21, 0.17, 0.86),
    ("deadly", 0.95, 7.7, 0.16, 0.12, 0.92),
];

const CELEBRITY_PROFILES: [Profile; 5] = [
    ("cool", 0.94, 11.8, 0.21, 0.22, 0.82),
    ("crazy", 0.93, 6.7, 0.21, 0.12, 0.80),
    ("pretty", 0.95, 12.6, 0.21, 0.22, 0.85),
    // Inverted polarity bias and deliberately sparse: this combination
    // falls below the occurrence threshold.
    ("quiet", 0.84, 2.6, 3.37, 0.20, 0.78),
    ("young", 0.95, 7.7, 0.21, 0.12, 0.88),
];

const CITY_PROFILES: [Profile; 5] = [
    ("big", 0.95, 13.7, 0.28, 0.12, 0.90),
    // "calm"-like properties invert the bias: people complain more than
    // they praise (the paper's "safe cities" observation).
    ("calm", 0.86, 3.1, 4.06, 0.25, 0.80),
    ("cheap", 0.88, 4.6, 2.70, 0.20, 0.84),
    ("hectic", 0.93, 6.2, 0.21, 0.12, 0.81),
    ("multicultural", 0.95, 8.2, 0.21, 0.22, 0.87),
];

const PROFESSION_PROFILES: [Profile; 5] = [
    ("dangerous", 0.95, 8.9, 0.21, 0.12, 0.90),
    ("exciting", 0.94, 9.7, 0.23, 0.22, 0.82),
    ("rare", 0.95, 4.1, 0.16, 0.12, 0.85),
    ("solid", 0.92, 4.9, 0.21, 0.22, 0.79),
    ("vital", 0.95, 6.7, 0.16, 0.27, 0.88),
];

const SPORT_PROFILES: [Profile; 5] = [
    ("addictive", 0.95, 8.2, 0.21, 0.22, 0.83),
    ("boring", 0.84, 3.1, 3.60, 0.15, 0.78),
    ("dangerous", 0.95, 9.7, 0.28, 0.17, 0.85),
    ("fast", 0.95, 8.9, 0.21, 0.22, 0.87),
    ("popular", 0.95, 12.6, 0.28, 0.27, 0.89),
];

/// Curated opinions for the most legible combinations, so Figure 10 shows
/// the paper's pattern (kittens and puppies near 20 votes, spiders and
/// scorpions near 0). Undesignated and background entities draw from the
/// profile's share.
fn designated(type_name: &str, property: &str) -> Option<Vec<String>> {
    let names: &[&str] = match (type_name, property) {
        ("animal", "cute") => &["Kitten", "Puppy", "Pony", "Koala"],
        ("animal", "dangerous") => &["Tiger", "Lion", "Alligator", "White shark"],
        ("animal", "deadly") => &["White shark", "Scorpion", "Alligator"],
        ("animal", "big") => &["Moose", "Camel", "Grizzly bear", "Lion"],
        ("animal", "friendly") => &["Puppy", "Pony", "Kitten"],
        ("city", "big") => &["Tokyo", "Mumbai", "Shanghai", "Cairo", "Lagos"],
        ("sport", "dangerous") => &["Boxing", "Skydiving", "Motocross"],
        ("sport", "fast") => &["Motocross", "Hockey", "Table tennis"],
        ("sport", "popular") => &["Soccer", "Cricket", "Hockey"],
        ("profession", "dangerous") => &["Firefighter", "Stuntman", "Miner"],
        _ => return None,
    };
    Some(names.iter().map(|n| (*n).to_owned()).collect())
}

fn profile_params(profile: &Profile, plural: bool, sparse: bool) -> DomainParams {
    let (_, pa, rate_pos, rate_neg, share, crowd) = *profile;
    let sparsity = if sparse { 0.06 } else { 1.0 };
    DomainParams {
        p_agree: pa,
        rate_pos: rate_pos * sparsity,
        rate_neg: rate_neg * sparsity,
        opinions: OpinionRule::RandomShare(share),
        popularity: PopularityRule::LogNormal { sigma: 1.3 },
        aspect_noise: 0.25,
        part_of_noise: 1.7,
        filler_noise: 0.15,
        extended_verb_share: 0.15,
        double_negation_share: 0.02,
        plural_subjects: plural,
        crowd_agreement: Some(crowd),
        author_jitter: 0.08,
        // Inverted-bias properties attract drive-by complaints; everything
        // else attracts contextual positive usages. Sparse combinations
        // scale the whole channel down.
        spurious_positive_rate: sparsity
            * if rate_neg > rate_pos * 0.5 {
                0.05
            } else {
                0.05 * rate_pos
            },
        spurious_negative_rate: sparsity
            * if rate_neg > rate_pos * 0.5 {
                0.06 * rate_neg
            } else {
                0.0
            },
    }
}

/// The evaluation world behind Table 3 and Figures 10–12: the five Table 2
/// types × five properties, 20 entities each.
///
/// One combination (`quiet celebrities`) is deliberately sparse so it
/// falls below the ρ = 100 occurrence threshold, reproducing Surveyor's
/// slightly-below-1 coverage in Table 3.
pub fn table2_world(seed: u64) -> World {
    table2_world_sized(seed, 480)
}

/// [`table2_world`] with a configurable number of background entities per
/// type (0 restricts the world to the 100 curated evaluation entities).
pub fn table2_world_sized(seed: u64, background_per_type: usize) -> World {
    let kb = Arc::new(seed::table2_kb_extended(background_per_type, seed));
    let mut builder = WorldBuilder::new(kb, seed);
    let groups: [(&str, bool, &[Profile; 5]); 5] = [
        ("animal", true, &ANIMAL_PROFILES),
        ("celebrity", false, &CELEBRITY_PROFILES),
        ("city", false, &CITY_PROFILES),
        ("profession", true, &PROFESSION_PROFILES),
        ("sport", false, &SPORT_PROFILES),
    ];
    for (type_name, plural, profiles) in groups {
        for profile in profiles.iter() {
            let sparse = type_name == "celebrity" && profile.0 == "quiet";
            let mut params = profile_params(profile, plural, sparse);
            if let Some(positive) = designated(type_name, profile.0) {
                // Background entities keep the profile share; curated ones
                // are pinned.
                params.opinions = OpinionRule::DesignatedNames {
                    positive,
                    background_share: (profile.4 * 0.6).max(0.05),
                };
            }
            builder = builder.domain(type_name, Property::adjective(profile.0), params);
        }
    }
    builder.build()
}

fn appendix_a_params(
    attr: &str,
    threshold: f64,
    softness: f64,
    rate_pos: f64,
    rate_neg: f64,
) -> DomainParams {
    DomainParams {
        p_agree: 0.88,
        rate_pos,
        rate_neg,
        opinions: OpinionRule::AttributeThreshold {
            attr: attr.to_owned(),
            threshold,
            softness,
        },
        popularity: PopularityRule::ByAttribute {
            attr: attr.to_owned(),
            exponent: 0.5,
        },
        aspect_noise: 0.2,
        part_of_noise: 0.1,
        filler_noise: 0.4,
        extended_verb_share: 0.12,
        double_negation_share: 0.02,
        plural_subjects: false,
        crowd_agreement: None,
        author_jitter: 0.0,
        spurious_positive_rate: 0.3,
        spurious_negative_rate: 0.0,
    }
}

/// Appendix A: `wealthy country` with GDP-per-capita ground truth.
pub fn wealthy_countries_world(seed: u64) -> World {
    let (kb, _) = seed::wealthy_countries();
    WorldBuilder::new(Arc::new(kb), seed)
        .domain(
            "country",
            Property::adjective("wealthy"),
            appendix_a_params(ATTR_GDP_PER_CAPITA, 30_000.0, 0.6, 12.0, 1.8),
        )
        .build()
}

/// Appendix A: `big lake` over Swiss lakes — deliberately sparse: "as our
/// knowledge base is large, it contains many entities for which no
/// statements can be collected".
pub fn big_lakes_world(seed: u64) -> World {
    let (kb, _) = seed::swiss_lakes();
    WorldBuilder::new(Arc::new(kb), seed)
        .domain(
            "lake",
            Property::adjective("big"),
            appendix_a_params(ATTR_AREA_KM2, 60.0, 0.5, 6.0, 0.9),
        )
        .build()
}

/// Appendix A: `high mountain` over British mountains, sparse like lakes.
pub fn high_mountains_world(seed: u64) -> World {
    let (kb, _) = seed::british_mountains();
    WorldBuilder::new(Arc::new(kb), seed)
        .domain(
            "mountain",
            Property::adjective("high"),
            appendix_a_params(ATTR_RELATIVE_HEIGHT_M, 800.0, 0.22, 6.0, 0.9),
        )
        .build()
}

/// The Appendix D long-tail world: `num_types` obscure domains ×
/// `props_per_type` properties with very low mention rates — most entities
/// are never written about, collapsing the count-based baselines' coverage
/// (Table 5: majority-vote coverage 0.077).
pub fn long_tail_world(
    num_types: usize,
    entities_per_type: usize,
    props_per_type: usize,
    seed: u64,
) -> World {
    let kb = Arc::new(seed::long_tail_kb(num_types, entities_per_type, seed));
    let mut builder = WorldBuilder::new(kb.clone(), seed);
    let pool = seed::ADJECTIVE_POOL;
    for (ti, t) in kb.types().iter().enumerate() {
        let type_name = t.name().to_owned();
        for pi in 0..props_per_type {
            let adjective = pool[(ti * 7 + pi * 3) % pool.len()];
            // Vary parameters deterministically per combination; rates are
            // low and popularity extremely skewed.
            let pa = 0.78 + 0.02 * ((ti + pi) % 9) as f64;
            let rate_pos = 0.25 + 0.12 * ((ti * 5 + pi) % 7) as f64;
            let rate_neg = 0.05 + 0.04 * ((ti + pi * 2) % 5) as f64;
            builder = builder.domain(
                &type_name,
                Property::adjective(adjective),
                DomainParams {
                    p_agree: pa,
                    rate_pos,
                    rate_neg,
                    opinions: OpinionRule::RandomShare(0.15 + 0.04 * ((pi % 5) as f64)),
                    popularity: PopularityRule::ZipfByIndex { exponent: 1.1 },
                    aspect_noise: 0.02,
                    part_of_noise: 0.0,
                    filler_noise: 0.05,
                    extended_verb_share: 0.15,
                    double_negation_share: 0.01,
                    plural_subjects: false,
                    crowd_agreement: None,
                    author_jitter: 0.15,
                    spurious_positive_rate: 0.02,
                    spurious_negative_rate: 0.0,
                },
            );
        }
    }
    builder.build()
}

/// A two-region world for the region-specific mode of §2: the same
/// entities, but region `"east"` disagrees with region `"west"` on a
/// third of them.
pub fn regional_generator(seed: u64) -> CorpusGenerator {
    let world = table2_world(seed);
    let config = CorpusConfig {
        regions: vec![
            RegionSpec {
                name: "west".to_owned(),
                weight: 1.0,
                opinion_flip: 0.0,
            },
            RegionSpec {
                name: "east".to_owned(),
                weight: 1.0,
                opinion_flip: 0.33,
            },
        ],
        ..CorpusConfig::default()
    };
    CorpusGenerator::new(world, config)
}

/// A named delta-ingestion recipe for incremental mining.
///
/// The generator's shard contents are fixed by `(world seed, num_shards)`:
/// shard `i` of an `n`-shard world is the same documents no matter how many
/// shards are actually realized. A delta preset therefore describes one
/// world split into a *base* prefix and a *delta* suffix — a base snapshot
/// mined from shards `[0, base_shards)` can later ingest shards
/// `[base_shards, num_shards)` and must land byte-identical to mining all
/// `num_shards` from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaPreset {
    /// The name `surveyor update --delta-preset` looks up.
    pub name: &'static str,
    /// The world preset the base snapshot was mined from (`cities`,
    /// `table2`, or `longtail` — the CLI's `--preset` vocabulary).
    pub world: &'static str,
    /// Total shard count of the world. The base snapshot must have been
    /// mined with `--shards` equal to this.
    pub num_shards: usize,
    /// Shards `[0, base_shards)` belong to the base snapshot; the delta is
    /// `[base_shards, num_shards)`.
    pub base_shards: usize,
}

impl DeltaPreset {
    /// Shard indexes the delta ingests, as a half-open range.
    pub fn delta_range(&self) -> std::ops::Range<usize> {
        self.base_shards..self.num_shards
    }

    /// Number of shards in the delta.
    pub fn delta_len(&self) -> usize {
        self.num_shards - self.base_shards
    }
}

/// Every delta preset the CLI and bench harness know about. Sorted by
/// name; each entry keeps `0 < base_shards < num_shards` so both the base
/// and the delta are non-empty.
pub const DELTA_PRESETS: &[DeltaPreset] = &[
    DeltaPreset {
        name: "cities-tail",
        world: "cities",
        num_shards: 4,
        base_shards: 3,
    },
    DeltaPreset {
        name: "longtail-tail",
        world: "longtail",
        num_shards: 8,
        base_shards: 7,
    },
    DeltaPreset {
        name: "table2-half",
        world: "table2",
        num_shards: 8,
        base_shards: 4,
    },
    DeltaPreset {
        name: "table2-tail",
        world: "table2",
        num_shards: 8,
        base_shards: 6,
    },
];

/// Look up a delta preset by name.
pub fn delta_preset(name: &str) -> Option<&'static DeltaPreset> {
    DELTA_PRESETS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_cities_world_shape() {
        let w = big_cities_world(7);
        assert_eq!(w.domains().len(), 1);
        assert_eq!(w.kb().len(), 461);
        let d = &w.domains()[0];
        let big = d.opinions.iter().filter(|&&o| o).count();
        // Only a minority of Californian cities are big.
        assert!(big > 5 && big < 120, "big = {big}");
    }

    #[test]
    fn table2_world_has_25_domains() {
        let w = table2_world(7);
        assert_eq!(w.domains().len(), 25);
        // Parameter variation across combinations is present.
        let pas: std::collections::BTreeSet<u64> = w
            .domains()
            .iter()
            .map(|d| (d.params.p_agree * 100.0) as u64)
            .collect();
        assert!(pas.len() > 5, "expected varied agreement, got {pas:?}");
    }

    #[test]
    fn table2_polarity_bias_is_property_specific() {
        let w = table2_world(7);
        let cute = w
            .domains()
            .iter()
            .find(|d| d.property.head() == "cute")
            .unwrap();
        let calm = w
            .domains()
            .iter()
            .find(|d| d.property.head() == "calm")
            .unwrap();
        let cute_ratio = cute.params.rate_pos / cute.params.rate_neg;
        let calm_ratio = calm.params.rate_pos / calm.params.rate_neg;
        assert!(cute_ratio > 4.0 * calm_ratio);
    }

    #[test]
    fn appendix_a_worlds_build() {
        assert_eq!(wealthy_countries_world(3).domains().len(), 1);
        assert_eq!(big_lakes_world(3).domains().len(), 1);
        assert_eq!(high_mountains_world(3).domains().len(), 1);
    }

    #[test]
    fn long_tail_world_scale() {
        let w = long_tail_world(10, 20, 4, 5);
        assert_eq!(w.domains().len(), 40);
        assert_eq!(w.kb().len(), 200);
        // Rates are genuinely low.
        assert!(w.domains().iter().all(|d| d.params.rate_pos < 1.5));
    }

    #[test]
    fn delta_presets_are_well_formed() {
        assert!(!DELTA_PRESETS.is_empty());
        for p in DELTA_PRESETS {
            assert!(p.base_shards > 0, "{}: empty base", p.name);
            assert!(p.base_shards < p.num_shards, "{}: empty delta", p.name);
            assert_eq!(p.delta_len(), p.delta_range().len());
            assert_eq!(delta_preset(p.name), Some(p));
        }
        // Sorted and unique by name, so the CLI's error message can list
        // them in a stable order.
        let names: Vec<&str> = DELTA_PRESETS.iter().map(|p| p.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
        assert_eq!(delta_preset("no-such-delta"), None);
    }

    #[test]
    fn regional_generator_has_two_regions() {
        let g = regional_generator(5);
        assert_eq!(g.config().regions.len(), 2);
        // Some opinions differ between regions.
        let diffs: usize = (0..g.world().domains().len())
            .map(|di| {
                (0..g.world().domains()[di].opinions.len())
                    .filter(|&ei| g.region_opinion(0, di, ei) != g.region_opinion(1, di, ei))
                    .count()
            })
            .sum();
        assert!(diffs > 50, "diffs = {diffs}");
    }
}
