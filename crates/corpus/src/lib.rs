//! Synthetic Web-corpus substrate for the Surveyor reproduction.
//!
//! The paper processes a proprietary 40 TB annotated Web snapshot. This
//! crate replaces it with a *generative simulator* that realizes a known
//! ground-truth world into actual English documents:
//!
//! 1. A [`world::World`] fixes, per (type, property) domain, the dominant
//!    opinion of every entity plus the true behavioral parameters
//!    `(pA*, np+S*, np-S*)` of the paper's user model (Figure 7) —
//!    including polarity bias (`np+S* ≠ np-S*`) and occurrence bias
//!    (statement rates depend on the opinion class).
//! 2. The [`generator::CorpusGenerator`] samples per-shard statement counts
//!    from the model's Poisson laws (Poisson additivity makes shards
//!    independently generable), realizes each statement as a sentence via
//!    [`templates`] (declaratives, embedded clauses, double negations,
//!    plus non-intrinsic and part-of distractor noise), and packs
//!    sentences into documents with region tags.
//!
//! Because documents are *text*, the entire downstream pipeline — POS
//! tagging, dependency parsing, entity linking, pattern extraction,
//! polarity detection — is exercised end-to-end, and every experiment can
//! score against the planted ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod presets;
pub mod templates;
pub mod world;

pub use generator::{CorpusConfig, CorpusGenerator, GenScratch, RawDocument};
pub use templates::SentenceBuf;
pub use world::{DomainParams, DomainSpec, OpinionRule, PopularityRule, World, WorldBuilder};
