//! Sentence realization: turning abstract statements into English text.
//!
//! Every realized sentence is designed to round-trip through the NLP
//! pipeline: the dependency parser recognizes the construction, the entity
//! tagger links the mention, and the extraction patterns recover the
//! statement with the intended polarity. Some constructions are
//! intentionally *only* recoverable by the permissive pattern versions
//! (small clauses, extended copulas) or intentionally *rejected* by the
//! intrinsicness filters (aspect and part-of distractors) — that contrast
//! is what reproduces Table 4.
//!
//! Realization is allocation-free on the hot path: every `*_into` method
//! appends one sentence to a reusable [`SentenceBuf`] arena (one per
//! worker per region), so generating a shard costs zero per-sentence
//! `String` temporaries. The `String`-returning methods are thin wrappers
//! kept for tests and one-off callers.

use rand::Rng;
use std::fmt::Write;

/// Realization context for one domain.
#[derive(Debug, Clone)]
pub struct Realizer {
    head_noun: String,
    /// Whether plural-subject realizations are natural for the type
    /// ("Kittens are cute" — yes for animals, no for city names).
    plural_ok: bool,
}

/// Aspects for non-intrinsic distractors ("bad *for parking*").
const ASPECTS: &[&str] = &[
    "parking",
    "tourists",
    "families",
    "beginners",
    "children",
    "business",
];

/// Directional adjectives for part-of distractors ("*southern* France").
const DIRECTIONS: &[&str] = &["southern", "northern", "eastern", "western"];

/// A reusable sentence arena: one flat text buffer plus `(start, end)`
/// byte spans, one span per realized sentence.
///
/// The generator realizes a whole region's sentences into one arena,
/// shuffles the *spans* (the `rand` shuffle consumes randomness purely as
/// a function of slice length, so shuffling spans draws exactly what
/// shuffling owned `String`s used to draw), and packs documents straight
/// from the span list — no per-sentence allocation anywhere. Spans are
/// `u32` offsets: a single shard's arena stays far below 4 GiB.
#[derive(Debug, Clone, Default)]
pub struct SentenceBuf {
    text: String,
    spans: Vec<(u32, u32)>,
}

impl SentenceBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the arena, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.text.clear();
        self.spans.clear();
    }

    /// Number of sentences held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer holds no sentences.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th sentence in current span order.
    pub fn sentence(&self, i: usize) -> &str {
        let (start, end) = self.spans[i];
        &self.text[start as usize..end as usize]
    }

    /// The sentence spans, mutable — exposed so callers can reorder
    /// sentences (the generator shuffles document packing order) without
    /// touching the arena text.
    pub fn spans_mut(&mut self) -> &mut [(u32, u32)] {
        &mut self.spans
    }

    /// Marks the start of a new sentence; pass the result to
    /// [`commit`](Self::commit) once the sentence is fully written.
    fn begin(&mut self) -> u32 {
        self.text.len() as u32
    }

    /// Records the span of the sentence started at `start`.
    fn commit(&mut self, start: u32) {
        self.spans.push((start, self.text.len() as u32));
    }
}

/// Appends the plural of a (possibly multi-word) name: last word gains an
/// `s` (`es` after a sibilant, `y` → `ies` after a consonant). The
/// buffered core of [`pluralize`]; byte-for-byte the same output, zero
/// allocations.
pub fn pluralize_into(name: &str, out: &mut String) {
    let last_start = name.rfind(' ').map_or(0, |i| i + 1);
    let last = &name[last_start..];
    let bytes = last.as_bytes();
    // ASCII-case-insensitive suffix probe (names are ASCII; non-ASCII
    // bytes simply never match a letter class, as with `to_lowercase`).
    let tail = |back: usize| {
        bytes
            .get(bytes.len().wrapping_sub(back))
            .map(u8::to_ascii_lowercase)
    };
    out.push_str(&name[..last_start]);
    let sibilant = matches!(tail(1), Some(b's' | b'x'))
        || (matches!(tail(1), Some(b'h')) && matches!(tail(2), Some(b'c')));
    if sibilant {
        out.push_str(last);
        out.push_str("es");
    } else if matches!(tail(1), Some(b'y'))
        && !matches!(tail(2), Some(b'a' | b'e' | b'i' | b'o' | b'u'))
    {
        out.push_str(&last[..last.len() - 1]);
        out.push_str("ies");
    } else {
        out.push_str(last);
        out.push('s');
    }
}

/// Pluralizes a (possibly multi-word) name: last word gains an `s`
/// (`y` → `ies` after a consonant).
pub fn pluralize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    pluralize_into(name, &mut out);
    out
}

impl Realizer {
    /// Creates a realizer for a type with the given head noun.
    pub fn new(head_noun: &str, plural_ok: bool) -> Self {
        Self {
            head_noun: head_noun.to_owned(),
            plural_ok,
        }
    }

    /// Realizes one evidence statement.
    ///
    /// `positive` is the *intended extracted polarity*; the realization may
    /// use a double negation (probability `double_negation_share`) or a
    /// construction only the extended verb class recognizes (probability
    /// `extended_verb_share`).
    pub fn statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
        extended_verb_share: f64,
        double_negation_share: f64,
    ) -> String {
        let mut buf = SentenceBuf::new();
        self.statement_into(
            rng,
            entity,
            property,
            positive,
            extended_verb_share,
            double_negation_share,
            &mut buf,
        );
        buf.sentence(0).to_owned()
    }

    /// [`statement`](Self::statement) appending into a reusable buffer:
    /// identical bytes, identical randomness consumption, zero temporary
    /// allocations.
    #[allow(clippy::too_many_arguments)]
    pub fn statement_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
        extended_verb_share: f64,
        double_negation_share: f64,
        buf: &mut SentenceBuf,
    ) {
        let start = buf.begin();
        if rng.gen_bool(extended_verb_share.clamp(0.0, 1.0)) {
            self.extended_verb_statement(rng, entity, property, positive, &mut buf.text);
        } else if rng.gen_bool(double_negation_share.clamp(0.0, 1.0)) {
            self.double_negation_statement(rng, entity, property, positive, &mut buf.text);
        } else if positive {
            self.plain_positive(rng, entity, property, &mut buf.text);
        } else {
            self.plain_negative(rng, entity, property, &mut buf.text);
        }
        buf.commit(start);
    }

    /// Positive realizations lean attributive/predicate-nominal (the
    /// `amod` pattern) the way Web text does — Table 4's V1 (amod-only)
    /// extracts more than V3 (complement-only) on the real snapshot.
    fn plain_positive<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        out: &mut String,
    ) {
        let noun = &self.head_noun;
        // Weighted choice: (weight, template id). Plural variants are only
        // natural for some types.
        let weights: &[(u32, u8)] = if self.plural_ok {
            &[
                (14, 0),
                (22, 1),
                (8, 2),
                (6, 3),
                (16, 4),
                (10, 5),
                (6, 6),
                (12, 7),
                (6, 8),
            ]
        } else {
            &[(16, 0), (26, 1), (10, 2), (8, 3), (18, 4), (14, 7), (8, 8)]
        };
        let total: u32 = weights.iter().map(|(w, _)| w).sum();
        let mut roll = rng.gen_range(0..total);
        let mut id = 0u8;
        for &(w, t) in weights {
            if roll < w {
                id = t;
                break;
            }
            roll -= w;
        }
        // Writing into a `String` is infallible, hence the discarded
        // results.
        match id {
            0 => {
                let _ = write!(out, "{entity} is {property}.");
            }
            1 => {
                let _ = write!(out, "{entity} is a {property} {noun}.");
            }
            2 => {
                let _ = write!(out, "I think that {entity} is {property}.");
            }
            3 => {
                let _ = write!(out, "I think {entity} is {property}.");
            }
            4 => {
                let _ = write!(out, "I love the {property} {entity}.");
            }
            5 => {
                pluralize_into(entity, out);
                let _ = write!(out, " are {property}.");
            }
            6 => {
                pluralize_into(entity, out);
                let _ = write!(out, " are {property} ");
                pluralize_into(noun, out);
                out.push('.');
            }
            7 => {
                let _ = write!(out, "We saw the {property} {entity}.");
            }
            _ => {
                let _ = write!(out, "{entity} is a {noun} that is {property}.");
            }
        }
    }

    fn plain_negative<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        out: &mut String,
    ) {
        let noun = &self.head_noun;
        let choice = if self.plural_ok {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..5)
        };
        match choice {
            0 => {
                let _ = write!(out, "{entity} is not {property}.");
            }
            1 => {
                let _ = write!(out, "{entity} is not a {property} {noun}.");
            }
            2 => {
                let _ = write!(out, "I don't think that {entity} is {property}.");
            }
            3 => {
                let _ = write!(out, "I do not believe {entity} is {property}.");
            }
            4 => {
                let _ = write!(out, "{entity} is never {property}.");
            }
            _ => {
                pluralize_into(entity, out);
                let _ = write!(out, " are not {property}.");
            }
        }
    }

    /// A realization only the extended verb class (Table 4 V1/V2)
    /// extracts.
    fn extended_verb_statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
        out: &mut String,
    ) {
        let _ = match (positive, rng.gen_range(0..3)) {
            (true, 0) => write!(out, "I find {entity} {property}."),
            (true, 1) => write!(out, "{entity} is considered {property}."),
            (true, _) => write!(out, "{entity} seems {property}."),
            (false, 0) => write!(out, "{entity} does not seem {property}."),
            (false, 1) => write!(out, "{entity} is not considered {property}."),
            (false, _) => write!(out, "I don't find {entity} {property}."),
        };
    }

    /// A double-negation realization (Figure 5): the surface carries two
    /// negations but the extracted polarity matches `positive`.
    fn double_negation_statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
        out: &mut String,
    ) {
        if positive {
            let _ = if rng.gen_bool(0.5) {
                write!(out, "I don't think that {entity} is never {property}.")
            } else {
                write!(out, "I do not believe {entity} is never {property}.")
            };
        } else {
            // Negative statements have no natural even-negation surface;
            // fall back to the single-negation embedded form.
            let _ = write!(out, "I don't think that {entity} is {property}.");
        }
    }

    /// A non-intrinsic aspect distractor: "X is good/bad for parking".
    /// Filtered by the intrinsicness check; counted by V1/V2.
    pub fn aspect_noise<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        let mut buf = SentenceBuf::new();
        self.aspect_noise_into(rng, entity, &mut buf);
        buf.sentence(0).to_owned()
    }

    /// [`aspect_noise`](Self::aspect_noise) into a reusable buffer.
    pub fn aspect_noise_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        buf: &mut SentenceBuf,
    ) {
        let start = buf.begin();
        let aspect = ASPECTS[rng.gen_range(0..ASPECTS.len())];
        let adjective = if rng.gen_bool(0.5) { "good" } else { "bad" };
        let _ = write!(buf.text, "{entity} is {adjective} for {aspect}.");
        buf.commit(start);
    }

    /// A part-of distractor: "southern X is warm". The amod lands on the
    /// subject mention, which V1/V2 extract and V4's coreference
    /// requirement rejects.
    pub fn part_of_noise<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        let mut buf = SentenceBuf::new();
        self.part_of_noise_into(rng, entity, &mut buf);
        buf.sentence(0).to_owned()
    }

    /// [`part_of_noise`](Self::part_of_noise) into a reusable buffer.
    pub fn part_of_noise_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        buf: &mut SentenceBuf,
    ) {
        let start = buf.begin();
        let direction = DIRECTIONS[rng.gen_range(0..DIRECTIONS.len())];
        let predicate = if rng.gen_bool(0.5) { "warm" } else { "cold" };
        let season = if rng.gen_bool(0.5) {
            "summer"
        } else {
            "winter"
        };
        // The prepositional tail makes the predicate non-intrinsic, so the
        // checked versions also reject the acomp reading; only the
        // spurious amod on the subject survives for V1/V2.
        let _ = write!(
            buf.text,
            "{direction} {entity} is {predicate} in the {season}."
        );
        buf.commit(start);
    }

    /// Neutral filler mentioning the entity without claiming a property.
    pub fn filler<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        let mut buf = SentenceBuf::new();
        self.filler_into(rng, entity, &mut buf);
        buf.sentence(0).to_owned()
    }

    /// [`filler`](Self::filler) into a reusable buffer.
    pub fn filler_into<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str, buf: &mut SentenceBuf) {
        let start = buf.begin();
        let _ = match rng.gen_range(0..4) {
            0 => write!(buf.text, "I visited {entity} during the summer."),
            1 => write!(buf.text, "People love {entity}."),
            2 => write!(buf.text, "We saw {entity} at the weekend."),
            _ => write!(buf.text, "{entity} is in the north."),
        };
        buf.commit(start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("Kitten"), "Kittens");
        assert_eq!(pluralize("Grizzly bear"), "Grizzly bears");
        assert_eq!(pluralize("City"), "Cities");
        assert_eq!(pluralize("Fox"), "Foxes");
        assert_eq!(pluralize("Bus"), "Buses");
        assert_eq!(pluralize("Monkey"), "Monkeys");
    }

    #[test]
    fn pluralize_into_appends_without_clearing() {
        let mut out = String::from("The ");
        pluralize_into("Fox", &mut out);
        assert_eq!(out, "The Foxes");
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn statements_mention_entity_and_property() {
        let r = Realizer::new("animal", true);
        let mut rng = rng();
        for positive in [true, false] {
            for _ in 0..50 {
                let s = r.statement(&mut rng, "Kitten", "cute", positive, 0.2, 0.05);
                assert!(s.to_lowercase().contains("kitten"), "{s}");
                assert!(s.contains("cute"), "{s}");
                assert!(s.ends_with('.'), "{s}");
            }
        }
    }

    #[test]
    fn buffered_statements_accumulate_spans() {
        let r = Realizer::new("animal", true);
        let mut rng = rng();
        let mut buf = SentenceBuf::new();
        for i in 0..10 {
            r.statement_into(&mut rng, "Kitten", "cute", true, 0.2, 0.05, &mut buf);
            assert_eq!(buf.len(), i + 1);
        }
        for i in 0..10 {
            let s = buf.sentence(i);
            assert!(s.contains("cute"), "{s}");
            assert!(s.ends_with('.'), "{s}");
        }
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn plain_negative_contains_negation() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        for _ in 0..50 {
            let s = r.statement(&mut rng, "Chicago", "big", false, 0.0, 0.0);
            let lower = s.to_lowercase();
            assert!(
                lower.contains("not") || lower.contains("n't") || lower.contains("never"),
                "{s}"
            );
        }
    }

    #[test]
    fn double_negation_has_two_negations() {
        let r = Realizer::new("animal", true);
        let mut rng = rng();
        for _ in 0..20 {
            let s = r.statement(&mut rng, "Snake", "dangerous", true, 0.0, 1.0);
            let negs =
                s.matches("n't").count() + s.matches(" not ").count() + s.matches("never").count();
            assert!(negs >= 2, "{s}");
        }
    }

    #[test]
    fn aspect_noise_has_prepositional_constriction() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        let s = r.aspect_noise(&mut rng, "Chicago");
        assert!(s.contains(" for "), "{s}");
    }

    #[test]
    fn part_of_noise_prefixes_direction() {
        let r = Realizer::new("country", false);
        let mut rng = rng();
        let s = r.part_of_noise(&mut rng, "France");
        assert!(DIRECTIONS.iter().any(|d| s.starts_with(d)), "{s}");
    }

    #[test]
    fn no_plural_templates_without_plural_ok() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        for _ in 0..100 {
            let s = r.statement(&mut rng, "Chicago", "big", true, 0.0, 0.0);
            assert!(!s.contains("Chicagos"), "{s}");
        }
    }
}
