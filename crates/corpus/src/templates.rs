//! Sentence realization: turning abstract statements into English text.
//!
//! Every realized sentence is designed to round-trip through the NLP
//! pipeline: the dependency parser recognizes the construction, the entity
//! tagger links the mention, and the extraction patterns recover the
//! statement with the intended polarity. Some constructions are
//! intentionally *only* recoverable by the permissive pattern versions
//! (small clauses, extended copulas) or intentionally *rejected* by the
//! intrinsicness filters (aspect and part-of distractors) — that contrast
//! is what reproduces Table 4.

use rand::Rng;

/// Realization context for one domain.
#[derive(Debug, Clone)]
pub struct Realizer {
    head_noun: String,
    /// Whether plural-subject realizations are natural for the type
    /// ("Kittens are cute" — yes for animals, no for city names).
    plural_ok: bool,
}

/// Aspects for non-intrinsic distractors ("bad *for parking*").
const ASPECTS: &[&str] = &[
    "parking",
    "tourists",
    "families",
    "beginners",
    "children",
    "business",
];

/// Directional adjectives for part-of distractors ("*southern* France").
const DIRECTIONS: &[&str] = &["southern", "northern", "eastern", "western"];

/// Pluralizes a (possibly multi-word) name: last word gains an `s`
/// (`y` → `ies` after a consonant).
pub fn pluralize(name: &str) -> String {
    let (head, last) = match name.rfind(' ') {
        Some(i) => (&name[..=i], &name[i + 1..]),
        None => ("", name),
    };
    let lower = last.to_lowercase();
    let plural = if lower.ends_with('s') || lower.ends_with('x') || lower.ends_with("ch") {
        format!("{last}es")
    } else if lower.ends_with('y')
        && !matches!(
            lower.as_bytes().get(lower.len().wrapping_sub(2)),
            Some(b'a' | b'e' | b'i' | b'o' | b'u')
        )
    {
        format!("{}ies", &last[..last.len() - 1])
    } else {
        format!("{last}s")
    };
    format!("{head}{plural}")
}

impl Realizer {
    /// Creates a realizer for a type with the given head noun.
    pub fn new(head_noun: &str, plural_ok: bool) -> Self {
        Self {
            head_noun: head_noun.to_owned(),
            plural_ok,
        }
    }

    /// Realizes one evidence statement.
    ///
    /// `positive` is the *intended extracted polarity*; the realization may
    /// use a double negation (probability `double_negation_share`) or a
    /// construction only the extended verb class recognizes (probability
    /// `extended_verb_share`).
    pub fn statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
        extended_verb_share: f64,
        double_negation_share: f64,
    ) -> String {
        if rng.gen_bool(extended_verb_share.clamp(0.0, 1.0)) {
            return self.extended_verb_statement(rng, entity, property, positive);
        }
        if rng.gen_bool(double_negation_share.clamp(0.0, 1.0)) {
            return self.double_negation_statement(rng, entity, property, positive);
        }
        if positive {
            self.plain_positive(rng, entity, property)
        } else {
            self.plain_negative(rng, entity, property)
        }
    }

    /// Positive realizations lean attributive/predicate-nominal (the
    /// `amod` pattern) the way Web text does — Table 4's V1 (amod-only)
    /// extracts more than V3 (complement-only) on the real snapshot.
    fn plain_positive<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str, property: &str) -> String {
        let noun = &self.head_noun;
        // Weighted choice: (weight, template id). Plural variants are only
        // natural for some types.
        let weights: &[(u32, u8)] = if self.plural_ok {
            &[
                (14, 0),
                (22, 1),
                (8, 2),
                (6, 3),
                (16, 4),
                (10, 5),
                (6, 6),
                (12, 7),
                (6, 8),
            ]
        } else {
            &[(16, 0), (26, 1), (10, 2), (8, 3), (18, 4), (14, 7), (8, 8)]
        };
        let total: u32 = weights.iter().map(|(w, _)| w).sum();
        let mut roll = rng.gen_range(0..total);
        let mut id = 0u8;
        for &(w, t) in weights {
            if roll < w {
                id = t;
                break;
            }
            roll -= w;
        }
        match id {
            0 => format!("{entity} is {property}."),
            1 => format!("{entity} is a {property} {noun}."),
            2 => format!("I think that {entity} is {property}."),
            3 => format!("I think {entity} is {property}."),
            4 => format!("I love the {property} {entity}."),
            5 => format!("{} are {property}.", pluralize(entity)),
            6 => format!("{} are {property} {}.", pluralize(entity), pluralize(noun)),
            7 => format!("We saw the {property} {entity}."),
            _ => format!("{entity} is a {noun} that is {property}."),
        }
    }

    fn plain_negative<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str, property: &str) -> String {
        let noun = &self.head_noun;
        let choice = if self.plural_ok {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..5)
        };
        match choice {
            0 => format!("{entity} is not {property}."),
            1 => format!("{entity} is not a {property} {noun}."),
            2 => format!("I don't think that {entity} is {property}."),
            3 => format!("I do not believe {entity} is {property}."),
            4 => format!("{entity} is never {property}."),
            _ => format!("{} are not {property}.", pluralize(entity)),
        }
    }

    /// A realization only the extended verb class (Table 4 V1/V2)
    /// extracts.
    fn extended_verb_statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
    ) -> String {
        match (positive, rng.gen_range(0..3)) {
            (true, 0) => format!("I find {entity} {property}."),
            (true, 1) => format!("{entity} is considered {property}."),
            (true, _) => format!("{entity} seems {property}."),
            (false, 0) => format!("{entity} does not seem {property}."),
            (false, 1) => format!("{entity} is not considered {property}."),
            (false, _) => format!("I don't find {entity} {property}."),
        }
    }

    /// A double-negation realization (Figure 5): the surface carries two
    /// negations but the extracted polarity matches `positive`.
    fn double_negation_statement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &str,
        property: &str,
        positive: bool,
    ) -> String {
        if positive {
            if rng.gen_bool(0.5) {
                format!("I don't think that {entity} is never {property}.")
            } else {
                format!("I do not believe {entity} is never {property}.")
            }
        } else {
            // Negative statements have no natural even-negation surface;
            // fall back to the single-negation embedded form.
            format!("I don't think that {entity} is {property}.")
        }
    }

    /// A non-intrinsic aspect distractor: "X is good/bad for parking".
    /// Filtered by the intrinsicness check; counted by V1/V2.
    pub fn aspect_noise<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        let aspect = ASPECTS[rng.gen_range(0..ASPECTS.len())];
        let adjective = if rng.gen_bool(0.5) { "good" } else { "bad" };
        format!("{entity} is {adjective} for {aspect}.")
    }

    /// A part-of distractor: "southern X is warm". The amod lands on the
    /// subject mention, which V1/V2 extract and V4's coreference
    /// requirement rejects.
    pub fn part_of_noise<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        let direction = DIRECTIONS[rng.gen_range(0..DIRECTIONS.len())];
        let predicate = if rng.gen_bool(0.5) { "warm" } else { "cold" };
        let season = if rng.gen_bool(0.5) {
            "summer"
        } else {
            "winter"
        };
        // The prepositional tail makes the predicate non-intrinsic, so the
        // checked versions also reject the acomp reading; only the
        // spurious amod on the subject survives for V1/V2.
        format!("{direction} {entity} is {predicate} in the {season}.")
    }

    /// Neutral filler mentioning the entity without claiming a property.
    pub fn filler<R: Rng + ?Sized>(&self, rng: &mut R, entity: &str) -> String {
        match rng.gen_range(0..4) {
            0 => format!("I visited {entity} during the summer."),
            1 => format!("People love {entity}."),
            2 => format!("We saw {entity} at the weekend."),
            _ => format!("{entity} is in the north."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("Kitten"), "Kittens");
        assert_eq!(pluralize("Grizzly bear"), "Grizzly bears");
        assert_eq!(pluralize("City"), "Cities");
        assert_eq!(pluralize("Fox"), "Foxes");
        assert_eq!(pluralize("Bus"), "Buses");
        assert_eq!(pluralize("Monkey"), "Monkeys");
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn statements_mention_entity_and_property() {
        let r = Realizer::new("animal", true);
        let mut rng = rng();
        for positive in [true, false] {
            for _ in 0..50 {
                let s = r.statement(&mut rng, "Kitten", "cute", positive, 0.2, 0.05);
                assert!(s.to_lowercase().contains("kitten"), "{s}");
                assert!(s.contains("cute"), "{s}");
                assert!(s.ends_with('.'), "{s}");
            }
        }
    }

    #[test]
    fn plain_negative_contains_negation() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        for _ in 0..50 {
            let s = r.statement(&mut rng, "Chicago", "big", false, 0.0, 0.0);
            let lower = s.to_lowercase();
            assert!(
                lower.contains("not") || lower.contains("n't") || lower.contains("never"),
                "{s}"
            );
        }
    }

    #[test]
    fn double_negation_has_two_negations() {
        let r = Realizer::new("animal", true);
        let mut rng = rng();
        for _ in 0..20 {
            let s = r.statement(&mut rng, "Snake", "dangerous", true, 0.0, 1.0);
            let negs =
                s.matches("n't").count() + s.matches(" not ").count() + s.matches("never").count();
            assert!(negs >= 2, "{s}");
        }
    }

    #[test]
    fn aspect_noise_has_prepositional_constriction() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        let s = r.aspect_noise(&mut rng, "Chicago");
        assert!(s.contains(" for "), "{s}");
    }

    #[test]
    fn part_of_noise_prefixes_direction() {
        let r = Realizer::new("country", false);
        let mut rng = rng();
        let s = r.part_of_noise(&mut rng, "France");
        assert!(DIRECTIONS.iter().any(|d| s.starts_with(d)), "{s}");
    }

    #[test]
    fn no_plural_templates_without_plural_ok() {
        let r = Realizer::new("city", false);
        let mut rng = rng();
        for _ in 0..100 {
            let s = r.statement(&mut rng, "Chicago", "big", true, 0.0, 0.0);
            assert!(!s.contains("Chicagos"), "{s}");
        }
    }
}
