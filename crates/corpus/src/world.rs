//! Ground-truth worlds: who actually holds which opinion, and how authors
//! behave (the generative side of paper Figure 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use surveyor_kb::{EntityId, KnowledgeBase, Property, TypeId};
use surveyor_prob::SeedStream;

/// How dominant opinions are assigned to the entities of a domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpinionRule {
    /// Independent Bernoulli with the given positive share.
    RandomShare(f64),
    /// Sigmoid over the log of an objective attribute: entities above the
    /// threshold are positive with high probability ("big" correlates with
    /// population, §2). `softness` is the logistic scale in log-space;
    /// smaller is sharper. Entities missing the attribute are negative.
    AttributeThreshold {
        /// Attribute key (e.g. `"population"`).
        attr: String,
        /// Threshold value at which the probability is ½.
        threshold: f64,
        /// Logistic softness in natural-log units.
        softness: f64,
    },
    /// Explicitly designated positives by canonical entity name; everyone
    /// else is positive with `background_share`. Used to plant plausible
    /// opinions for curated entities (kittens are cute, spiders are not —
    /// Figure 10).
    DesignatedNames {
        /// Canonical names of positive entities.
        positive: Vec<String>,
        /// Positive probability for undesignated entities.
        background_share: f64,
    },
}

/// How per-entity popularity multipliers are assigned (scales all statement
/// rates; models that some entities are simply written about more).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PopularityRule {
    /// Every entity has multiplier 1 — the world matches the paper's model
    /// exactly.
    Uniform,
    /// Multiplier proportional to `(attr / median)^exponent`, clamped to
    /// `[0.05, 20]`: popular cities are big cities (Figure 3a).
    ByAttribute {
        /// Attribute key.
        attr: String,
        /// Power-law exponent.
        exponent: f64,
    },
    /// Zipf weight by entity index within the type (rank 1 = first entity),
    /// normalized to mean 1 — the long-tail skew of Figure 9.
    ZipfByIndex {
        /// Zipf exponent.
        exponent: f64,
    },
    /// Zipf weights assigned over a deterministic random permutation of
    /// the entities, normalized to mean 1. Unlike [`Self::ZipfByIndex`],
    /// popularity is uncorrelated with insertion order, so curated
    /// evaluation entities span the whole popularity spectrum.
    ZipfShuffled {
        /// Zipf exponent.
        exponent: f64,
    },
    /// Independent log-normal multipliers with mean 1
    /// (`exp(N(−σ²/2, σ²))`). Bounded dispersion: entities vary in how
    /// much is written about them without the extreme Zipf head that
    /// would let popularity masquerade as an opinion class.
    LogNormal {
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

/// Behavioral parameters of one (type, property) domain — the ground-truth
/// counterparts of the model parameters `⟨pA, np+S, np-S⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainParams {
    /// True author-agreement probability `pA*`.
    pub p_agree: f64,
    /// Expected positive statements for a positive-opinion author pool at
    /// popularity 1 (`np+S*`).
    pub rate_pos: f64,
    /// Expected negative statements analog (`np-S*`).
    pub rate_neg: f64,
    /// Opinion assignment rule.
    pub opinions: OpinionRule,
    /// Popularity multipliers.
    pub popularity: PopularityRule,
    /// Expected non-intrinsic "aspect" distractor sentences per entity
    /// ("X is bad for parking") — extracted by unchecked pattern versions,
    /// filtered by V3/V4.
    pub aspect_noise: f64,
    /// Expected part-of distractor sentences per entity ("southern X is
    /// warm") — extracted wrongly by V1/V2.
    pub part_of_noise: f64,
    /// Expected neutral filler sentences per entity (no property claim).
    pub filler_noise: f64,
    /// Fraction of realized statements that use constructions only the
    /// extended verb class recognizes ("I find X cute", "X seems big");
    /// inflates V1/V2 counts relative to V4 (Table 4).
    pub extended_verb_share: f64,
    /// Fraction of statements realized with a double negation (Figure 5).
    pub double_negation_share: f64,
    /// Whether plural-subject realizations are natural for the type
    /// ("Kittens are cute"); false for named places.
    pub plural_subjects: bool,
    /// Agreement probability of *crowd workers* judging this combination
    /// (§7.3). Defaults to the author agreement `p_agree` when `None`;
    /// the two populations differ in practice — Web authors are more
    /// contrarian than survey takers.
    pub crowd_agreement: Option<f64>,
    /// Half-width of a per-entity skewed jitter on the author agreement,
    /// `pa_i = clamp(pA − jitter·u², 0.5, 1)`: a minority of entities is
    /// heavily contrarian on the Web even when crowd workers are
    /// unanimous.
    pub author_jitter: f64,
    /// Flat per-entity rate of *spurious positive* statements added
    /// regardless of opinion: contextual or relative usages ("Reykjavik is
    /// a big city — for Iceland") that the extractor correctly reads as
    /// positive claims. This channel is what collapses count-based
    /// majority voting in the paper (its precision stays low even at
    /// perfect worker agreement, Figure 12) while the probabilistic model
    /// absorbs it into `λ+-`.
    pub spurious_positive_rate: f64,
    /// The symmetric channel for inverted-bias properties (drive-by
    /// complaints: "X is not calm" about perfectly calm towns).
    pub spurious_negative_rate: f64,
}

impl Default for DomainParams {
    fn default() -> Self {
        Self {
            p_agree: 0.9,
            rate_pos: 30.0,
            rate_neg: 3.0,
            opinions: OpinionRule::RandomShare(0.4),
            popularity: PopularityRule::Uniform,
            aspect_noise: 0.5,
            part_of_noise: 0.0,
            filler_noise: 1.0,
            extended_verb_share: 0.15,
            double_negation_share: 0.02,
            plural_subjects: false,
            crowd_agreement: None,
            author_jitter: 0.0,
            spurious_positive_rate: 0.0,
            spurious_negative_rate: 0.0,
        }
    }
}

impl DomainParams {
    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.p_agree), "p_agree out of range");
        assert!(
            self.rate_pos >= 0.0 && self.rate_neg >= 0.0,
            "negative rates"
        );
        assert!(
            (0.0..=1.0).contains(&self.extended_verb_share),
            "extended_verb_share out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.double_negation_share),
            "double_negation_share out of range"
        );
    }
}

/// A fully instantiated domain: entities with planted opinions and
/// popularity multipliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// The entity type.
    pub type_id: TypeId,
    /// The subjective property.
    pub property: Property,
    /// Behavioral parameters.
    pub params: DomainParams,
    /// Per-entity dominant opinion, parallel to
    /// `kb.entities_of_type(type_id)`.
    pub opinions: Vec<bool>,
    /// Per-entity popularity multiplier, same order.
    pub popularity: Vec<f64>,
    /// Per-entity author agreement (jittered around `params.p_agree`).
    pub agreements: Vec<f64>,
}

impl DomainSpec {
    /// Expected `(positive, negative)` statement rates for entity index
    /// `i` of the type — the Poisson rates the generator samples from.
    pub fn rates(&self, i: usize) -> (f64, f64) {
        self.rates_for(i, self.opinions[i])
    }

    /// Like [`Self::rates`], with an explicit opinion (used by the
    /// generator's region-specific opinion overrides).
    pub fn rates_for(&self, i: usize, opinion: bool) -> (f64, f64) {
        let pa = self.agreements[i];
        let pop = self.popularity[i];
        let (base_pos, base_neg) = if opinion {
            (pa * self.params.rate_pos, (1.0 - pa) * self.params.rate_neg)
        } else {
            ((1.0 - pa) * self.params.rate_pos, pa * self.params.rate_neg)
        };
        // Spurious statements are popularity-independent: contextual
        // usages ("big for Iceland") concern obscure entities as much as
        // famous ones, so the channel is additive after the popularity
        // multiplier.
        (
            pop * base_pos + self.params.spurious_positive_rate,
            pop * base_neg + self.params.spurious_negative_rate,
        )
    }
}

/// A ground-truth world over a knowledge base.
#[derive(Debug, Clone)]
pub struct World {
    kb: Arc<KnowledgeBase>,
    domains: Vec<DomainSpec>,
    seed: u64,
}

impl World {
    /// The knowledge base.
    pub fn kb(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    /// All domains.
    pub fn domains(&self) -> &[DomainSpec] {
        &self.domains
    }

    /// The master seed the world was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Looks up a domain by type and property.
    pub fn domain(&self, type_id: TypeId, property: &Property) -> Option<&DomainSpec> {
        self.domains
            .iter()
            .find(|d| d.type_id == type_id && &d.property == property)
    }

    /// The planted dominant opinion for one entity under one domain, if
    /// the entity belongs to the domain's type.
    pub fn ground_truth(&self, domain: &DomainSpec, entity: EntityId) -> Option<bool> {
        let entities = self.kb.entities_of_type(domain.type_id);
        entities
            .iter()
            .position(|&e| e == entity)
            .map(|i| domain.opinions[i])
    }
}

/// Builder for [`World`].
#[derive(Debug)]
pub struct WorldBuilder {
    kb: Arc<KnowledgeBase>,
    domains: Vec<DomainSpec>,
    seed: u64,
}

impl WorldBuilder {
    /// Starts a world over a knowledge base with a master seed.
    pub fn new(kb: Arc<KnowledgeBase>, seed: u64) -> Self {
        Self {
            kb,
            domains: Vec::new(),
            seed,
        }
    }

    /// Adds a domain for `(type, property)` with the given behavioral
    /// parameters; opinions and popularity are instantiated immediately
    /// and deterministically from the world seed.
    ///
    /// # Panics
    /// Panics if the type name is unknown or parameters are invalid.
    pub fn domain(mut self, type_name: &str, property: Property, params: DomainParams) -> Self {
        params.validate();
        let type_id = self
            .kb
            .type_by_name(type_name)
            .unwrap_or_else(|| panic!("unknown type: {type_name}")); // lint:allow(no-panic-in-lib): type names come from the same WorldConfig that registered them
        let entities = self.kb.entities_of_type(type_id);
        let stream = SeedStream::new(self.seed)
            .child("domain")
            .child(type_name)
            .child(&property.to_string());
        let mut rng = StdRng::seed_from_u64(stream.seed());

        let opinions: Vec<bool> = entities
            .iter()
            .map(|&e| match &params.opinions {
                OpinionRule::RandomShare(share) => rng.gen_bool((*share).clamp(0.0, 1.0)),
                OpinionRule::AttributeThreshold {
                    attr,
                    threshold,
                    softness,
                } => {
                    let Some(value) = self.kb.entity(e).attribute(attr) else {
                        return false;
                    };
                    let z =
                        (value.max(f64::MIN_POSITIVE).ln() - threshold.ln()) / softness.max(1e-6);
                    let p = 1.0 / (1.0 + (-z).exp());
                    rng.gen_bool(p.clamp(0.0, 1.0))
                }
                OpinionRule::DesignatedNames {
                    positive,
                    background_share,
                } => {
                    let name = self.kb.entity(e).name();
                    if positive.iter().any(|p| p == name) {
                        true
                    } else {
                        rng.gen_bool(background_share.clamp(0.0, 1.0))
                    }
                }
            })
            .collect();

        let popularity: Vec<f64> = match &params.popularity {
            PopularityRule::Uniform => vec![1.0; entities.len()],
            PopularityRule::ByAttribute { attr, exponent } => {
                let values: Vec<f64> = entities
                    .iter()
                    .map(|&e| self.kb.entity(e).attribute(attr).unwrap_or(0.0).max(1e-9))
                    .collect();
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let median = sorted[sorted.len() / 2];
                values
                    .iter()
                    .map(|v| (v / median).powf(*exponent).clamp(0.05, 20.0))
                    .collect()
            }
            PopularityRule::ZipfByIndex { exponent } => {
                let zipf = surveyor_prob::Zipf::new(entities.len(), *exponent);
                let weights: Vec<f64> = (1..=entities.len()).map(|r| zipf.weight(r)).collect();
                let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
                weights.iter().map(|w| w / mean).collect()
            }
            PopularityRule::LogNormal { sigma } => {
                (0..entities.len())
                    .map(|_| {
                        // Box-Muller from two uniforms; rand's StdRng has no
                        // gaussian without rand_distr, which we avoid.
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen::<f64>();
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        // Clamp the head: a single mega-popular entity
                        // would otherwise dominate a small type's counts.
                        (z * sigma - sigma * sigma / 2.0).exp().clamp(0.02, 8.0)
                    })
                    .collect()
            }
            PopularityRule::ZipfShuffled { exponent } => {
                use rand::seq::SliceRandom;
                let zipf = surveyor_prob::Zipf::new(entities.len(), *exponent);
                let mut ranks: Vec<usize> = (1..=entities.len()).collect();
                ranks.shuffle(&mut rng);
                let weights: Vec<f64> = ranks.iter().map(|&r| zipf.weight(r)).collect();
                let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
                weights.iter().map(|w| w / mean).collect()
            }
        };

        let agreements: Vec<f64> = (0..entities.len())
            .map(|_| {
                if params.author_jitter > 0.0 {
                    // Skewed draw (j·u²): most entities stay near the
                    // domain agreement; a minority is heavily contrarian.
                    let u: f64 = rng.gen();
                    (params.p_agree - params.author_jitter * u * u).clamp(0.5, 1.0)
                } else {
                    params.p_agree
                }
            })
            .collect();
        self.domains.push(DomainSpec {
            type_id,
            property,
            params,
            opinions,
            popularity,
            agreements,
        });
        self
    }

    /// Finalizes the world.
    pub fn build(self) -> World {
        World {
            kb: self.kb,
            domains: self.domains,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::seed::{california_cities, ATTR_POPULATION};
    use surveyor_kb::KnowledgeBaseBuilder;

    fn small_kb() -> Arc<KnowledgeBase> {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        for name in ["Kitten", "Tiger", "Spider", "Puppy"] {
            b.add_entity(name, animal).finish();
        }
        Arc::new(b.build())
    }

    #[test]
    fn domain_instantiation_is_deterministic() {
        let kb = small_kb();
        let w1 = WorldBuilder::new(kb.clone(), 5)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build();
        let w2 = WorldBuilder::new(kb, 5)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build();
        assert_eq!(w1.domains()[0].opinions, w2.domains()[0].opinions);
    }

    #[test]
    fn different_seeds_differ() {
        let kb = small_kb();
        // With only 4 entities collisions are likely; use many seeds and
        // require at least one difference.
        let base = WorldBuilder::new(kb.clone(), 0)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build()
            .domains()[0]
            .opinions
            .clone();
        let any_different = (1..20).any(|s| {
            WorldBuilder::new(kb.clone(), s)
                .domain(
                    "animal",
                    Property::adjective("cute"),
                    DomainParams::default(),
                )
                .build()
                .domains()[0]
                .opinions
                != base
        });
        assert!(any_different);
    }

    #[test]
    fn attribute_threshold_respects_population() {
        let (kb, _) = california_cities(3);
        let kb = Arc::new(kb);
        let params = DomainParams {
            opinions: OpinionRule::AttributeThreshold {
                attr: ATTR_POPULATION.to_owned(),
                threshold: 250_000.0,
                softness: 0.5,
            },
            ..DomainParams::default()
        };
        let world = WorldBuilder::new(kb.clone(), 9)
            .domain("city", Property::adjective("big"), params)
            .build();
        let domain = &world.domains()[0];
        let entities = kb.entities_of_type(domain.type_id);
        // Los Angeles (3.9M) must be big; a sub-1000 town must not be.
        let la = entities
            .iter()
            .position(|&e| kb.entity(e).name() == "Los Angeles")
            .unwrap();
        assert!(domain.opinions[la]);
        let small_idx = entities
            .iter()
            .position(|&e| kb.entity(e).attribute(ATTR_POPULATION).unwrap() < 1_000.0)
            .unwrap();
        assert!(!domain.opinions[small_idx]);
        // And the big share is small: most Californian cities are not big.
        let big_share =
            domain.opinions.iter().filter(|&&o| o).count() as f64 / domain.opinions.len() as f64;
        assert!(big_share < 0.3, "big share {big_share}");
    }

    #[test]
    fn rates_encode_agreement_and_bias() {
        let kb = small_kb();
        let params = DomainParams {
            p_agree: 0.9,
            rate_pos: 100.0,
            rate_neg: 5.0,
            opinions: OpinionRule::RandomShare(1.0),
            ..DomainParams::default()
        };
        let world = WorldBuilder::new(kb, 1)
            .domain("animal", Property::adjective("cute"), params)
            .build();
        let d = &world.domains()[0];
        assert!(d.opinions.iter().all(|&o| o));
        let (lp, ln) = d.rates(0);
        assert!((lp - 90.0).abs() < 1e-9);
        assert!((ln - 0.5).abs() < 1e-9);
    }

    #[test]
    fn popularity_by_attribute_orders_multipliers() {
        let (kb, _) = california_cities(3);
        let kb = Arc::new(kb);
        let params = DomainParams {
            popularity: PopularityRule::ByAttribute {
                attr: ATTR_POPULATION.to_owned(),
                exponent: 0.5,
            },
            ..DomainParams::default()
        };
        let world = WorldBuilder::new(kb.clone(), 2)
            .domain("city", Property::adjective("big"), params)
            .build();
        let d = &world.domains()[0];
        let entities = kb.entities_of_type(d.type_id);
        let la = entities
            .iter()
            .position(|&e| kb.entity(e).name() == "Los Angeles")
            .unwrap();
        let tiny = entities
            .iter()
            .position(|&e| kb.entity(e).attribute(ATTR_POPULATION).unwrap() < 1_000.0)
            .unwrap();
        assert!(d.popularity[la] > d.popularity[tiny]);
    }

    #[test]
    fn zipf_popularity_has_mean_one() {
        let kb = small_kb();
        let params = DomainParams {
            popularity: PopularityRule::ZipfByIndex { exponent: 1.0 },
            ..DomainParams::default()
        };
        let world = WorldBuilder::new(kb, 2)
            .domain("animal", Property::adjective("cute"), params)
            .build();
        let pops = &world.domains()[0].popularity;
        let mean: f64 = pops.iter().sum::<f64>() / pops.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(pops[0] > pops[3]);
    }

    #[test]
    fn ground_truth_lookup() {
        let kb = small_kb();
        let world = WorldBuilder::new(kb.clone(), 5)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build();
        let d = &world.domains()[0];
        let kitten = kb.entity_by_name("Kitten").unwrap();
        assert_eq!(world.ground_truth(d, kitten), Some(d.opinions[0]));
    }

    #[test]
    #[should_panic(expected = "unknown type")]
    fn unknown_type_panics() {
        let kb = small_kb();
        let _ = WorldBuilder::new(kb, 0).domain(
            "starship",
            Property::adjective("fast"),
            DomainParams::default(),
        );
    }
}
