//! Sharded document generation.
//!
//! The generator materializes any shard independently: per-entity statement
//! counts follow Poisson laws, and a Poisson variable splits across `S`
//! shards as `S` independent Poissons of rate `λ/S` — so shard `i` can be
//! generated without touching any other shard, exactly like the paper's
//! distributed snapshot processing. All randomness derives from
//! `(world seed, shard index)`, making every shard bit-reproducible.

use crate::templates::{Realizer, SentenceBuf};
use crate::world::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use surveyor_nlp::{annotate_with, AnnotateScratch, AnnotatedDocument, Lexicon};
use surveyor_obs::MetricsRegistry;
use surveyor_prob::{Poisson, SeedStream};

/// A Web region with its own author population.
///
/// "Surveyor can produce region-specific results if the input is
/// restricted to Web sites with specific domain extensions" (§2): each
/// region gets a share of the author pool, and may hold different dominant
/// opinions (each entity's opinion flips with `opinion_flip` probability,
/// deterministically per region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (e.g. `"us"`, `"cn"`).
    pub name: String,
    /// Share of the author pool (normalized across regions).
    pub weight: f64,
    /// Probability that this region's dominant opinion on an entity
    /// differs from the global one.
    pub opinion_flip: f64,
}

impl RegionSpec {
    /// A single global region covering all authors.
    pub fn global() -> Self {
        Self {
            name: "global".to_owned(),
            weight: 1.0,
            opinion_flip: 0.0,
        }
    }
}

/// Corpus shape configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of independently generable shards.
    pub num_shards: usize,
    /// Author regions (defaults to one global region).
    pub regions: Vec<RegionSpec>,
    /// Mean sentences per document (geometric distribution, min 1).
    pub mean_sentences_per_document: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_shards: 8,
            regions: vec![RegionSpec::global()],
            mean_sentences_per_document: 2.0,
        }
    }
}

/// A raw (un-annotated) generated document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawDocument {
    /// Stable document id (`shard * 2^32 + sequence`).
    pub id: u64,
    /// Index into the corpus config's region list.
    pub region: u32,
    /// Document text.
    pub text: String,
}

/// Reusable per-worker generation scratch.
///
/// Holds one [`SentenceBuf`] arena per region plus the realized property
/// surface, so a worker that materializes many shards in a row
/// ([`CorpusGenerator::all_shards_text`]) pays the arena allocations once
/// and reuses them for every subsequent shard — the same discipline as
/// `AnnotateScratch` on the annotation side.
#[derive(Debug, Default)]
pub struct GenScratch {
    /// One sentence arena per region.
    regions: Vec<SentenceBuf>,
    /// The current domain's property surface ("very cute"), realized once
    /// per domain instead of once per sentence.
    property: String,
}

/// Generates the synthetic Web snapshot for a [`World`].
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    world: World,
    config: CorpusConfig,
    /// Optional metrics sink: when set, [`shard_text`] accumulates a
    /// `corpus` phase (generation wall time + documents) and
    /// `corpus.documents` / `corpus.sentences` counters.
    ///
    /// [`shard_text`]: Self::shard_text
    observer: Option<Arc<MetricsRegistry>>,
    /// `region_opinions[r]` is, per domain, the per-entity opinion vector
    /// for region `r` (flips applied deterministically).
    region_opinions: Vec<Vec<Vec<bool>>>,
    /// Normalized region weights.
    region_weights: Vec<f64>,
}

impl CorpusGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on an empty region list, zero shards, or non-positive
    /// weights.
    pub fn new(world: World, config: CorpusConfig) -> Self {
        assert!(config.num_shards > 0, "need at least one shard");
        assert!(!config.regions.is_empty(), "need at least one region");
        let total_weight: f64 = config.regions.iter().map(|r| r.weight).sum();
        assert!(total_weight > 0.0, "region weights must sum positive");
        let region_weights: Vec<f64> = config
            .regions
            .iter()
            .map(|r| r.weight / total_weight)
            .collect();

        let mut region_opinions = Vec::with_capacity(config.regions.len());
        for region in &config.regions {
            let stream = SeedStream::new(world.seed())
                .child("region")
                .child(&region.name);
            let mut per_domain = Vec::with_capacity(world.domains().len());
            for (di, domain) in world.domains().iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(stream.index(di as u64).seed());
                let opinions = domain
                    .opinions
                    .iter()
                    .map(|&o| {
                        if region.opinion_flip > 0.0 && rng.gen_bool(region.opinion_flip) {
                            !o
                        } else {
                            o
                        }
                    })
                    .collect();
                per_domain.push(opinions);
            }
            region_opinions.push(per_domain);
        }

        Self {
            world,
            config,
            observer: None,
            region_opinions,
            region_weights,
        }
    }

    /// Attaches a metrics registry: subsequent [`shard_text`] calls
    /// record generation throughput into it. Generated documents are
    /// identical with or without an observer.
    ///
    /// [`shard_text`]: Self::shard_text
    pub fn with_observer(mut self, observer: Arc<MetricsRegistry>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The underlying world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The corpus configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.config.num_shards
    }

    /// Index of a region by name.
    pub fn region_index(&self, name: &str) -> Option<u32> {
        self.config
            .regions
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as u32)
    }

    /// The dominant opinion a region's author pool holds (after flips).
    pub fn region_opinion(&self, region: u32, domain_index: usize, entity_index: usize) -> bool {
        self.region_opinions[region as usize][domain_index][entity_index]
    }

    /// A lexicon covering every word the generator can emit: core
    /// vocabulary plus all domain properties and type head nouns.
    pub fn lexicon(&self) -> Lexicon {
        let mut lex = Lexicon::new();
        for domain in self.world.domains() {
            lex.add_adjective(domain.property.head());
            for adverb in domain.property.adverbs() {
                lex.add_adverb(adverb);
            }
        }
        for t in self.world.kb().types() {
            for noun in t.head_nouns() {
                lex.add_noun(noun);
            }
        }
        lex
    }

    /// Expected total statements across the whole corpus (all shards,
    /// all regions) — used to size experiments and by sanity tests.
    pub fn expected_statements(&self) -> f64 {
        self.world
            .domains()
            .iter()
            .map(|d| {
                (0..d.opinions.len())
                    .map(|i| {
                        let (lp, ln) = d.rates(i);
                        lp + ln
                    })
                    .sum::<f64>()
            })
            .sum()
    }

    /// Generates the raw documents of one shard.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    pub fn shard_text(&self, shard: usize) -> Vec<RawDocument> {
        self.shard_text_with(shard, &mut GenScratch::default())
    }

    /// [`shard_text`](Self::shard_text) with caller-owned scratch buffers,
    /// for loops that materialize many shards (the parallel fan-out and
    /// the bench shard sources). Output is byte-identical to
    /// [`shard_text`](Self::shard_text) regardless of scratch reuse.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    pub fn shard_text_with(&self, shard: usize, scratch: &mut GenScratch) -> Vec<RawDocument> {
        assert!(shard < self.config.num_shards, "shard out of range");
        let gen_start = self.observer.as_ref().map(|_| Instant::now()); // lint:allow(no-wall-clock): feeds the obs phase report only, never the generated text
        let stream = SeedStream::new(self.world.seed())
            .child("shard")
            .index(shard as u64);
        let mut rng = StdRng::seed_from_u64(stream.seed());
        let shards = self.config.num_shards as f64;

        // Sentence arenas per region: one flat text buffer plus spans,
        // reused across shards. No per-sentence `String` exists anywhere.
        if scratch.regions.len() < self.config.regions.len() {
            scratch
                .regions
                .resize_with(self.config.regions.len(), SentenceBuf::new);
        }
        for buf in &mut scratch.regions {
            buf.clear();
        }
        for (di, domain) in self.world.domains().iter().enumerate() {
            let etype = self.world.kb().entity_type(domain.type_id);
            let head_noun = etype
                .head_nouns()
                .first()
                .map(String::as_str)
                .unwrap_or(etype.name());
            let realizer = Realizer::new(head_noun, domain.params.plural_subjects);
            // One property realization per domain, not one per sentence.
            scratch.property.clear();
            let _ = write!(scratch.property, "{}", domain.property);
            let entities = self.world.kb().entities_of_type(domain.type_id);
            for (ei, &entity) in entities.iter().enumerate() {
                let name = self.world.kb().entity(entity).name();
                let pop = domain.popularity[ei];
                for (ri, region_weight) in self.region_weights.iter().enumerate() {
                    let opinion = self.region_opinions[ri][di][ei];
                    let (rate_pos, rate_neg) = domain.rates_for(ei, opinion);
                    let scale = region_weight / shards;
                    let n_pos = Poisson::new(rate_pos * scale).sample(&mut rng);
                    let n_neg = Poisson::new(rate_neg * scale).sample(&mut rng);
                    for _ in 0..n_pos {
                        realizer.statement_into(
                            &mut rng,
                            name,
                            &scratch.property,
                            true,
                            domain.params.extended_verb_share,
                            domain.params.double_negation_share,
                            &mut scratch.regions[ri],
                        );
                    }
                    for _ in 0..n_neg {
                        realizer.statement_into(
                            &mut rng,
                            name,
                            &scratch.property,
                            false,
                            domain.params.extended_verb_share,
                            domain.params.double_negation_share,
                            &mut scratch.regions[ri],
                        );
                    }
                    let n_aspect =
                        Poisson::new(domain.params.aspect_noise * pop * scale).sample(&mut rng);
                    for _ in 0..n_aspect {
                        realizer.aspect_noise_into(&mut rng, name, &mut scratch.regions[ri]);
                    }
                    let n_part =
                        Poisson::new(domain.params.part_of_noise * pop * scale).sample(&mut rng);
                    for _ in 0..n_part {
                        realizer.part_of_noise_into(&mut rng, name, &mut scratch.regions[ri]);
                    }
                    let n_fill =
                        Poisson::new(domain.params.filler_noise * pop * scale).sample(&mut rng);
                    for _ in 0..n_fill {
                        realizer.filler_into(&mut rng, name, &mut scratch.regions[ri]);
                    }
                }
            }
        }

        // The exact sentence total is known before packing; counting here
        // keeps the observer from re-scanning document text afterwards.
        let total_sentences: u64 = if self.observer.is_some() {
            scratch.regions.iter().map(|b| b.len() as u64).sum()
        } else {
            0
        };

        // Pack region-homogeneous documents. Only the spans are shuffled
        // (the arena text stays put); the shuffle consumes randomness
        // purely as a function of slice length, so the draw sequence is
        // identical to the old owned-`String` shuffle.
        let mut documents = Vec::new();
        let mut seq: u64 = 0;
        let mean_len = self.config.mean_sentences_per_document.max(1.0);
        let continue_prob = 1.0 - 1.0 / mean_len;
        for (ri, buf) in scratch
            .regions
            .iter_mut()
            .enumerate()
            .take(self.config.regions.len())
        {
            buf.spans_mut().shuffle(&mut rng);
            let count = buf.len();
            let mut i = 0;
            while i < count {
                let mut text = String::new();
                while i < count {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(buf.sentence(i));
                    i += 1;
                    if !rng.gen_bool(continue_prob) {
                        break;
                    }
                }
                documents.push(RawDocument {
                    id: (shard as u64) << 32 | seq,
                    region: ri as u32,
                    text,
                });
                seq += 1;
            }
        }
        if let (Some(obs), Some(start)) = (&self.observer, gen_start) {
            // Shards generate inside extraction workers, so the `corpus`
            // phase accumulates per-shard slices (it overlaps the
            // `extract` phase rather than adding to it).
            obs.record_phase("corpus", start.elapsed(), documents.len() as u64);
            obs.add("corpus.documents", documents.len() as u64);
            obs.add("corpus.sentences", total_sentences);
        }
        documents
    }

    /// Generates and annotates one shard; `region_filter` restricts the
    /// output to one region (the §2 region-specific mode).
    pub fn shard_annotated(
        &self,
        shard: usize,
        lexicon: &Lexicon,
        region_filter: Option<u32>,
    ) -> Vec<AnnotatedDocument> {
        self.shard_annotated_with(
            shard,
            lexicon,
            region_filter,
            &mut GenScratch::default(),
            &mut AnnotateScratch::default(),
        )
    }

    /// [`shard_annotated`](Self::shard_annotated) with caller-owned
    /// generation and annotation scratch, for workers that process many
    /// shards.
    pub fn shard_annotated_with(
        &self,
        shard: usize,
        lexicon: &Lexicon,
        region_filter: Option<u32>,
        gen_scratch: &mut GenScratch,
        annotate_scratch: &mut AnnotateScratch,
    ) -> Vec<AnnotatedDocument> {
        self.shard_text_with(shard, gen_scratch)
            .into_iter()
            .filter(|d| region_filter.is_none_or(|r| d.region == r))
            .map(|d| annotate_with(d.id, &d.text, self.world.kb(), lexicon, annotate_scratch))
            .collect()
    }

    /// Materializes every shard's raw documents, fanning shards over
    /// `workers` threads.
    ///
    /// Shards are independently generable by construction (all randomness
    /// derives from `(world seed, shard index)`), so the fan-out follows
    /// the extraction runner's pattern: workers pull shard indexes off an
    /// atomic claim cursor, accumulate `(shard, documents)` pairs locally
    /// (reusing one [`GenScratch`] per worker), and hand them back by
    /// value over the join; the caller reassembles in shard-index order.
    /// No lock is taken anywhere, and the result is byte-identical to
    /// calling [`shard_text`](Self::shard_text) serially for every shard,
    /// for any worker count.
    pub fn all_shards_text(&self, workers: usize) -> Vec<Vec<RawDocument>> {
        let shard_count = self.config.num_shards;
        let workers = workers.clamp(1, shard_count);
        if workers == 1 {
            let mut scratch = GenScratch::default();
            return (0..shard_count)
                .map(|s| self.shard_text_with(s, &mut scratch))
                .collect();
        }
        self.fan_out_shards(workers, |shard, scratch, _| {
            self.shard_text_with(shard, scratch)
        })
    }

    /// Materializes and annotates every shard over `workers` threads; the
    /// parallel counterpart of calling
    /// [`shard_annotated`](Self::shard_annotated) per shard, with
    /// per-worker [`GenScratch`] and [`AnnotateScratch`] reuse. Output is
    /// byte-identical to the serial path for any worker count.
    pub fn all_shards_annotated(
        &self,
        workers: usize,
        lexicon: &Lexicon,
        region_filter: Option<u32>,
    ) -> Vec<Vec<AnnotatedDocument>> {
        let shard_count = self.config.num_shards;
        let workers = workers.clamp(1, shard_count);
        if workers == 1 {
            let mut gen_scratch = GenScratch::default();
            let mut annotate_scratch = AnnotateScratch::default();
            return (0..shard_count)
                .map(|s| {
                    self.shard_annotated_with(
                        s,
                        lexicon,
                        region_filter,
                        &mut gen_scratch,
                        &mut annotate_scratch,
                    )
                })
                .collect();
        }
        self.fan_out_shards(workers, |shard, gen_scratch, annotate_scratch| {
            self.shard_annotated_with(shard, lexicon, region_filter, gen_scratch, annotate_scratch)
        })
    }

    /// The shared fan-out skeleton: an atomic claim cursor, per-worker
    /// scratch, results returned by value and reassembled in shard order.
    fn fan_out_shards<T, F>(&self, workers: usize, materialize: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(usize, &mut GenScratch, &mut AnnotateScratch) -> Vec<T> + Sync,
    {
        let shard_count = self.config.num_shards;
        let cursor = AtomicUsize::new(0);
        let mut produced = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut gen_scratch = GenScratch::default();
                        let mut annotate_scratch = AnnotateScratch::default();
                        let mut produced: Vec<(usize, Vec<T>)> = Vec::new();
                        loop {
                            let shard = cursor.fetch_add(1, Ordering::Relaxed);
                            if shard >= shard_count {
                                break;
                            }
                            produced.push((
                                shard,
                                materialize(shard, &mut gen_scratch, &mut annotate_scratch),
                            ));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("generation worker panicked")) // lint:allow(no-panic-in-lib): a worker panic is a generator bug; the infallible API propagates it
                .collect::<Vec<(usize, Vec<T>)>>()
        })
        .expect("generation worker panicked"); // lint:allow(no-panic-in-lib): a worker panic is a generator bug; the infallible API propagates it
        produced.sort_by_key(|&(shard, _)| shard);
        debug_assert_eq!(produced.len(), shard_count);
        produced.into_iter().map(|(_, docs)| docs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{DomainParams, OpinionRule, WorldBuilder};
    use std::sync::Arc;
    use surveyor_kb::{KnowledgeBaseBuilder, Property};

    fn world(seed: u64) -> World {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        for name in ["Kitten", "Tiger", "Spider", "Puppy", "Koala"] {
            b.add_entity(name, animal).finish();
        }
        let kb = Arc::new(b.build());
        WorldBuilder::new(kb, seed)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams {
                    rate_pos: 20.0,
                    rate_neg: 4.0,
                    opinions: OpinionRule::RandomShare(0.5),
                    plural_subjects: true,
                    ..DomainParams::default()
                },
            )
            .build()
    }

    #[test]
    fn shards_are_deterministic() {
        let g1 = CorpusGenerator::new(world(3), CorpusConfig::default());
        let g2 = CorpusGenerator::new(world(3), CorpusConfig::default());
        assert_eq!(g1.shard_text(0), g2.shard_text(0));
        assert_eq!(g1.shard_text(5), g2.shard_text(5));
    }

    #[test]
    fn observer_records_generation_throughput_without_changing_output() {
        let obs = Arc::new(MetricsRegistry::new());
        let plain = CorpusGenerator::new(world(3), CorpusConfig::default());
        let observed =
            CorpusGenerator::new(world(3), CorpusConfig::default()).with_observer(obs.clone());
        assert_eq!(plain.shard_text(0), observed.shard_text(0));

        let docs = obs.counter_value("corpus.documents");
        assert_eq!(docs, plain.shard_text(0).len() as u64);
        assert!(obs.counter_value("corpus.sentences") >= docs);
        let report = obs.report();
        let phase = report.phase("corpus").expect("corpus phase recorded");
        assert_eq!(phase.items, docs);
        assert!(phase.seconds > 0.0);
    }

    #[test]
    fn parallel_materialization_matches_serial() {
        let g = CorpusGenerator::new(world(3), CorpusConfig::default());
        let serial: Vec<Vec<RawDocument>> = (0..g.shard_count()).map(|s| g.shard_text(s)).collect();
        for workers in [1, 2, 4, 8] {
            assert_eq!(serial, g.all_shards_text(workers), "{workers} workers");
        }
        let lex = g.lexicon();
        let serial_annotated: Vec<_> = (0..g.shard_count())
            .map(|s| g.shard_annotated(s, &lex, None))
            .collect();
        for workers in [1, 2, 4, 8] {
            assert_eq!(
                serial_annotated,
                g.all_shards_annotated(workers, &lex, None),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_output() {
        let g = CorpusGenerator::new(world(3), CorpusConfig::default());
        let mut scratch = GenScratch::default();
        for s in 0..g.shard_count() {
            assert_eq!(g.shard_text(s), g.shard_text_with(s, &mut scratch));
        }
    }

    #[test]
    fn shards_differ_from_each_other() {
        let g = CorpusGenerator::new(world(3), CorpusConfig::default());
        assert_ne!(g.shard_text(0), g.shard_text(1));
    }

    #[test]
    fn document_ids_are_unique_across_shards() {
        let g = CorpusGenerator::new(world(3), CorpusConfig::default());
        let mut ids = std::collections::HashSet::new();
        for s in 0..g.shard_count() {
            for d in g.shard_text(s) {
                assert!(ids.insert(d.id), "duplicate id {}", d.id);
            }
        }
        assert!(!ids.is_empty());
    }

    #[test]
    fn total_sentences_near_expectation() {
        let g = CorpusGenerator::new(world(11), CorpusConfig::default());
        let expected = g.expected_statements();
        let mut total_statement_sentences = 0usize;
        for s in 0..g.shard_count() {
            for d in g.shard_text(s) {
                // Count property-bearing sentences (contain "cute").
                total_statement_sentences += d.text.matches("cute").count();
            }
        }
        let observed = total_statement_sentences as f64;
        assert!(
            (observed - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn annotation_produces_mentions() {
        let g = CorpusGenerator::new(world(7), CorpusConfig::default());
        let lex = g.lexicon();
        let docs = g.shard_annotated(0, &lex, None);
        let mentions: usize = docs.iter().map(|d| d.mention_count()).sum();
        assert!(mentions > 0);
    }

    #[test]
    fn regions_partition_documents() {
        let config = CorpusConfig {
            regions: vec![
                RegionSpec {
                    name: "us".into(),
                    weight: 2.0,
                    opinion_flip: 0.0,
                },
                RegionSpec {
                    name: "cn".into(),
                    weight: 1.0,
                    opinion_flip: 0.5,
                },
            ],
            ..CorpusConfig::default()
        };
        let g = CorpusGenerator::new(world(5), config);
        assert_eq!(g.region_index("us"), Some(0));
        assert_eq!(g.region_index("cn"), Some(1));
        assert_eq!(g.region_index("mars"), None);
        let mut counts = [0usize; 2];
        for s in 0..g.shard_count() {
            for d in g.shard_text(s) {
                // Count sentences, not documents: document sizes vary.
                counts[d.region as usize] += d.text.matches('.').count();
            }
        }
        // The us region has twice the weight: roughly twice the sentences.
        assert!(
            counts[0] > counts[1],
            "counts {counts:?} (us should dominate)"
        );
        // Region filter keeps only the requested region; the minority
        // region appears in at least one shard.
        let lex = g.lexicon();
        let filtered: usize = (0..g.shard_count())
            .map(|s| g.shard_annotated(s, &lex, Some(1)).len())
            .sum();
        assert!(filtered > 0);
    }

    #[test]
    fn region_flip_changes_some_opinions() {
        let config = CorpusConfig {
            regions: vec![
                RegionSpec::global(),
                RegionSpec {
                    name: "flipped".into(),
                    weight: 1.0,
                    opinion_flip: 1.0,
                },
            ],
            ..CorpusConfig::default()
        };
        let g = CorpusGenerator::new(world(5), config);
        for ei in 0..5 {
            assert_ne!(
                g.region_opinion(0, 0, ei),
                g.region_opinion(1, 0, ei),
                "entity {ei}"
            );
        }
    }

    #[test]
    fn lexicon_knows_domain_properties() {
        let g = CorpusGenerator::new(world(5), CorpusConfig::default());
        let lex = g.lexicon();
        assert_eq!(lex.lookup("cute"), Some(surveyor_nlp::Pos::Adjective));
    }

    #[test]
    #[should_panic(expected = "shard out of range")]
    fn shard_out_of_range_panics() {
        let g = CorpusGenerator::new(world(5), CorpusConfig::default());
        let _ = g.shard_text(99);
    }
}
