//! Differential property tests for the allocation-free realization path:
//! the buffered `*_into` writers must produce byte-for-byte the text the
//! old per-sentence `format!` implementation produced, for arbitrary
//! entities, properties, share parameters, and RNG seeds.
//!
//! The reference functions below are verbatim copies of the pre-buffering
//! implementation (per-call `String` allocation, `to_lowercase` tail
//! probe). Both sides draw from clones of the same seeded RNG, so any
//! divergence in draw order or rendering shows up as a mismatch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surveyor_corpus::templates::{pluralize, Realizer, SentenceBuf};

const ASPECTS: &[&str] = &[
    "parking",
    "tourists",
    "families",
    "beginners",
    "children",
    "business",
];

const DIRECTIONS: &[&str] = &["southern", "northern", "eastern", "western"];

/// The old allocating pluralizer, kept as the reference oracle.
fn ref_pluralize(name: &str) -> String {
    let (head, last) = match name.rfind(' ') {
        Some(i) => (&name[..=i], &name[i + 1..]),
        None => ("", name),
    };
    let lower = last.to_lowercase();
    let plural = if lower.ends_with('s') || lower.ends_with('x') || lower.ends_with("ch") {
        format!("{last}es")
    } else if lower.ends_with('y')
        && !matches!(
            lower.as_bytes().get(lower.len().wrapping_sub(2)),
            Some(b'a' | b'e' | b'i' | b'o' | b'u')
        )
    {
        format!("{}ies", &last[..last.len() - 1])
    } else {
        format!("{last}s")
    };
    format!("{head}{plural}")
}

/// The old `Realizer::statement`: per-template `format!`, early-return
/// dispatch on the share draws.
#[allow(clippy::too_many_arguments)]
fn ref_statement<R: Rng + ?Sized>(
    rng: &mut R,
    head_noun: &str,
    plural_ok: bool,
    entity: &str,
    property: &str,
    positive: bool,
    extended_verb_share: f64,
    double_negation_share: f64,
) -> String {
    if rng.gen_bool(extended_verb_share.clamp(0.0, 1.0)) {
        return ref_extended_verb(rng, entity, property, positive);
    }
    if rng.gen_bool(double_negation_share.clamp(0.0, 1.0)) {
        return ref_double_negation(rng, entity, property, positive);
    }
    if positive {
        ref_plain_positive(rng, head_noun, plural_ok, entity, property)
    } else {
        ref_plain_negative(rng, head_noun, plural_ok, entity, property)
    }
}

fn ref_plain_positive<R: Rng + ?Sized>(
    rng: &mut R,
    noun: &str,
    plural_ok: bool,
    entity: &str,
    property: &str,
) -> String {
    let weights: &[(u32, u8)] = if plural_ok {
        &[
            (14, 0),
            (22, 1),
            (8, 2),
            (6, 3),
            (16, 4),
            (10, 5),
            (6, 6),
            (12, 7),
            (6, 8),
        ]
    } else {
        &[(16, 0), (26, 1), (10, 2), (8, 3), (18, 4), (14, 7), (8, 8)]
    };
    let total: u32 = weights.iter().map(|(w, _)| w).sum();
    let mut roll = rng.gen_range(0..total);
    let mut id = 0u8;
    for &(w, t) in weights {
        if roll < w {
            id = t;
            break;
        }
        roll -= w;
    }
    match id {
        0 => format!("{entity} is {property}."),
        1 => format!("{entity} is a {property} {noun}."),
        2 => format!("I think that {entity} is {property}."),
        3 => format!("I think {entity} is {property}."),
        4 => format!("I love the {property} {entity}."),
        5 => format!("{} are {property}.", ref_pluralize(entity)),
        6 => format!(
            "{} are {property} {}.",
            ref_pluralize(entity),
            ref_pluralize(noun)
        ),
        7 => format!("We saw the {property} {entity}."),
        _ => format!("{entity} is a {noun} that is {property}."),
    }
}

fn ref_plain_negative<R: Rng + ?Sized>(
    rng: &mut R,
    noun: &str,
    plural_ok: bool,
    entity: &str,
    property: &str,
) -> String {
    let choice = if plural_ok {
        rng.gen_range(0..6)
    } else {
        rng.gen_range(0..5)
    };
    match choice {
        0 => format!("{entity} is not {property}."),
        1 => format!("{entity} is not a {property} {noun}."),
        2 => format!("I don't think that {entity} is {property}."),
        3 => format!("I do not believe {entity} is {property}."),
        4 => format!("{entity} is never {property}."),
        _ => format!("{} are not {property}.", ref_pluralize(entity)),
    }
}

fn ref_extended_verb<R: Rng + ?Sized>(
    rng: &mut R,
    entity: &str,
    property: &str,
    positive: bool,
) -> String {
    match (positive, rng.gen_range(0..3)) {
        (true, 0) => format!("I find {entity} {property}."),
        (true, 1) => format!("{entity} is considered {property}."),
        (true, _) => format!("{entity} seems {property}."),
        (false, 0) => format!("{entity} does not seem {property}."),
        (false, 1) => format!("{entity} is not considered {property}."),
        (false, _) => format!("I don't find {entity} {property}."),
    }
}

fn ref_double_negation<R: Rng + ?Sized>(
    rng: &mut R,
    entity: &str,
    property: &str,
    positive: bool,
) -> String {
    if positive {
        if rng.gen_bool(0.5) {
            format!("I don't think that {entity} is never {property}.")
        } else {
            format!("I do not believe {entity} is never {property}.")
        }
    } else {
        format!("I don't think that {entity} is {property}.")
    }
}

fn ref_aspect_noise<R: Rng + ?Sized>(rng: &mut R, entity: &str) -> String {
    let aspect = ASPECTS[rng.gen_range(0..ASPECTS.len())];
    let adjective = if rng.gen_bool(0.5) { "good" } else { "bad" };
    format!("{entity} is {adjective} for {aspect}.")
}

fn ref_part_of_noise<R: Rng + ?Sized>(rng: &mut R, entity: &str) -> String {
    let direction = DIRECTIONS[rng.gen_range(0..DIRECTIONS.len())];
    let predicate = if rng.gen_bool(0.5) { "warm" } else { "cold" };
    let season = if rng.gen_bool(0.5) {
        "summer"
    } else {
        "winter"
    };
    format!("{direction} {entity} is {predicate} in the {season}.")
}

fn ref_filler<R: Rng + ?Sized>(rng: &mut R, entity: &str) -> String {
    match rng.gen_range(0..4) {
        0 => format!("I visited {entity} during the summer."),
        1 => format!("People love {entity}."),
        2 => format!("We saw {entity} at the weekend."),
        _ => format!("{entity} is in the north."),
    }
}

/// ASCII names: the buffered pluralizer's byte-tail probe is equivalent
/// to the old `to_lowercase` probe exactly on ASCII, which is the only
/// alphabet the corpus generator emits.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z]{1,12}( [A-Za-z]{1,12})?"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pluralize_matches_reference(name in name_strategy()) {
        prop_assert_eq!(pluralize(&name), ref_pluralize(&name));
    }

    #[test]
    fn statements_match_reference(
        seed in 0u64..u64::MAX,
        head_noun in "[a-z]{2,10}",
        plural_ok in prop::bool::ANY,
        entity in name_strategy(),
        property in "[a-z]{2,10}",
        positive in prop::bool::ANY,
        evs in 0.0f64..1.0,
        dns in 0.0f64..1.0,
    ) {
        let realizer = Realizer::new(&head_noun, plural_ok);
        let mut new_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = new_rng.clone();
        for _ in 0..8 {
            let got = realizer.statement(&mut new_rng, &entity, &property, positive, evs, dns);
            let want = ref_statement(
                &mut ref_rng, &head_noun, plural_ok, &entity, &property, positive, evs, dns,
            );
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn buffered_accumulation_matches_reference_sequence(
        seed in 0u64..u64::MAX,
        entity in name_strategy(),
        property in "[a-z]{2,10}",
        count in 1usize..12,
    ) {
        // Many statements into ONE reused buffer: each recorded sentence
        // must equal the corresponding reference string, proving commit
        // bookkeeping never bleeds bytes across sentences.
        let realizer = Realizer::new("animal", true);
        let mut new_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = new_rng.clone();
        let mut buf = SentenceBuf::new();
        let mut want = Vec::with_capacity(count);
        for i in 0..count {
            let positive = i % 2 == 0;
            realizer.statement_into(
                &mut new_rng, &entity, &property, positive, 0.2, 0.1, &mut buf,
            );
            want.push(ref_statement(
                &mut ref_rng, "animal", true, &entity, &property, positive, 0.2, 0.1,
            ));
        }
        prop_assert_eq!(buf.len(), count);
        for (i, want) in want.iter().enumerate() {
            prop_assert_eq!(buf.sentence(i), want.as_str());
        }
    }

    #[test]
    fn noise_and_filler_match_reference(seed in 0u64..u64::MAX, entity in name_strategy()) {
        let realizer = Realizer::new("city", false);
        let mut new_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = new_rng.clone();
        prop_assert_eq!(
            realizer.aspect_noise(&mut new_rng, &entity),
            ref_aspect_noise(&mut ref_rng, &entity)
        );
        prop_assert_eq!(
            realizer.part_of_noise(&mut new_rng, &entity),
            ref_part_of_noise(&mut ref_rng, &entity)
        );
        prop_assert_eq!(
            realizer.filler(&mut new_rng, &entity),
            ref_filler(&mut ref_rng, &entity)
        );
    }
}
