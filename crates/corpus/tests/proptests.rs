//! Property-based tests for the corpus generator: determinism, Poisson
//! shard additivity, and template well-formedness.

use proptest::prelude::*;
use std::sync::Arc;
use surveyor_corpus::templates::{pluralize, Realizer};
use surveyor_corpus::{
    CorpusConfig, CorpusGenerator, DomainParams, OpinionRule, World, WorldBuilder,
};
use surveyor_kb::{KnowledgeBaseBuilder, Property};

fn small_world(seed: u64, rate_pos: f64, rate_neg: f64) -> World {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    for name in ["Kitten", "Tiger", "Spider", "Puppy"] {
        b.add_entity(name, animal).finish();
    }
    WorldBuilder::new(Arc::new(b.build()), seed)
        .domain(
            "animal",
            Property::adjective("cute"),
            DomainParams {
                rate_pos,
                rate_neg,
                opinions: OpinionRule::RandomShare(0.5),
                plural_subjects: true,
                ..DomainParams::default()
            },
        )
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shard_generation_is_deterministic(seed in 0u64..500, shard_count in 1usize..8) {
        let config = CorpusConfig { num_shards: shard_count, ..CorpusConfig::default() };
        let g1 = CorpusGenerator::new(small_world(seed, 8.0, 2.0), config.clone());
        let g2 = CorpusGenerator::new(small_world(seed, 8.0, 2.0), config);
        for s in 0..shard_count {
            prop_assert_eq!(g1.shard_text(s), g2.shard_text(s));
        }
    }

    #[test]
    fn every_document_is_nonempty_and_sentence_terminated(seed in 0u64..200) {
        let g = CorpusGenerator::new(small_world(seed, 6.0, 2.0), CorpusConfig::default());
        for s in 0..g.shard_count() {
            for doc in g.shard_text(s) {
                prop_assert!(!doc.text.is_empty());
                prop_assert!(doc.text.ends_with('.'), "doc: {}", doc.text);
            }
        }
    }

    #[test]
    fn statement_volume_tracks_expectation(seed in 0u64..50) {
        // Across all shards, cute-sentences land within 5 sigma of the
        // expected Poisson total (shard additivity).
        let g = CorpusGenerator::new(small_world(seed, 15.0, 3.0), CorpusConfig::default());
        let expected = g.expected_statements();
        let mut observed = 0usize;
        for s in 0..g.shard_count() {
            for doc in g.shard_text(s) {
                observed += doc.text.matches("cute").count();
            }
        }
        let sigma = expected.sqrt();
        prop_assert!(
            ((observed as f64) - expected).abs() <= 5.0 * sigma + 5.0,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn pluralize_produces_distinct_longer_form(word in "[A-Z][a-z]{1,10}") {
        let plural = pluralize(&word);
        prop_assert!(plural.len() > word.len());
        prop_assert!(plural.starts_with(&word[..word.len().saturating_sub(1)]));
    }

    #[test]
    fn realized_statements_always_terminate_and_mention_both(
        positive in prop::bool::ANY,
        ev in 0.0f64..0.5,
        dn in 0.0f64..0.2,
        seed in 0u64..300,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let r = Realizer::new("animal", true);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = r.statement(&mut rng, "Kitten", "cute", positive, ev, dn);
        prop_assert!(s.ends_with('.'));
        prop_assert!(s.to_lowercase().contains("kitten"), "{s}");
        prop_assert!(s.contains("cute"), "{s}");
    }

    #[test]
    fn world_opinions_match_share_roughly(share in 0.1f64..0.9) {
        let mut b = KnowledgeBaseBuilder::new();
        let t = b.add_type("thing", &["thing"], &[]);
        for i in 0..400 {
            b.add_entity(&format!("Thing{i}"), t).finish();
        }
        let world = WorldBuilder::new(Arc::new(b.build()), 7)
            .domain(
                "thing",
                Property::adjective("big"),
                DomainParams {
                    opinions: OpinionRule::RandomShare(share),
                    ..DomainParams::default()
                },
            )
            .build();
        let positives = world.domains()[0].opinions.iter().filter(|&&o| o).count();
        let expected = share * 400.0;
        let sigma = (400.0 * share * (1.0 - share)).sqrt();
        prop_assert!(
            ((positives as f64) - expected).abs() < 5.0 * sigma + 2.0,
            "positives {positives} expected {expected}"
        );
    }
}
