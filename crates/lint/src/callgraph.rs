//! Layer three of the analyzer: per-crate function call graphs and the
//! four flow-aware rules that run on them.
//!
//! [`summarize`] walks one file's token trees (from [`crate::syntax`])
//! and reduces every non-test function to a [`FnSummary`]: the calls it
//! makes, the panic sites and lock acquisitions it contains, and a
//! per-statement fact table for taint tracking. Summaries are plain
//! data — they are what the incremental cache stores, so a warm run
//! can execute the graph phase without re-reading unchanged files.
//!
//! [`run_flow_rules`] then groups summaries by crate (`crates/<name>`
//! prefix), resolves calls by suffix-matching qualified names, and
//! evaluates:
//!
//! - `panic-reachability` — BFS from every public fn; any reachable
//!   panic site (or a direct `unreachable!`, which the token rule does
//!   not cover) is reported at the public fn, with the call chain in
//!   the message.
//! - `lock-order` — the first nesting observed (in sorted file order)
//!   of any two lock resources becomes the crate's canonical order;
//!   a later contradiction is a finding.
//! - `unordered-iter-flow` — statement-level taint from
//!   `HashMap`/`HashSet` bindings through iteration results and local
//!   lets into serialization sinks, propagated across calls to a
//!   fixpoint.
//! - `deadline-propagation` — a fn holding a `Deadline` parameter must
//!   pass it to every callee that accepts one.
//!
//! Resolution is deliberately simple (no type inference): bare calls
//! resolve to every same-named fn in the crate, method calls only when
//! the name is unique, qualified calls by path-suffix match. The rules
//! over-approximate reachability and under-approximate taint, which is
//! the right polarity for a gate: panic chains may include impossible
//! paths (gate with a pragma and a rationale), taint misses exotic
//! flows (the token-level rules still backstop the common ones).

use crate::config::LintConfig;
use crate::lexer::{LineIndex, TokenKind};
use crate::rules::{rule_by_name, FileScan, Finding, Pragma};
use crate::syntax::{self, Delim, Group, Tree, Visibility};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Everything the flow rules need to know about one file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileSummary {
    /// Function summaries, in source order.
    pub fns: Vec<FnSummary>,
}

/// One function's flow-relevant facts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnSummary {
    /// Crate-relative qualified name (`scope::name`).
    pub name: String,
    /// Whether the fn is plain `pub` (reachability root).
    pub is_pub: bool,
    /// 1-based line of the fn name.
    pub line: u32,
    /// 1-based column of the fn name.
    pub col: u32,
    /// Name of the parameter whose type mentions `Deadline`, if any.
    pub deadline_param: Option<String>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Panic sites, in source order.
    pub panics: Vec<PanicSite>,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Statement facts for taint tracking, in source order.
    pub stmts: Vec<Stmt>,
}

/// One call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Path segments as written (`["helper"]`, `["Response", "write_to"]`);
    /// `Self::` is rewritten to the impl type.
    pub path: Vec<String>,
    /// Whether this was a method call (`recv.name(...)`).
    pub method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Identifiers appearing in the argument list.
    pub args: Vec<String>,
}

/// One panic site: an `unwrap`/`expect` call or a
/// `panic!`/`todo!`/`unimplemented!`/`unreachable!` macro.
#[derive(Debug, Clone, PartialEq)]
pub struct PanicSite {
    /// The bare name as written (`"unwrap"`, `"unreachable"`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Whether a same-line pragma names `panic-reachability` or
    /// `no-panic-in-lib` (a documented invariant; the site neither
    /// fires nor propagates, but the pragma counts as used).
    pub allowed: bool,
}

/// One lock acquisition: `recv.lock()` / `recv.read()` / `recv.write()`
/// with an empty argument list (which distinguishes `RwLock::write`
/// from `io::Write::write(buf)`).
#[derive(Debug, Clone, PartialEq)]
pub struct LockSite {
    /// The receiver identifier nearest the call (`shards` in
    /// `self.table.shards[i].write()`).
    pub resource: String,
    /// The acquiring method (`lock`/`read`/`write`).
    pub method: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Facts about one statement, for the taint pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stmt {
    /// Identifiers the statement binds (`let` pattern, `for` pattern,
    /// fn parameter).
    pub targets: Vec<String>,
    /// Every identifier mentioned in the statement.
    pub idents: Vec<String>,
    /// Receivers of iteration-method calls (`m` in `m.keys()`).
    pub iterated: Vec<String>,
    /// Bare/method callee names (for cross-fn taint propagation).
    pub calls: Vec<String>,
    /// Whether the statement mentions an ordering cleanser
    /// (`sort*`, `BTreeMap`, `BTreeSet`).
    pub cleansed: bool,
    /// Whether the statement mentions `HashMap`/`HashSet` (a new
    /// unordered-collection binding).
    pub has_collection: bool,
    /// Serialization-sink callee mentioned, if any.
    pub sink: Option<String>,
    /// 1-based line of the sink callee.
    pub sink_line: u32,
    /// 1-based column of the sink callee.
    pub sink_col: u32,
    /// Whether this is a `for` loop header.
    pub is_for: bool,
    /// Whether this is a `return` or the fn's trailing expression.
    pub is_return: bool,
    /// 1-based line the statement starts on.
    pub line: u32,
}

const ITER_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];
const CLEANSERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];
const SINKS: &[&str] = &[
    "push_str",
    "write_fmt",
    "serialize",
    "to_json",
    "to_value",
    "encode_json",
    "format",
    "write",
    "writeln",
    "json",
];
/// Item keywords whose following brace block belongs to a *different*
/// item and must not contribute facts to the enclosing fn.
const ITEM_KEYWORDS: &[&[u8]] = &[
    b"fn", b"struct", b"enum", b"union", b"impl", b"mod", b"trait",
];
/// Identifiers that look like `name(...)` but are not calls.
const CALL_BLACKLIST: &[&[u8]] = &[
    b"if", b"while", b"for", b"match", b"return", b"loop", b"in", b"move", b"let", b"else", b"as",
    b"mut", b"ref", b"box", b"await", b"unsafe", b"fn", b"where", b"dyn", b"pub",
];

/// Builds the flow summary for one file's parsed forest. Functions in
/// test regions are skipped entirely; panic sites carry their pragma
/// state so the graph phase can count gating pragmas as used.
pub fn summarize(
    src: &[u8],
    trees: &[Tree],
    index: &LineIndex,
    test_spans: &[(usize, usize)],
    pragmas: &[Pragma],
) -> FileSummary {
    let in_test = |offset: usize| test_spans.iter().any(|&(s, e)| offset >= s && offset < e);
    let mut fns: Vec<FnSummary> = Vec::new();
    syntax::visit_fns(trees, src, |item, header, body| {
        if in_test(item.start) {
            return;
        }
        let Some(body) = body else {
            return; // trait method declarations carry no facts
        };
        let (line, col) = index.line_col(item.name_offset);
        // The impl type, for rewriting `Self::` in call paths.
        let self_ty = item
            .scope
            .last()
            .filter(|s| s.starts_with(|c: char| c.is_ascii_uppercase()))
            .cloned();
        let params = parse_params(header, src);
        let mut f = FnSummary {
            name: item.qualified(),
            is_pub: item.vis == Visibility::Pub,
            line,
            col,
            deadline_param: params
                .iter()
                .find(|p| p.is_deadline)
                .map(|p| p.name.clone()),
            ..FnSummary::default()
        };
        // Each parameter is a pseudo-statement: a binding whose
        // "mentions" are its type identifiers, so `m: &HashMap<..>`
        // marks `m` as an unordered collection for the taint pass.
        for p in &params {
            f.stmts.push(Stmt {
                targets: vec![p.name.clone()],
                has_collection: p
                    .type_idents
                    .iter()
                    .any(|t| t == "HashMap" || t == "HashSet"),
                idents: p.type_idents.clone(),
                line,
                ..Stmt::default()
            });
        }
        collect_sites(
            &body.children,
            src,
            index,
            pragmas,
            self_ty.as_deref(),
            &mut f,
        );
        let mut raw: Vec<RawStmt> = Vec::new();
        split_stmts(&body.children, src, true, &mut raw);
        for rs in &raw {
            if let Some(stmt) = analyze_stmt(rs, src, index) {
                f.stmts.push(stmt);
            }
        }
        // Only statements that can move taint matter downstream:
        // bindings, cleansers, sinks, and returns. Everything else
        // would just compute a taint bit and discard it, so drop it
        // here — the summary (and the on-disk cache) stays small.
        f.stmts
            .retain(|s| !s.targets.is_empty() || s.sink.is_some() || s.is_return || s.cleansed);
        fns.push(f);
    });
    FileSummary { fns }
}

/// One parameter of a fn signature.
struct Param {
    name: String,
    type_idents: Vec<String>,
    is_deadline: bool,
}

/// Parses the parameter list out of a fn's header trees: the first
/// paren group, split on top-level commas; each parameter's name is the
/// last identifier before its `:`, its type the identifiers after.
fn parse_params(header: &[Tree], src: &[u8]) -> Vec<Param> {
    let Some(group) = header.iter().find_map(|t| match t {
        Tree::Group(g) if g.delim == Delim::Paren => Some(g),
        _ => None,
    }) else {
        return Vec::new();
    };
    let mut params = Vec::new();
    let mut current: Vec<&Tree> = Vec::new();
    let flush = |current: &mut Vec<&Tree>, params: &mut Vec<Param>| {
        if let Some(p) = param_of(current, src) {
            params.push(p);
        }
        current.clear();
    };
    for tree in &group.children {
        if let Tree::Leaf(t) = tree {
            if t.kind == TokenKind::Punct && t.text(src) == b"," {
                flush(&mut current, &mut params);
                continue;
            }
        }
        current.push(tree);
    }
    flush(&mut current, &mut params);
    params
}

fn param_of(trees: &[&Tree], src: &[u8]) -> Option<Param> {
    let colon = trees.iter().position(|t| match t {
        Tree::Leaf(t) => t.kind == TokenKind::Punct && t.text(src) == b":",
        _ => false,
    })?;
    let name = trees[..colon].iter().rev().find_map(|t| match t {
        Tree::Leaf(t) if t.kind == TokenKind::Ident && !matches!(t.text(src), b"mut" | b"ref") => {
            Some(String::from_utf8_lossy(t.text(src)).into_owned())
        }
        _ => None,
    })?;
    let mut type_idents = Vec::new();
    collect_idents(&trees[colon + 1..], src, &mut type_idents);
    let is_deadline = type_idents.iter().any(|t| t == "Deadline");
    Some(Param {
        name,
        type_idents,
        is_deadline,
    })
}

fn collect_idents(trees: &[&Tree], src: &[u8], out: &mut Vec<String>) {
    for tree in trees {
        match tree {
            Tree::Leaf(t) if t.kind == TokenKind::Ident => {
                out.push(String::from_utf8_lossy(t.text(src)).into_owned());
            }
            Tree::Group(g) => {
                let inner: Vec<&Tree> = g.children.iter().collect();
                collect_idents(&inner, src, out);
            }
            _ => {}
        }
    }
}

fn leaf_ident<'a>(trees: &[Tree], i: usize, src: &'a [u8]) -> Option<&'a [u8]> {
    match trees.get(i) {
        Some(Tree::Leaf(t)) if t.kind == TokenKind::Ident => Some(t.text(src)),
        _ => None,
    }
}

fn leaf_punct(trees: &[Tree], i: usize, src: &[u8], byte: u8) -> bool {
    matches!(trees.get(i), Some(Tree::Leaf(t))
        if t.kind == TokenKind::Punct && t.text(src) == [byte])
}

fn paren_group_at(trees: &[Tree], i: usize) -> Option<&Group> {
    match trees.get(i) {
        Some(Tree::Group(g)) if g.delim == Delim::Paren => Some(g),
        _ => None,
    }
}

/// Whether trees `a`, `a + 1` form a `::` (two adjacent `:` puncts).
fn double_colon(trees: &[Tree], a: usize, src: &[u8]) -> bool {
    match (trees.get(a), trees.get(a + 1)) {
        (Some(Tree::Leaf(x)), Some(Tree::Leaf(y))) => {
            x.text(src) == b":" && y.text(src) == b":" && x.end == y.start
        }
        _ => false,
    }
}

/// The structural pass: walks sibling lists collecting call, panic, and
/// lock sites. Recurses into every group except the brace body of a
/// nested item (those facts belong to the nested item's own summary).
fn collect_sites(
    children: &[Tree],
    src: &[u8],
    index: &LineIndex,
    pragmas: &[Pragma],
    self_ty: Option<&str>,
    f: &mut FnSummary,
) {
    let mut skip_brace = false;
    for (i, tree) in children.iter().enumerate() {
        match tree {
            Tree::Leaf(tok) => {
                if tok.kind == TokenKind::Punct && tok.text(src) == b";" {
                    skip_brace = false;
                }
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let word = tok.text(src);
                if ITEM_KEYWORDS.contains(&word) {
                    skip_brace = true;
                }
                let (line, col) = index.line_col(tok.start);
                // Panic macros: `name !`.
                if matches!(word, b"panic" | b"todo" | b"unimplemented" | b"unreachable")
                    && leaf_punct(children, i + 1, src, b'!')
                {
                    f.panics.push(PanicSite {
                        what: String::from_utf8_lossy(word).into_owned(),
                        line,
                        col,
                        allowed: pragma_allows_panic(pragmas, line),
                    });
                    continue;
                }
                let is_method = i > 0 && leaf_punct(children, i - 1, src, b'.');
                // Panic methods: `.unwrap(...)` / `.expect(...)`.
                if matches!(word, b"unwrap" | b"expect")
                    && is_method
                    && paren_group_at(children, i + 1).is_some()
                {
                    f.panics.push(PanicSite {
                        what: String::from_utf8_lossy(word).into_owned(),
                        line,
                        col,
                        allowed: pragma_allows_panic(pragmas, line),
                    });
                    continue;
                }
                // Lock acquisitions: `.lock()` / `.read()` / `.write()`
                // with no arguments.
                if matches!(word, b"lock" | b"read" | b"write") && is_method {
                    if let Some(g) = paren_group_at(children, i + 1) {
                        if g.children.is_empty() {
                            if let Some(resource) = receiver_before(children, i - 1, src) {
                                f.locks.push(LockSite {
                                    resource,
                                    method: String::from_utf8_lossy(word).into_owned(),
                                    line,
                                    col,
                                });
                            }
                        }
                    }
                }
                // Calls: `name ( ... )` — macros never match (the `!`
                // sits between the name and the group).
                if let Some(g) = paren_group_at(children, i + 1) {
                    if CALL_BLACKLIST.contains(&word) {
                        continue;
                    }
                    // `fn name(...)` is a declaration, not a call.
                    if leaf_ident(children, i.wrapping_sub(1), src) == Some(b"fn") && i > 0 {
                        continue;
                    }
                    let mut path = vec![String::from_utf8_lossy(word).into_owned()];
                    if !is_method {
                        // Walk back over `seg ::` prefixes.
                        let mut j = i;
                        while j >= 3 && double_colon(children, j - 2, src) {
                            match leaf_ident(children, j - 3, src) {
                                Some(seg) => {
                                    path.insert(0, String::from_utf8_lossy(seg).into_owned());
                                    j -= 3;
                                }
                                None => break,
                            }
                        }
                        if path[0] == "Self" {
                            if let Some(ty) = self_ty {
                                path[0] = ty.to_owned();
                            }
                        }
                    }
                    let mut args = Vec::new();
                    let inner: Vec<&Tree> = g.children.iter().collect();
                    collect_idents(&inner, src, &mut args);
                    f.calls.push(CallSite {
                        path,
                        method: is_method,
                        line,
                        col,
                        args,
                    });
                }
            }
            Tree::Group(g) => {
                if g.delim == Delim::Brace && skip_brace {
                    skip_brace = false;
                    continue;
                }
                collect_sites(&g.children, src, index, pragmas, self_ty, f);
            }
            Tree::Recovered(_) => {}
        }
    }
}

fn pragma_allows_panic(pragmas: &[Pragma], line: u32) -> bool {
    pragmas.iter().any(|p| {
        p.line == line
            && p.rules
                .iter()
                .any(|r| r == "panic-reachability" || r == "no-panic-in-lib")
    })
}

/// The receiver identifier of a method call: from the `.` at `dot`,
/// walk left over index/call groups and further `.` segments to the
/// nearest identifier.
fn receiver_before(children: &[Tree], dot: usize, src: &[u8]) -> Option<String> {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &children[j] {
            Tree::Group(g) if matches!(g.delim, Delim::Paren | Delim::Bracket) => continue,
            Tree::Leaf(t) if t.kind == TokenKind::Punct && matches!(t.text(src), b"." | b"?") => {
                continue
            }
            Tree::Leaf(t) if t.kind == TokenKind::Ident => {
                let name = t.text(src);
                if name == b"self" && j > 0 {
                    continue;
                }
                return Some(String::from_utf8_lossy(name).into_owned());
            }
            _ => return None,
        }
    }
    None
}

/// One raw statement: its flattened tokens plus whether it is the fn
/// body's trailing expression.
struct RawStmt {
    toks: Vec<crate::lexer::Token>,
    trailing: bool,
}

/// Splits a block's children into statements: `;` ends one, a brace
/// sub-block finalizes the current statement (the block header — `if`,
/// `for`, `match` — stands alone) and is recursed into. Paren/bracket
/// groups are flattened into the current statement so closures and call
/// arguments stay attached. Brace bodies of nested items are skipped.
fn split_stmts(children: &[Tree], src: &[u8], top: bool, out: &mut Vec<RawStmt>) {
    let mut cur: Vec<crate::lexer::Token> = Vec::new();
    let mut skip_brace = false;
    let finalize = |cur: &mut Vec<crate::lexer::Token>, trailing: bool, out: &mut Vec<RawStmt>| {
        if !cur.is_empty() {
            out.push(RawStmt {
                toks: std::mem::take(cur),
                trailing,
            });
        }
    };
    for tree in children {
        match tree {
            Tree::Leaf(t) if t.kind == TokenKind::Punct && t.text(src) == b";" => {
                skip_brace = false;
                finalize(&mut cur, false, out);
            }
            Tree::Leaf(t) => {
                if t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text(src)) {
                    skip_brace = true;
                }
                cur.push(*t);
            }
            Tree::Recovered(t) => cur.push(*t),
            Tree::Group(g) if g.delim == Delim::Brace => {
                finalize(&mut cur, false, out);
                if skip_brace {
                    skip_brace = false;
                    continue;
                }
                split_stmts(&g.children, src, false, out);
            }
            Tree::Group(g) => {
                cur.push(g.open);
                flatten_all(&g.children, &mut cur);
                if let Some(close) = g.close {
                    cur.push(close);
                }
            }
        }
    }
    finalize(&mut cur, top, out);
}

fn flatten_all(children: &[Tree], out: &mut Vec<crate::lexer::Token>) {
    for tree in children {
        match tree {
            Tree::Leaf(t) | Tree::Recovered(t) => out.push(*t),
            Tree::Group(g) => {
                out.push(g.open);
                flatten_all(&g.children, out);
                if let Some(close) = g.close {
                    out.push(close);
                }
            }
        }
    }
}

/// Reduces a raw statement to its taint facts. Returns `None` for
/// statements that are item headers (their facts belong elsewhere).
fn analyze_stmt(rs: &RawStmt, src: &[u8], index: &LineIndex) -> Option<Stmt> {
    let toks = &rs.toks;
    let first = toks.first()?;
    if first.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&first.text(src)) {
        return None;
    }
    let text = |i: usize| -> &[u8] { toks.get(i).map_or(&b""[..], |t| t.text(src)) };
    let is_ident = |i: usize| -> bool { toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident) };
    let owned = |b: &[u8]| String::from_utf8_lossy(b).into_owned();

    let (line, _) = index.line_col(first.start);
    let is_let = first.kind == TokenKind::Ident && first.text(src) == b"let";
    let is_for = first.kind == TokenKind::Ident && first.text(src) == b"for";
    let is_return = rs.trailing || (first.kind == TokenKind::Ident && first.text(src) == b"return");

    let mut stmt = Stmt {
        line,
        is_for,
        is_return,
        ..Stmt::default()
    };

    // Binding targets: `let <pat>` up to `:` or `=`; `for <pat>` up to `in`.
    if is_let || is_for {
        for i in 1..toks.len() {
            let t = text(i);
            if (is_let && matches!(t, b":" | b"=")) || (is_for && t == b"in") {
                break;
            }
            if is_ident(i) && !matches!(t, b"mut" | b"ref") {
                stmt.targets.push(owned(t));
            }
        }
    }

    // Indexed on purpose: the scan peeks at `i + 1` (call/sink
    // detection) and `i - 1`/`i - 2` (method receivers).
    #[allow(clippy::needless_range_loop)]
    for i in 0..toks.len() {
        if !is_ident(i) {
            continue;
        }
        let word = text(i);
        let name = owned(word);
        stmt.idents.push(name.clone());
        if CLEANSERS.iter().any(|c| c.as_bytes() == word) {
            stmt.cleansed = true;
        }
        if matches!(word, b"HashMap" | b"HashSet") {
            stmt.has_collection = true;
        }
        let called = text(i + 1) == b"(";
        let sinkish = called || text(i + 1) == b"!";
        if sinkish && SINKS.iter().any(|s| s.as_bytes() == word) && stmt.sink.is_none() {
            let (sl, sc) = index.line_col(toks[i].start);
            stmt.sink = Some(name.clone());
            stmt.sink_line = sl;
            stmt.sink_col = sc;
        }
        if called {
            let is_iter_method = ITER_METHODS.iter().any(|m| m.as_bytes() == word);
            if is_iter_method {
                // `recv.iter()` — record the receiver as iterated.
                if i >= 2 && text(i - 1) == b"." && is_ident(i - 2) {
                    stmt.iterated.push(owned(text(i - 2)));
                }
            } else if !CALL_BLACKLIST.contains(&word) {
                stmt.calls.push(name);
            }
        }
    }
    Some(stmt)
}

// ---------------------------------------------------------------------------
// The graph phase.
// ---------------------------------------------------------------------------

/// The crate a workspace-relative path belongs to, for graph grouping:
/// `crates/<name>/...` groups by crate, anything else is its own
/// single-file group.
fn crate_key(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return format!("crates/{}", &rest[..slash]);
        }
    }
    rel.to_owned()
}

/// One crate's functions, in (file, source-order) traversal order, plus
/// the name index used for call resolution.
struct CrateGraph<'a> {
    /// (file, fn) in sorted-file, source order.
    fns: Vec<(&'a str, &'a FnSummary)>,
    /// Last path segment → indices into `fns`.
    by_last: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> CrateGraph<'a> {
    fn build(fns: Vec<(&'a str, &'a FnSummary)>) -> Self {
        let mut by_last: BTreeMap<&'a str, Vec<usize>> = BTreeMap::new();
        for (i, (_, f)) in fns.iter().enumerate() {
            let last = f.name.rsplit("::").next().unwrap_or(&f.name);
            by_last.entry(last).or_default().push(i);
        }
        Self { fns, by_last }
    }

    /// Resolves a call site to candidate fn indices (sorted).
    fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let Some(last) = call.path.last() else {
            return Vec::new();
        };
        let Some(cands) = self.by_last.get(last.as_str()) else {
            return Vec::new();
        };
        if call.method {
            // A method call carries no path: resolve only when the
            // name is unique in the crate.
            return if cands.len() == 1 {
                cands.clone()
            } else {
                Vec::new()
            };
        }
        if call.path.len() == 1 {
            return cands.clone();
        }
        cands
            .iter()
            .copied()
            .filter(|&i| {
                let segs: Vec<&str> = self.fns[i].1.name.split("::").collect();
                segs.len() >= call.path.len()
                    && segs[segs.len() - call.path.len()..]
                        .iter()
                        .zip(&call.path)
                        .all(|(a, b)| a == b)
            })
            .collect()
    }
}

/// Runs the four flow rules over every file's summary. Returns the
/// findings (unsorted; [`crate::rules::finalize`] sorts) plus the set
/// of `(file, line, rule)` pragma-gated events for unused-pragma
/// accounting.
pub fn run_flow_rules(
    scans: &[FileScan],
    config: &LintConfig,
) -> (Vec<Finding>, BTreeSet<(String, u32, String)>) {
    let mut findings = Vec::new();
    let mut gated = BTreeSet::new();

    // Group by crate, preserving sorted file order.
    let mut crates: BTreeMap<String, Vec<(&str, &FnSummary)>> = BTreeMap::new();
    for scan in scans {
        let key = crate_key(&scan.rel);
        let entry = crates.entry(key).or_default();
        for f in &scan.summary.fns {
            entry.push((scan.rel.as_str(), f));
        }
    }

    for fns in crates.values() {
        let graph = CrateGraph::build(fns.clone());
        panic_reachability(&graph, config, &mut findings, &mut gated);
        lock_order(&graph, config, &mut findings);
        unordered_iter_flow(&graph, config, &mut findings);
        deadline_propagation(&graph, config, &mut findings);
    }
    (findings, gated)
}

fn render_panic(what: &str) -> String {
    match what {
        "unwrap" | "expect" => format!(".{what}()"),
        other => format!("{other}!"),
    }
}

fn panic_reachability(
    graph: &CrateGraph<'_>,
    config: &LintConfig,
    findings: &mut Vec<Finding>,
    gated: &mut BTreeSet<(String, u32, String)>,
) {
    let Some(def) = rule_by_name("panic-reachability") else {
        return;
    };
    let scope = config.scope(def.name);
    for (root, &(root_file, root_fn)) in graph.fns.iter().enumerate() {
        if !root_fn.is_pub || !scope.applies_to(root_file) {
            continue;
        }
        // Deterministic BFS: calls in source order, candidates sorted.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut depth: BTreeMap<usize, usize> = BTreeMap::new();
        let mut order: Vec<usize> = vec![root];
        let mut queue: VecDeque<usize> = VecDeque::from([root]);
        depth.insert(root, 0);
        while let Some(at) = queue.pop_front() {
            let d = depth.get(&at).copied().unwrap_or(0);
            for call in &graph.fns[at].1.calls {
                for target in graph.resolve(call) {
                    if let std::collections::btree_map::Entry::Vacant(slot) = depth.entry(target) {
                        slot.insert(d + 1);
                        parent.insert(target, at);
                        order.push(target);
                        queue.push_back(target);
                    }
                }
            }
        }
        for &at in &order {
            let (site_file, site_fn) = graph.fns[at];
            let d = depth.get(&at).copied().unwrap_or(0);
            for site in &site_fn.panics {
                // Direct sites are the token rule's job — except
                // `unreachable!`, which it deliberately does not cover.
                if d == 0 && site.what != "unreachable" {
                    continue;
                }
                if site.allowed {
                    // The pragma gates this whole chain; count it used.
                    for rule in ["panic-reachability", "no-panic-in-lib"] {
                        gated.insert((site_file.to_owned(), site.line, rule.to_owned()));
                    }
                    continue;
                }
                let mut chain = vec![site_fn.name.as_str()];
                let mut walk = at;
                while let Some(&p) = parent.get(&walk) {
                    chain.push(graph.fns[p].1.name.as_str());
                    walk = p;
                }
                chain.reverse();
                findings.push(Finding::of(
                    def,
                    root_file,
                    root_fn.line,
                    root_fn.col,
                    format!(
                        "panic site `{}` at {}:{} is reachable from public fn `{}` via `{}`",
                        render_panic(&site.what),
                        site_file,
                        site.line,
                        root_fn.name,
                        chain.join(" -> "),
                    ),
                ));
            }
        }
    }
}

fn lock_order(graph: &CrateGraph<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    let Some(def) = rule_by_name("lock-order") else {
        return;
    };
    let scope = config.scope(def.name);
    // Unordered resource pair -> (resource locked first, file, line of
    // the establishing inner acquisition).
    let mut canonical: BTreeMap<(String, String), (String, String, u32)> = BTreeMap::new();
    for &(file, f) in &graph.fns {
        if !scope.applies_to(file) {
            continue;
        }
        for i in 0..f.locks.len() {
            for j in (i + 1)..f.locks.len() {
                let (outer, inner) = (&f.locks[i], &f.locks[j]);
                if outer.resource == inner.resource {
                    continue;
                }
                let pair = if outer.resource < inner.resource {
                    (outer.resource.clone(), inner.resource.clone())
                } else {
                    (inner.resource.clone(), outer.resource.clone())
                };
                match canonical.get(&pair) {
                    None => {
                        canonical
                            .insert(pair, (outer.resource.clone(), file.to_owned(), inner.line));
                    }
                    Some((first, est_file, est_line)) if *first != outer.resource => {
                        findings.push(Finding::of(
                            def,
                            file,
                            inner.line,
                            inner.col,
                            format!(
                                "`{}.{}()` acquired while `{}` is held, contradicting the \
                                 canonical `{}` -> `{}` lock order established at {}:{}",
                                inner.resource,
                                inner.method,
                                outer.resource,
                                inner.resource,
                                outer.resource,
                                est_file,
                                est_line,
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

fn unordered_iter_flow(graph: &CrateGraph<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    let Some(def) = rule_by_name("unordered-iter-flow") else {
        return;
    };
    let scope = config.scope(def.name);
    // Fixpoint over which fns return unordered sequences, keyed by
    // unqualified name (the form call sites record).
    let mut unordered: BTreeSet<String> = BTreeSet::new();
    for _ in 0..10 {
        let mut changed = false;
        for &(_, f) in &graph.fns {
            let (_, returns) = fn_taint(f, &unordered);
            if returns {
                let last = f.name.rsplit("::").next().unwrap_or(&f.name);
                if unordered.insert(last.to_owned()) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for &(file, f) in &graph.fns {
        if !scope.applies_to(file) {
            continue;
        }
        let (sinks, _) = fn_taint(f, &unordered);
        for (var, sink, line, col) in sinks {
            findings.push(Finding::of(
                def,
                file,
                line,
                col,
                format!(
                    "iteration order of `{var}` (std HashMap/HashSet) reaches the \
                     serialization sink `{sink}` in `{}`; emission order is \
                     nondeterministic",
                    f.name,
                ),
            ));
        }
    }
}

/// The per-fn taint pass: returns the tainted sinks hit and whether the
/// fn returns an unordered sequence. Replays the statement list to a
/// fixpoint so taint introduced late still reaches earlier loops on the
/// next pass, while cleansers (`sort`, BTree collects) strip it in
/// statement order.
fn fn_taint(
    f: &FnSummary,
    unordered: &BTreeSet<String>,
) -> (Vec<(String, String, u32, u32)>, bool) {
    let mut coll: BTreeSet<&str> = BTreeSet::new();
    let mut seq: BTreeSet<&str> = BTreeSet::new();
    let mut sinks: Vec<(String, String, u32, u32)> = Vec::new();
    let mut returns = false;
    for _ in 0..8 {
        let before = (coll.len(), seq.len());
        sinks.clear();
        returns = false;
        for stmt in &f.stmts {
            // A bare cleanser statement (`keys.sort();`) removes taint
            // from the names it mentions.
            if stmt.cleansed && stmt.targets.is_empty() && stmt.sink.is_none() {
                for id in &stmt.idents {
                    seq.remove(id.as_str());
                }
                continue;
            }
            let from_iter = stmt
                .iterated
                .iter()
                .any(|v| coll.contains(v.as_str()) || seq.contains(v.as_str()));
            let from_seq = stmt.idents.iter().any(|v| seq.contains(v.as_str()));
            let from_call = stmt.calls.iter().any(|c| unordered.contains(c.as_str()));
            let tainted_in = from_iter || from_seq || from_call;
            if !stmt.cleansed {
                if stmt.has_collection {
                    for t in &stmt.targets {
                        coll.insert(t.as_str());
                    }
                }
                if tainted_in {
                    for t in &stmt.targets {
                        seq.insert(t.as_str());
                    }
                }
            }
            if let Some(sink) = &stmt.sink {
                if tainted_in && !stmt.cleansed {
                    let var = stmt
                        .iterated
                        .iter()
                        .find(|v| coll.contains(v.as_str()) || seq.contains(v.as_str()))
                        .or_else(|| stmt.idents.iter().find(|v| seq.contains(v.as_str())))
                        .cloned()
                        .unwrap_or_else(|| String::from("<call result>"));
                    sinks.push((var, sink.clone(), stmt.sink_line, stmt.sink_col));
                }
            }
            if stmt.is_return && tainted_in && !stmt.cleansed {
                returns = true;
            }
        }
        if (coll.len(), seq.len()) == before {
            break;
        }
    }
    (sinks, returns)
}

fn deadline_propagation(graph: &CrateGraph<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    let Some(def) = rule_by_name("deadline-propagation") else {
        return;
    };
    let scope = config.scope(def.name);
    for (idx, &(file, f)) in graph.fns.iter().enumerate() {
        if !scope.applies_to(file) {
            continue;
        }
        let Some(param) = &f.deadline_param else {
            continue;
        };
        for call in &f.calls {
            let takes_deadline = graph
                .resolve(call)
                .into_iter()
                .any(|t| t != idx && graph.fns[t].1.deadline_param.is_some());
            if !takes_deadline {
                continue;
            }
            if call.args.iter().any(|a| a == param || a == "deadline") {
                continue;
            }
            let callee = call.path.join("::");
            findings.push(
                Finding::of(
                    def,
                    file,
                    call.line,
                    call.col,
                    format!(
                        "call to `{callee}` from `{}` drops the request deadline; \
                         blocking work must stay under the request budget",
                        f.name,
                    ),
                )
                .with_hint(format!("pass `{param}` through to `{callee}`")),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules;

    fn scan_of(rel: &str, src: &str) -> FileScan {
        rules::analyze_file(rel, src.as_bytes(), false, &LintConfig::default())
    }

    fn summary_of(src: &str) -> FileSummary {
        scan_of("crates/x/src/lib.rs", src).summary
    }

    fn flow(files: &[(&str, &str)]) -> Vec<Finding> {
        let scans: Vec<FileScan> = files.iter().map(|(rel, src)| scan_of(rel, src)).collect();
        let (findings, gated) = run_flow_rules(&scans, &LintConfig::default());
        rules::finalize(&scans, findings, &gated)
    }

    #[test]
    fn summarizes_calls_panics_and_locks() {
        let s = summary_of(
            r#"
pub fn api(x: u8) -> u8 { helper(x) }
fn helper(x: u8) -> u8 {
    let g = table.shards[0].write();
    let p = props.lock();
    inner::check(x);
    x.unwrap()
}
"#,
        );
        assert_eq!(s.fns.len(), 2);
        let api = &s.fns[0];
        assert!(api.is_pub);
        assert_eq!(api.calls.len(), 1);
        assert_eq!(api.calls[0].path, vec!["helper"]);
        let helper = &s.fns[1];
        assert!(!helper.is_pub);
        let locked: Vec<&str> = helper.locks.iter().map(|l| l.resource.as_str()).collect();
        assert_eq!(locked, vec!["shards", "props"]);
        assert_eq!(helper.panics.len(), 1);
        assert_eq!(helper.panics[0].what, "unwrap");
        assert!(helper
            .calls
            .iter()
            .any(|c| c.path == vec!["inner", "check"]));
    }

    #[test]
    fn io_write_with_args_is_not_a_lock() {
        let s = summary_of("fn f(mut w: W, buf: &[u8]) { w.write(buf); out.write(); }");
        let locked: Vec<&str> = s.fns[0].locks.iter().map(|l| l.resource.as_str()).collect();
        assert_eq!(locked, vec!["out"]);
    }

    #[test]
    fn nested_fn_facts_stay_separate() {
        let s = summary_of("fn outer() { fn inner() { x.unwrap(); } inner(); }");
        let outer = s
            .fns
            .iter()
            .find(|f| f.name == "outer")
            .map(|f| f.panics.len());
        let inner = s
            .fns
            .iter()
            .find(|f| f.name == "outer::inner")
            .map(|f| f.panics.len());
        assert_eq!((outer, inner), (Some(0), Some(1)));
    }

    #[test]
    fn panic_reachability_walks_the_chain() {
        let found = flow(&[(
            "crates/x/src/lib.rs",
            "pub fn api() { step() }\nfn step() { core() }\nfn core() { v.unwrap(); }\n",
        )]);
        let reach: Vec<&Finding> = found
            .iter()
            .filter(|f| f.rule == "panic-reachability")
            .collect();
        assert_eq!(reach.len(), 1, "{found:?}");
        assert_eq!(reach[0].line, 1);
        assert!(reach[0].message.contains("api -> step -> core"));
        assert!(reach[0].message.contains(".unwrap()"));
    }

    #[test]
    fn allowed_sites_do_not_propagate_and_mark_pragmas_used() {
        let found = flow(&[(
            "crates/x/src/lib.rs",
            "pub fn api() { step() }\n\
             fn step() { v.unwrap(); } // lint:allow(no-panic-in-lib): checked at boot\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != "panic-reachability"),
            "{found:?}"
        );
        assert!(found.iter().all(|f| f.rule != rules::UNUSED_ALLOW));
    }

    #[test]
    fn direct_unreachable_fires_but_direct_unwrap_does_not_double_report() {
        let found = flow(&[(
            "crates/x/src/lib.rs",
            "pub fn a() { unreachable!() }\npub fn b() { v.unwrap(); }\n",
        )]);
        let reach: Vec<&Finding> = found
            .iter()
            .filter(|f| f.rule == "panic-reachability")
            .collect();
        assert_eq!(reach.len(), 1, "{found:?}");
        assert!(reach[0].message.contains("unreachable!"));
        // b's unwrap is the token rule's finding alone.
        assert_eq!(
            found.iter().filter(|f| f.rule == "no-panic-in-lib").count(),
            1
        );
    }

    #[test]
    fn lock_order_contradiction_is_reported_once() {
        let found = flow(&[(
            "crates/x/src/lib.rs",
            "fn a() { let s = shards.write(); let p = props.write(); }\n\
             fn b() { let p = props.write(); let s = shards.write(); }\n",
        )]);
        let locks: Vec<&Finding> = found.iter().filter(|f| f.rule == "lock-order").collect();
        assert_eq!(locks.len(), 1, "{found:?}");
        assert_eq!(locks[0].line, 2);
        assert!(
            locks[0].message.contains("`shards` -> `props`"),
            "{}",
            locks[0].message
        );
    }

    #[test]
    fn taint_flows_through_lets_into_sinks_and_sorting_cleanses() {
        let dirty = "fn emit(m: &HashMap<u32, u32>) -> String {\n\
                     let mut out = String::new();\n\
                     for k in m.keys() { out.push_str(&format(k)); }\n\
                     out\n}\n";
        let found = flow(&[("crates/x/src/lib.rs", dirty)]);
        assert!(
            found.iter().any(|f| f.rule == "unordered-iter-flow"),
            "{found:?}"
        );

        let sorted = "fn emit(m: &HashMap<u32, u32>) -> String {\n\
                      let mut keys: Vec<u32> = m.keys().copied().collect();\n\
                      keys.sort();\n\
                      let mut out = String::new();\n\
                      for k in keys { out.push_str(&format(k)); }\n\
                      out\n}\n";
        let found = flow(&[("crates/x/src/lib.rs", sorted)]);
        assert!(
            found.iter().all(|f| f.rule != "unordered-iter-flow"),
            "{found:?}"
        );
    }

    #[test]
    fn taint_propagates_across_function_returns() {
        let src = "fn tally(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let v: Vec<u32> = m.keys().copied().collect();\n\
                   v\n}\n\
                   fn emit() -> String {\n\
                   let rows = tally(&m);\n\
                   let mut out = String::new();\n\
                   for r in rows { out.push_str(&format(r)); }\n\
                   out\n}\n";
        let found = flow(&[("crates/x/src/lib.rs", src)]);
        assert!(
            found.iter().any(|f| f.rule == "unordered-iter-flow"),
            "{found:?}"
        );
    }

    #[test]
    fn deadline_must_thread_into_blocking_callees() {
        let src = "pub fn handle(q: Query, deadline: Deadline) -> Response {\n\
                   lookup(q)\n}\n\
                   fn lookup(q: Query, deadline: Deadline) -> Response { answer(q) }\n\
                   fn answer(q: Query) -> Response { Response::empty() }\n";
        let found = flow(&[("crates/x/src/lib.rs", src)]);
        let dl: Vec<&Finding> = found
            .iter()
            .filter(|f| f.rule == "deadline-propagation")
            .collect();
        assert_eq!(dl.len(), 1, "{found:?}");
        assert_eq!(dl[0].line, 2);
        assert!(dl[0].fix_hint.contains("deadline"));

        let ok = "pub fn handle(q: Query, deadline: Deadline) -> Response {\n\
                  lookup(q, deadline)\n}\n\
                  fn lookup(q: Query, deadline: Deadline) -> Response { q.answer() }\n";
        let found = flow(&[("crates/x/src/lib.rs", ok)]);
        assert!(
            found.iter().all(|f| f.rule != "deadline-propagation"),
            "{found:?}"
        );
    }

    #[test]
    fn graphs_do_not_cross_crate_boundaries() {
        let found = flow(&[
            ("crates/a/src/lib.rs", "pub fn api() { helper() }\n"),
            ("crates/b/src/lib.rs", "fn helper() { v.unwrap(); }\n"),
        ]);
        assert!(
            found.iter().all(|f| f.rule != "panic-reachability"),
            "{found:?}"
        );
    }

    #[test]
    fn stmt_splitter_survives_garbage() {
        for src in [
            "fn f() { ) ( }",
            "fn f() { let x = ; ;; }",
            "fn f() {",
            "{ } }",
        ] {
            let tokens = lex(src.as_bytes());
            let sig = syntax::significant(&tokens);
            let trees = syntax::parse(&sig, src.as_bytes());
            let index = LineIndex::new(src.as_bytes());
            let _ = summarize(src.as_bytes(), &trees, &index, &[], &[]);
        }
    }
}
