//! Rendering findings: the human `file:line:col` listing and the
//! machine-readable JSON report.
//!
//! The JSON is hand-emitted (this crate deliberately has no
//! dependencies, vendored or otherwise) and kept to the schema
//! documented in DESIGN.md §6e:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files_scanned": 137,
//!   "findings": [
//!     {"rule": "no-panic-in-lib", "file": "crates/x/src/lib.rs",
//!      "line": 10, "col": 7, "message": "..."}
//!   ]
//! }
//! ```
//!
//! Findings are pre-sorted by the caller, so byte-identical inputs
//! produce byte-identical reports.

use crate::rules::Finding;
use std::fmt::Write as _;

/// JSON report schema version.
pub const LINT_REPORT_VERSION: u32 = 1;

/// The human listing: one `file:line:col: rule: message` line per
/// finding, then a one-line summary.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    let _ = write!(
        out,
        "surveyor-lint: {} finding{} across {} file{} scanned",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
    );
    out
}

/// The JSON report.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": {LINT_REPORT_VERSION},\n  \"files_scanned\": {files_scanned},\n  \"findings\": ["
    );
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.message),
        );
    }
    if findings.is_empty() {
        let _ = write!(out, "]\n}}\n");
    } else {
        let _ = write!(out, "\n  ]\n}}\n");
    }
    out
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "no-panic-in-lib".to_owned(),
            file: "crates/x/src/lib.rs".to_owned(),
            line: 3,
            col: 9,
            message: "a \"quoted\"\tmessage".to_owned(),
        }
    }

    #[test]
    fn human_listing_shape() {
        let text = render_human(&[finding()], 5);
        assert!(text.starts_with("crates/x/src/lib.rs:3:9: no-panic-in-lib:"));
        assert!(text.ends_with("1 finding across 5 files scanned"));
        let empty = render_human(&[], 5);
        assert_eq!(empty, "surveyor-lint: 0 findings across 5 files scanned");
    }

    #[test]
    fn json_escapes_and_shape() {
        let json = render_json(&[finding()], 5);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"files_scanned\": 5"));
        assert!(json.contains(r#""message": "a \"quoted\"\tmessage""#));
        let empty = render_json(&[], 0);
        assert!(empty.contains("\"findings\": []"));
    }

    #[test]
    fn json_string_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
