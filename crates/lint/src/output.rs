//! Rendering findings: the human `file:line:col` listing and the
//! machine-readable JSON report, plus the reader that re-hydrates
//! reports (v1 or v2) back into [`Finding`]s.
//!
//! The JSON is hand-emitted (this crate deliberately has no
//! dependencies, vendored or otherwise) and kept to the schema
//! documented in DESIGN.md §6e. Schema v2 adds per-finding severity,
//! rule version, and a machine-readable fix hint, mirroring the
//! RunReport versioning discipline: the version bumps, the reader
//! keeps accepting the old shape:
//!
//! ```json
//! {
//!   "version": 2,
//!   "ruleset_version": 2,
//!   "files_scanned": 137,
//!   "findings": [
//!     {"rule": "no-panic-in-lib", "severity": "error", "rule_version": 1,
//!      "file": "crates/x/src/lib.rs", "line": 10, "col": 7,
//!      "message": "...", "fix_hint": "..."}
//!   ]
//! }
//! ```
//!
//! Findings are pre-sorted by the caller, so byte-identical inputs
//! produce byte-identical reports — the cache and the worker count
//! never appear in the report for exactly that reason.

use crate::json::{self, Json};
use crate::rules::{rule_or_meta, Finding, Severity, RULESET_VERSION};
use std::fmt::Write as _;

/// JSON report schema version.
pub const LINT_REPORT_VERSION: u32 = 2;

/// The human listing: one `file:line:col: rule: message` line per
/// finding, then a one-line summary.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    let _ = write!(
        out,
        "surveyor-lint: {} finding{} across {} file{} scanned",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
    );
    out
}

/// The JSON report (schema v2).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": {LINT_REPORT_VERSION},\n  \"ruleset_version\": {RULESET_VERSION},\n  \"files_scanned\": {files_scanned},\n  \"findings\": ["
    );
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": {}, \"severity\": {}, \"rule_version\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"fix_hint\": {}}}",
            json_string(&f.rule),
            json_string(f.severity.as_str()),
            f.rule_version,
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.message),
            json_string(&f.fix_hint),
        );
    }
    if findings.is_empty() {
        let _ = write!(out, "]\n}}\n");
    } else {
        let _ = write!(out, "\n  ]\n}}\n");
    }
    out
}

/// A re-hydrated report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportData {
    /// Schema version the report was written with (1 or 2).
    pub version: u32,
    /// Files the producing run scanned.
    pub files_scanned: usize,
    /// The findings, in report order.
    pub findings: Vec<Finding>,
}

/// Parses a JSON report produced by [`render_json`] — this version's
/// v2 shape or PR 4's v1 shape. v1 findings carry no severity, rule
/// version, or fix hint; those are backfilled from the current rule
/// table (unknown rules default to `info`, version 0, empty hint).
pub fn from_json(text: &str) -> Result<ReportData, String> {
    let doc = json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(Json::as_u32)
        .ok_or("report has no version")?;
    if !(1..=LINT_REPORT_VERSION).contains(&version) {
        return Err(format!("unsupported report version {version}"));
    }
    let files_scanned = doc
        .get("files_scanned")
        .and_then(Json::as_usize)
        .ok_or("report has no files_scanned")?;
    let mut findings = Vec::new();
    for item in doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("report has no findings array")?
    {
        findings.push(finding_from_json(item).ok_or("malformed finding")?);
    }
    Ok(ReportData {
        version,
        files_scanned,
        findings,
    })
}

/// Re-hydrates one finding object (v1 or v2 shape). Also used by the
/// incremental cache, whose entries store findings in the v2 shape.
pub(crate) fn finding_from_json(item: &Json) -> Option<Finding> {
    let rule = item.get("rule")?.as_str()?.to_owned();
    let defaults = rule_or_meta(&rule);
    let severity = match item.get("severity").and_then(Json::as_str) {
        Some(name) => Severity::parse(name)?,
        None => defaults.map_or(Severity::Info, |d| d.severity),
    };
    let rule_version = match item.get("rule_version") {
        Some(v) => v.as_u32()?,
        None => defaults.map_or(0, |d| d.version),
    };
    let fix_hint = match item.get("fix_hint") {
        Some(v) => v.as_str()?.to_owned(),
        None => defaults.map_or_else(String::new, |d| d.fix_hint.to_owned()),
    };
    Some(Finding {
        rule,
        severity,
        rule_version,
        file: item.get("file")?.as_str()?.to_owned(),
        line: item.get("line")?.as_u32()?,
        col: item.get("col")?.as_u32()?,
        message: item.get("message")?.as_str()?.to_owned(),
        fix_hint,
    })
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json::write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule_by_name;

    fn finding() -> Finding {
        let def = rule_by_name("no-panic-in-lib").expect("rule exists");
        Finding::of(
            def,
            "crates/x/src/lib.rs",
            3,
            9,
            "a \"quoted\"\tmessage".to_owned(),
        )
    }

    #[test]
    fn human_listing_shape() {
        let text = render_human(&[finding()], 5);
        assert!(text.starts_with("crates/x/src/lib.rs:3:9: no-panic-in-lib:"));
        assert!(text.ends_with("1 finding across 5 files scanned"));
        let empty = render_human(&[], 5);
        assert_eq!(empty, "surveyor-lint: 0 findings across 5 files scanned");
    }

    #[test]
    fn json_escapes_and_shape() {
        let json = render_json(&[finding()], 5);
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains(&format!("\"ruleset_version\": {RULESET_VERSION}")));
        assert!(json.contains("\"files_scanned\": 5"));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"rule_version\": 1"));
        assert!(json.contains("\"fix_hint\":"));
        assert!(json.contains(r#""message": "a \"quoted\"\tmessage""#));
        let empty = render_json(&[], 0);
        assert!(empty.contains("\"findings\": []"));
    }

    #[test]
    fn v2_reports_round_trip() {
        let findings = vec![finding()];
        let data = from_json(&render_json(&findings, 7)).expect("round-trips");
        assert_eq!(data.version, 2);
        assert_eq!(data.files_scanned, 7);
        assert_eq!(data.findings, findings);
    }

    #[test]
    fn v1_reports_still_parse_with_backfilled_fields() {
        let v1 = r#"{
  "version": 1,
  "files_scanned": 3,
  "findings": [
    {"rule": "no-panic-in-lib", "file": "crates/x/src/lib.rs",
     "line": 10, "col": 7, "message": "old finding"},
    {"rule": "retired-rule", "file": "a.rs", "line": 1, "col": 1, "message": "m"}
  ]
}"#;
        let data = from_json(v1).expect("v1 parses");
        assert_eq!(data.version, 1);
        assert_eq!(data.findings.len(), 2);
        assert_eq!(data.findings[0].severity, Severity::Error);
        assert_eq!(data.findings[0].rule_version, 1);
        assert!(!data.findings[0].fix_hint.is_empty());
        // A rule the current table no longer knows degrades gracefully.
        assert_eq!(data.findings[1].severity, Severity::Info);
        assert_eq!(data.findings[1].rule_version, 0);
        assert!(data.findings[1].fix_hint.is_empty());
    }

    #[test]
    fn corrupt_reports_error() {
        for bad in [
            "",
            "{}",
            r#"{"version": 9, "files_scanned": 0, "findings": []}"#,
            r#"{"version": 2, "files_scanned": 0, "findings": [{"rule": "x"}]}"#,
        ] {
            assert!(from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_string_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
