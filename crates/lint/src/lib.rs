//! `surveyor-lint` — a workspace static-analysis pass enforcing the
//! determinism and panic-freedom invariants earlier PRs promised.
//!
//! Surveyor guarantees bit-identical output across thread counts,
//! schema-stable run reports, and panic-isolated fault-tolerant
//! sharding — none of which the compiler checks. A stray `unwrap()` in
//! a shard worker silently converts a typed `ShardError` into a
//! quarantine; an `Instant::now()` or unseeded RNG in a decision path
//! breaks reproducibility; a `std::collections::HashMap` feeding a
//! report breaks `diff`-ability. Clippy has no notion of these domain
//! rules, and the offline vendored toolchain rules out dylint/syn, so
//! this crate rebuilds the analyzer from scratch:
//!
//! - [`lexer`] — a hand-rolled, panic-free Rust lexer (comments,
//!   strings, raw strings, char-vs-lifetime, byte-range spans);
//! - [`config`] — the committed `lint.toml` scoping rules to
//!   crates/paths, parsed by a minimal hand-rolled TOML-subset reader;
//! - [`rules`] — the rule table and token-level scan engine, with
//!   per-line `// lint:allow(<rule>)` pragmas and unused-allow
//!   detection;
//! - [`walker`] — deterministic sorted workspace traversal;
//! - [`output`] — `file:line:col` human listings and a versioned JSON
//!   report.
//!
//! The binary (`cargo run --release -p surveyor-lint`) exits 0 on a
//! clean workspace, 1 when there are findings, and 2 on usage or
//! configuration errors — `scripts/verify.sh` treats any nonzero exit
//! as a gate failure.
//!
//! ```
//! use surveyor_lint::{config::LintConfig, rules};
//!
//! let mut findings = Vec::new();
//! rules::scan_file(
//!     "crates/demo/src/lib.rs",
//!     b"fn f(x: Option<u8>) -> u8 { x.unwrap() }",
//!     false,
//!     &LintConfig::default(),
//!     &mut findings,
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "no-panic-in-lib");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod walker;

use std::path::Path;

/// Result of linting a workspace: sorted findings plus scan stats.
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    /// All findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<rules::Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Errors that stop a lint run before any file is judged.
#[derive(Debug)]
pub enum LintError {
    /// `lint.toml` is missing or malformed.
    Config(String),
    /// The workspace could not be read.
    Io(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(m) | Self::Io(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for LintError {}

/// Lints every `.rs` file under `root` using `config`. Findings come
/// back sorted, so two runs over the same tree are byte-identical.
pub fn lint_workspace(root: &Path, config: &config::LintConfig) -> Result<LintRun, LintError> {
    let files = walker::collect_rust_files(root, config)
        .map_err(|e| LintError::Io(format!("walking {}: {e}", root.display())))?;
    let mut findings = Vec::new();
    for file in &files {
        let src = std::fs::read(&file.abs)
            .map_err(|e| LintError::Io(format!("reading {}: {e}", file.rel)))?;
        rules::scan_file(&file.rel, &src, file.is_crate_root, config, &mut findings);
    }
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Ok(LintRun {
        findings,
        files_scanned: files.len(),
    })
}

/// Loads `lint.toml` from `path`.
pub fn load_config(path: &Path) -> Result<config::LintConfig, LintError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| LintError::Config(format!("reading {}: {e}", path.display())))?;
    let parsed = config::parse(&src).map_err(|e| LintError::Config(e.to_string()))?;
    for rule in parsed.rules.keys() {
        if rules::rule_by_name(rule).is_none() {
            return Err(LintError::Config(format!(
                "lint.toml configures unknown rule `{rule}` (known: {})",
                rules::RULES
                    .iter()
                    .map(|r| r.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    Ok(parsed)
}
