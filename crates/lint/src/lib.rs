//! `surveyor-lint` — a workspace static-analysis pass enforcing the
//! determinism and panic-freedom invariants earlier PRs promised.
//!
//! Surveyor guarantees bit-identical output across thread counts,
//! schema-stable run reports, and panic-isolated fault-tolerant
//! sharding — none of which the compiler checks. A stray `unwrap()` in
//! a shard worker silently converts a typed `ShardError` into a
//! quarantine; an `Instant::now()` or unseeded RNG in a decision path
//! breaks reproducibility; a `std::collections::HashMap` feeding a
//! report breaks `diff`-ability. Clippy has no notion of these domain
//! rules, and the offline vendored toolchain rules out dylint/syn, so
//! this crate rebuilds the analyzer from scratch, in two layers:
//!
//! - [`lexer`] — a hand-rolled, panic-free Rust lexer (comments,
//!   strings, raw strings, char-vs-lifetime, byte-range spans);
//! - [`syntax`] — brace-matched token trees and item extraction
//!   (fn/impl/mod/use with spans and visibility) over the lexer;
//! - [`config`] — the committed `lint.toml` scoping rules to
//!   crates/paths, parsed by a minimal hand-rolled TOML-subset reader;
//! - [`rules`] — the rule table and token-level scan engine, with
//!   per-line `// lint:allow(<rule>)` pragmas and unused-allow
//!   detection;
//! - [`callgraph`] — per-crate function call graphs and the four
//!   flow-aware rules (panic reachability, lock ordering, unordered
//!   iteration taint, deadline propagation);
//! - [`walker`] — deterministic sorted workspace traversal;
//! - [`cache`] — the incremental cache under `artifacts/`, keyed on
//!   (content hash, lint.toml hash, rule-set version);
//! - [`json`] — a panic-free JSON reader for the cache and report
//!   re-hydration;
//! - [`output`] — `file:line:col` human listings and the versioned
//!   (v2) JSON report, with a v1-compatible reader.
//!
//! Files are scanned in parallel by a claim-cursor worker pool and
//! merged back in walk order, then the flow rules run over the full
//! summary set — so the report is byte-identical at any worker count
//! and with a cold or warm cache.
//!
//! The binary (`cargo run --release -p surveyor-lint`) exits 0 on a
//! clean workspace, 1 when there are findings (after `--max-severity`
//! filtering), and 2 on usage or configuration errors —
//! `scripts/verify.sh` treats any nonzero exit as a gate failure.
//!
//! ```
//! use surveyor_lint::{config::LintConfig, rules};
//!
//! let mut findings = Vec::new();
//! rules::scan_file(
//!     "crates/demo/src/lib.rs",
//!     b"fn f(x: Option<u8>) -> u8 { x.unwrap() }",
//!     false,
//!     &LintConfig::default(),
//!     &mut findings,
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "no-panic-in-lib");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod json;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod syntax;
pub mod walker;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of linting a workspace: sorted findings plus scan stats.
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    /// All findings, sorted by `(file, line, col, rule, message)`.
    pub findings: Vec<rules::Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many of those were reused from the incremental cache.
    pub files_reused: usize,
}

/// Errors that stop a lint run before any file is judged.
#[derive(Debug)]
pub enum LintError {
    /// `lint.toml` is missing or malformed.
    Config(String),
    /// The workspace could not be read.
    Io(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(m) | Self::Io(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for LintError {}

/// Execution options for [`lint_workspace_with`].
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Worker threads for the file-scan phase; 0 means "available
    /// parallelism" (capped at 8 — scans are short).
    pub workers: usize,
    /// Where to load/store the incremental cache; `None` disables it.
    pub cache_path: Option<PathBuf>,
}

/// Lints every `.rs` file under `root` using `config`, serially and
/// without a cache. Findings come back sorted, so two runs over the
/// same tree are byte-identical. Equivalent to [`lint_workspace_with`]
/// with default [`LintOptions`].
pub fn lint_workspace(root: &Path, config: &config::LintConfig) -> Result<LintRun, LintError> {
    lint_workspace_with(root, config, &LintOptions::default())
}

/// Lints every `.rs` file under `root` using `config`, with a
/// claim-cursor worker pool and the incremental cache.
///
/// The pipeline: collect files (sorted), scan each in parallel (cache
/// hits skip the lex/parse entirely), merge per-file scans back in
/// walk order, run the flow rules over all summaries, then apply
/// pragmas globally and sort. Worker count and cache state can only
/// change wall-time, never the findings — which is why neither appears
/// in the JSON report.
pub fn lint_workspace_with(
    root: &Path,
    config: &config::LintConfig,
    opts: &LintOptions,
) -> Result<LintRun, LintError> {
    let files = walker::collect_rust_files(root, config)
        .map_err(|e| LintError::Io(format!("walking {}: {e}", root.display())))?;
    let config_hash = cache::fnv1a(format!("{config:?}").as_bytes());
    let cached = match &opts.cache_path {
        Some(path) => cache::load(path, config_hash),
        None => cache::Cache::default(),
    };
    // Hand each cached scan out by value: every file is claimed at most
    // once, so workers `take()` entries instead of deep-cloning them —
    // on a fully warm run that clone was the second-largest cost after
    // parsing the cache itself.
    let cache_total = cached.entries.len();
    let cached_slots: BTreeMap<String, (u64, Mutex<Option<rules::FileScan>>)> = cached
        .entries
        .into_iter()
        .map(|(rel, entry)| (rel, (entry.hash, Mutex::new(Some(entry.scan)))))
        .collect();

    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        n => n,
    }
    .min(files.len().max(1));

    // Claim-cursor fan-out (the PR-5 worker pattern): each worker
    // claims the next unscanned index; results carry their index so
    // the merge is in deterministic walk order regardless of timing.
    let cursor = AtomicUsize::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let slots: Vec<Mutex<Option<(u64, rules::FileScan, bool)>>> =
        (0..files.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(idx) else {
                    break;
                };
                let src = match std::fs::read(&file.abs) {
                    Ok(src) => src,
                    Err(e) => {
                        if let Ok(mut errs) = errors.lock() {
                            errs.push(format!("reading {}: {e}", file.rel));
                        }
                        continue;
                    }
                };
                let hash = cache::fnv1a(&src);
                let reusable = match cached_slots.get(&file.rel) {
                    Some((cached_hash, slot)) if *cached_hash == hash => {
                        slot.lock().ok().and_then(|mut scan| scan.take())
                    }
                    _ => None,
                };
                let (scan, reused) = match reusable {
                    Some(scan) => (scan, true),
                    None => (
                        rules::analyze_file(&file.rel, &src, file.is_crate_root, config),
                        false,
                    ),
                };
                if let Ok(mut slot) = slots[idx].lock() {
                    *slot = Some((hash, scan, reused));
                }
            });
        }
    });
    if let Ok(errs) = errors.lock() {
        if let Some(first) = errs.first() {
            return Err(LintError::Io(first.clone()));
        }
    }
    let mut scans: Vec<rules::FileScan> = Vec::with_capacity(files.len());
    let mut hashes: Vec<u64> = Vec::with_capacity(files.len());
    let mut files_reused = 0usize;
    for slot in slots {
        let Ok(mut guard) = slot.lock() else {
            return Err(LintError::Io(
                "scan worker poisoned a result slot".to_owned(),
            ));
        };
        let Some((hash, scan, reused)) = guard.take() else {
            return Err(LintError::Io("scan worker dropped a file".to_owned()));
        };
        files_reused += usize::from(reused);
        hashes.push(hash);
        scans.push(scan);
    }

    let (flow, gated) = callgraph::run_flow_rules(&scans, config);
    let findings = rules::finalize(&scans, flow, &gated);

    if let Some(path) = &opts.cache_path {
        // A fully warm run (every file reused, no stale entries) leaves
        // the cache byte-identical; skip the rewrite so warm runs pay
        // for one JSON parse, not parse+print. Best-effort either way:
        // a read-only checkout must not fail the gate.
        if files_reused != files.len() || cache_total != files.len() {
            let mut entries: BTreeMap<String, cache::CacheEntry> = BTreeMap::new();
            for (hash, scan) in hashes.into_iter().zip(scans) {
                entries.insert(scan.rel.clone(), cache::CacheEntry { hash, scan });
            }
            let _ = cache::store(path, config_hash, &entries);
        }
    }

    Ok(LintRun {
        findings,
        files_scanned: files.len(),
        files_reused,
    })
}

/// Loads `lint.toml` from `path`.
pub fn load_config(path: &Path) -> Result<config::LintConfig, LintError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| LintError::Config(format!("reading {}: {e}", path.display())))?;
    let parsed = config::parse(&src).map_err(|e| LintError::Config(e.to_string()))?;
    for rule in parsed.rules.keys() {
        if rules::rule_by_name(rule).is_none() {
            return Err(LintError::Config(format!(
                "lint.toml configures unknown rule `{rule}` (known: {})",
                rules::RULES
                    .iter()
                    .map(|r| r.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    Ok(parsed)
}
