//! Layer two of the analyzer: brace-matched token trees and item
//! extraction over the flat [`crate::lexer`] stream.
//!
//! The token-level rules of PR 4 can see one line at a time; the
//! flow-aware rules (panic reachability, lock ordering, taint flow,
//! deadline threading) need to know where a function *starts and ends*
//! and what its body contains. This module supplies exactly that much
//! structure and no more: it groups significant tokens into
//! delimiter-matched trees (`()`, `[]`, `{}`) and extracts item
//! signatures (`fn`/`impl`/`mod`/`use` with spans and visibility). It
//! does not build expressions, types, or patterns — the rules that sit
//! on top pattern-match token sequences inside a known function body.
//!
//! Guarantees (property-tested in `tests/syntax_props.rs`):
//!
//! - parsing never panics, on any byte string;
//! - flattening the tree reproduces the significant token stream
//!   exactly (trees tile the input);
//! - unbalanced delimiters degrade, never error: an unclosed group runs
//!   to the end of its parent and records `close: None`; an orphan
//!   closer becomes a flat [`Tree::Recovered`] leaf.

use crate::lexer::{Token, TokenKind};

/// A delimiter pair kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

impl Delim {
    fn open(byte: u8) -> Option<Self> {
        match byte {
            b'(' => Some(Self::Paren),
            b'[' => Some(Self::Bracket),
            b'{' => Some(Self::Brace),
            _ => None,
        }
    }

    fn close(byte: u8) -> Option<Self> {
        match byte {
            b')' => Some(Self::Paren),
            b']' => Some(Self::Bracket),
            b'}' => Some(Self::Brace),
            _ => None,
        }
    }
}

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A significant non-delimiter token.
    Leaf(Token),
    /// A delimiter-matched group.
    Group(Group),
    /// A closing delimiter with no matching opener: kept as a flat
    /// recovery node so the tree still tiles the input.
    Recovered(Token),
}

/// A delimiter-matched group: `open`, `children`, and (when the source
/// actually closed it) `close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Which delimiter pair this group uses.
    pub delim: Delim,
    /// The opening delimiter token.
    pub open: Token,
    /// The closing delimiter token; `None` when the group ran
    /// unterminated to the end of its parent.
    pub close: Option<Token>,
    /// The trees between the delimiters.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The byte offset the tree starts at.
    pub fn start(&self) -> usize {
        match self {
            Tree::Leaf(t) | Tree::Recovered(t) => t.start,
            Tree::Group(g) => g.open.start,
        }
    }

    /// The byte offset one past the tree's end.
    pub fn end(&self) -> usize {
        match self {
            Tree::Leaf(t) | Tree::Recovered(t) => t.end,
            Tree::Group(g) => g
                .close
                .map(|c| c.end)
                .or_else(|| g.children.last().map(Tree::end))
                .unwrap_or(g.open.end),
        }
    }
}

/// Parses a significant-token slice (no whitespace or comments; see
/// [`significant`]) into a forest of delimiter-matched trees.
pub fn parse(sig: &[Token], src: &[u8]) -> Vec<Tree> {
    let mut pos = 0usize;
    let trees = parse_children(sig, src, &mut pos, None);
    debug_assert_eq!(pos, sig.len());
    trees
}

/// Filters a full lexer stream down to the tokens the grammar sees.
pub fn significant(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .copied()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect()
}

/// Parses children until `until` closes (or input ends). A closer that
/// does not match `until` is handled by recovery: when it matches an
/// *enclosing* open delimiter the current group ends unterminated (the
/// closer is left for the parent); when it matches nothing open it
/// becomes a flat [`Tree::Recovered`] node.
fn parse_children(sig: &[Token], src: &[u8], pos: &mut usize, until: Option<Delim>) -> Vec<Tree> {
    let mut children = Vec::new();
    while *pos < sig.len() {
        let tok = sig[*pos];
        let byte = tok.text(src).first().copied().unwrap_or(0);
        if tok.kind == TokenKind::Punct {
            if let Some(delim) = Delim::close(byte) {
                if Some(delim) == until {
                    // Our closer: the caller consumes it.
                    return children;
                }
                // A closer for someone else. Leave it for an enclosing
                // group that opened it; otherwise swallow it flat.
                if until.is_some() {
                    return children;
                }
                *pos += 1;
                children.push(Tree::Recovered(tok));
                continue;
            }
            if let Some(delim) = Delim::open(byte) {
                *pos += 1;
                let inner = parse_children(sig, src, pos, Some(delim));
                let close = match sig.get(*pos) {
                    Some(&c)
                        if c.kind == TokenKind::Punct
                            && Delim::close(c.text(src).first().copied().unwrap_or(0))
                                == Some(delim) =>
                    {
                        *pos += 1;
                        Some(c)
                    }
                    _ => None,
                };
                children.push(Tree::Group(Group {
                    delim,
                    open: tok,
                    close,
                    children: inner,
                }));
                continue;
            }
        }
        *pos += 1;
        children.push(Tree::Leaf(tok));
    }
    children
}

/// Flattens a forest back to its significant tokens, in source order.
pub fn flatten(trees: &[Tree]) -> Vec<Token> {
    let mut out = Vec::new();
    flatten_into(trees, &mut out);
    out
}

fn flatten_into(trees: &[Tree], out: &mut Vec<Token>) {
    for tree in trees {
        match tree {
            Tree::Leaf(t) | Tree::Recovered(t) => out.push(*t),
            Tree::Group(g) => {
                out.push(g.open);
                flatten_into(&g.children, out);
                if let Some(close) = g.close {
                    out.push(close);
                }
            }
        }
    }
}

/// What an extracted [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free function, method, or nested fn).
    Fn,
    /// An `impl` block (`name` is the implemented type).
    Impl,
    /// A `mod` with or without an inline body.
    Mod,
    /// A `use` declaration (`name` is the imported path text).
    Use,
}

/// An item's visibility, as far as the linter distinguishes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One extracted item: kind, name, scope, visibility, byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// The item's own name (`fn` name, `impl` type, `mod` name, `use`
    /// path text).
    pub name: String,
    /// Enclosing scope segments (module names, impl type names, outer
    /// fn names), outermost first.
    pub scope: Vec<String>,
    /// Visibility qualifier.
    pub vis: Visibility,
    /// Byte offset where the item's keyword starts.
    pub start: usize,
    /// Byte offset one past the item's end (`;` or closing brace).
    pub end: usize,
    /// Byte offset of the item's name token (for line/col reporting).
    pub name_offset: usize,
}

impl Item {
    /// `scope::name`, the crate-relative qualified name.
    pub fn qualified(&self) -> String {
        if self.scope.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.scope.join("::"), self.name)
        }
    }
}

/// Extracts `fn`/`impl`/`mod`/`use` items from a parsed forest, with
/// scope-qualified names. Traversal enters every brace group (mod and
/// impl bodies contribute scope segments; struct/enum/trait bodies and
/// fn bodies are walked too so nested items are found).
pub fn items(trees: &[Tree], src: &[u8]) -> Vec<Item> {
    let mut out = Vec::new();
    let mut scope = Vec::new();
    walk_items(trees, src, &mut scope, &mut out, &mut |_, _, _| {});
    out
}

/// Like [`items`], but also hands each `fn` item's signature trees
/// (everything between the name and the body) and its body group (when
/// it has one) to `on_fn` — the hook the call-graph layer builds on.
pub fn visit_fns<F>(trees: &[Tree], src: &[u8], mut on_fn: F) -> Vec<Item>
where
    F: FnMut(&Item, &[Tree], Option<&Group>),
{
    let mut out = Vec::new();
    let mut scope = Vec::new();
    walk_items(trees, src, &mut scope, &mut out, &mut on_fn);
    out
}

fn ident_of<'a>(tree: &Tree, src: &'a [u8]) -> Option<&'a [u8]> {
    match tree {
        Tree::Leaf(t) if t.kind == TokenKind::Ident => Some(t.text(src)),
        _ => None,
    }
}

fn punct_of(tree: &Tree, src: &[u8]) -> Option<u8> {
    match tree {
        Tree::Leaf(t) if t.kind == TokenKind::Punct => t.text(src).first().copied(),
        _ => None,
    }
}

/// The `fn`-item callback threaded through the item walk: the extracted
/// item, its signature trees (between name and body), and its body
/// group (`None` for bodyless declarations).
type FnVisitor<'a> = dyn FnMut(&Item, &[Tree], Option<&Group>) + 'a;

fn walk_items(
    trees: &[Tree],
    src: &[u8],
    scope: &mut Vec<String>,
    out: &mut Vec<Item>,
    on_fn: &mut FnVisitor<'_>,
) {
    let mut i = 0usize;
    while i < trees.len() {
        let Some(word) = ident_of(&trees[i], src) else {
            // Descend into stray groups (match arms, blocks) so nested
            // items are still discovered.
            if let Tree::Group(g) = &trees[i] {
                walk_items(&g.children, src, scope, out, on_fn);
            }
            i += 1;
            continue;
        };
        match word {
            b"fn" => i = item_fn(trees, src, i, scope, out, on_fn),
            b"mod" => i = item_mod(trees, src, i, scope, out, on_fn),
            b"impl" => i = item_impl(trees, src, i, scope, out, on_fn),
            b"trait" => i = item_scope_block(trees, src, i, scope, out, on_fn),
            b"use" => i = item_use(trees, src, i, scope, out),
            _ => i += 1,
        }
    }
}

/// The visibility governing the item whose keyword sits at `kw`:
/// looks back for a `pub` leaf (optionally followed by a paren group)
/// immediately preceding, skipping `unsafe`/`const`/`async`/`extern`
/// qualifiers and an `extern "abi"` string.
fn visibility_before(trees: &[Tree], src: &[u8], kw: usize) -> (Visibility, usize) {
    let mut j = kw;
    while j > 0 {
        let prev = &trees[j - 1];
        match prev {
            Tree::Leaf(t)
                if t.kind == TokenKind::Ident
                    && matches!(
                        t.text(src),
                        b"unsafe" | b"const" | b"async" | b"extern" | b"default"
                    ) =>
            {
                j -= 1;
            }
            Tree::Leaf(t) if t.kind == TokenKind::Str => j -= 1, // extern "C"
            _ => break,
        }
    }
    if j > 0 {
        if let Some(b"pub") = ident_of(&trees[j - 1], src) {
            return (Visibility::Pub, j - 1);
        }
    }
    if j > 1 {
        if let (Some(b"pub"), Tree::Group(g)) = (ident_of(&trees[j - 2], src), &trees[j - 1]) {
            if g.delim == Delim::Paren {
                return (Visibility::Restricted, j - 2);
            }
        }
    }
    (Visibility::Private, j)
}

/// Scans forward from `from` for the item's body brace group or a
/// terminating `;`, returning `(index past the item, body group)`.
fn body_or_semi<'a>(trees: &'a [Tree], src: &[u8], from: usize) -> (usize, Option<&'a Group>) {
    let mut j = from;
    while j < trees.len() {
        match &trees[j] {
            Tree::Group(g) if g.delim == Delim::Brace => return (j + 1, Some(g)),
            Tree::Leaf(t) if t.kind == TokenKind::Punct && t.text(src) == b";" => {
                return (j + 1, None)
            }
            _ => j += 1,
        }
    }
    (j, None)
}

fn item_fn(
    trees: &[Tree],
    src: &[u8],
    kw: usize,
    scope: &mut Vec<String>,
    out: &mut Vec<Item>,
    on_fn: &mut FnVisitor<'_>,
) -> usize {
    let Some(name_tok) = trees.get(kw + 1).and_then(|t| match t {
        Tree::Leaf(t) if t.kind == TokenKind::Ident => Some(*t),
        _ => None,
    }) else {
        return kw + 1;
    };
    let (vis, vis_at) = visibility_before(trees, src, kw);
    let (next, body) = body_or_semi(trees, src, kw + 2);
    // The signature trees: everything between the fn name and the body
    // group (or terminating `;`) — generics, params, return type.
    let ends_with_semi = body.is_none()
        && trees
            .get(next.wrapping_sub(1))
            .is_some_and(|t| matches!(t, Tree::Leaf(t) if t.text(src) == b";"));
    let header_end = if body.is_some() || ends_with_semi {
        next.saturating_sub(1)
    } else {
        next
    };
    let header = trees.get(kw + 2..header_end).unwrap_or(&[]);
    let item = Item {
        kind: ItemKind::Fn,
        name: String::from_utf8_lossy(name_tok.text(src)).into_owned(),
        scope: scope.clone(),
        vis,
        start: trees[vis_at].start(),
        end: trees
            .get(next.saturating_sub(1))
            .map_or(name_tok.end, Tree::end),
        name_offset: name_tok.start,
    };
    on_fn(&item, header, body);
    // Nested fns inside this body are qualified under the fn's name.
    if let Some(body) = body {
        scope.push(item.name.clone());
        walk_items(&body.children, src, scope, out, on_fn);
        scope.pop();
    }
    out.push(item);
    next
}

fn item_mod(
    trees: &[Tree],
    src: &[u8],
    kw: usize,
    scope: &mut Vec<String>,
    out: &mut Vec<Item>,
    on_fn: &mut FnVisitor<'_>,
) -> usize {
    let Some(name_tok) = trees.get(kw + 1).and_then(|t| match t {
        Tree::Leaf(t) if t.kind == TokenKind::Ident => Some(*t),
        _ => None,
    }) else {
        return kw + 1;
    };
    let (vis, vis_at) = visibility_before(trees, src, kw);
    let (next, body) = body_or_semi(trees, src, kw + 2);
    let name = String::from_utf8_lossy(name_tok.text(src)).into_owned();
    if let Some(body) = body {
        scope.push(name.clone());
        walk_items(&body.children, src, scope, out, on_fn);
        scope.pop();
    }
    out.push(Item {
        kind: ItemKind::Mod,
        name,
        scope: scope.clone(),
        vis,
        start: trees[vis_at].start(),
        end: trees
            .get(next.saturating_sub(1))
            .map_or(name_tok.end, Tree::end),
        name_offset: name_tok.start,
    });
    next
}

/// `impl<T> Type { ... }` / `impl Trait for Type { ... }`: the scope
/// segment is the *implemented type* — the first ident after `for` when
/// present, else the first ident after the (possibly generic-bracketed)
/// `impl`.
fn item_impl(
    trees: &[Tree],
    src: &[u8],
    kw: usize,
    scope: &mut Vec<String>,
    out: &mut Vec<Item>,
    on_fn: &mut FnVisitor<'_>,
) -> usize {
    let (next, body) = body_or_semi(trees, src, kw + 1);
    // Tokens of the impl header: kw+1 .. body index.
    let header_end = next.saturating_sub(1);
    let mut type_name: Option<(String, usize)> = None;
    let mut after_for: Option<(String, usize)> = None;
    let mut saw_for = false;
    let mut angle_depth = 0i32;
    for tree in trees.iter().take(header_end).skip(kw + 1) {
        match punct_of(tree, src) {
            Some(b'<') => angle_depth += 1,
            Some(b'>') => angle_depth = (angle_depth - 1).max(0),
            _ => {}
        }
        if let Some(word) = ident_of(tree, src) {
            if word == b"for" {
                saw_for = true;
                continue;
            }
            if angle_depth > 0 || matches!(word, b"dyn" | b"where" | b"unsafe" | b"const") {
                continue;
            }
            let name = String::from_utf8_lossy(word).into_owned();
            if saw_for {
                if after_for.is_none() {
                    after_for = Some((name, tree.start()));
                }
            } else if type_name.is_none() {
                type_name = Some((name, tree.start()));
            } else {
                // Later segments of a path type (`wire::Snapshot`):
                // keep the last segment before the body.
                type_name = Some((name, tree.start()));
            }
        }
    }
    let (name, name_offset) = after_for
        .or(type_name)
        .unwrap_or_else(|| (String::from("impl"), trees[kw].start()));
    if let Some(body) = body {
        scope.push(name.clone());
        walk_items(&body.children, src, scope, out, on_fn);
        scope.pop();
    }
    out.push(Item {
        kind: ItemKind::Impl,
        name,
        scope: scope.clone(),
        vis: Visibility::Private,
        start: trees[kw].start(),
        end: trees.get(header_end).map_or(trees[kw].end(), Tree::end),
        name_offset,
    });
    next
}

/// `trait Name { ... }`: not itself an extracted item kind, but default
/// methods inside get the trait name as a scope segment.
fn item_scope_block(
    trees: &[Tree],
    src: &[u8],
    kw: usize,
    scope: &mut Vec<String>,
    out: &mut Vec<Item>,
    on_fn: &mut FnVisitor<'_>,
) -> usize {
    let name = trees
        .get(kw + 1)
        .and_then(|t| ident_of(t, src))
        .map(|w| String::from_utf8_lossy(w).into_owned());
    let (next, body) = body_or_semi(trees, src, kw + 2);
    if let Some(body) = body {
        let pushed = name.is_some();
        if let Some(name) = name {
            scope.push(name);
        }
        walk_items(&body.children, src, scope, out, on_fn);
        if pushed {
            scope.pop();
        }
    }
    next
}

fn item_use(trees: &[Tree], src: &[u8], kw: usize, scope: &[String], out: &mut Vec<Item>) -> usize {
    let (vis, vis_at) = visibility_before(trees, src, kw);
    let mut j = kw + 1;
    let mut path = String::new();
    while j < trees.len() {
        match &trees[j] {
            Tree::Leaf(t) if t.kind == TokenKind::Punct && t.text(src) == b";" => {
                j += 1;
                break;
            }
            Tree::Leaf(t) => {
                path.push_str(&String::from_utf8_lossy(t.text(src)));
                j += 1;
            }
            Tree::Group(g) => {
                // `use a::{b, c};` — keep the brace text verbatim.
                path.push('{');
                for t in flatten(&g.children) {
                    path.push_str(&String::from_utf8_lossy(t.text(src)));
                }
                path.push('}');
                j += 1;
            }
            Tree::Recovered(_) => {
                j += 1;
                break;
            }
        }
    }
    out.push(Item {
        kind: ItemKind::Use,
        name: path,
        scope: scope.to_owned(),
        vis,
        start: trees[vis_at].start(),
        end: trees.get(j - 1).map_or(trees[kw].end(), Tree::end),
        name_offset: trees[kw].start(),
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn forest(src: &str) -> (Vec<Tree>, Vec<Token>) {
        let tokens = lex(src.as_bytes());
        let sig = significant(&tokens);
        (parse(&sig, src.as_bytes()), sig)
    }

    #[test]
    fn groups_match_and_tile() {
        let src = "fn f(a: u8) -> Vec<u8> { g(a); [1, 2] }";
        let (trees, sig) = forest(src);
        assert_eq!(flatten(&trees), sig);
        // Top level: fn, f, (..), -, >, Vec, <, u8, >, {..}
        let braces = trees
            .iter()
            .filter(|t| matches!(t, Tree::Group(g) if g.delim == Delim::Brace))
            .count();
        assert_eq!(braces, 1);
    }

    #[test]
    fn unclosed_group_recovers() {
        let src = "fn f() { g(";
        let (trees, sig) = forest(src);
        assert_eq!(flatten(&trees), sig);
        let Some(Tree::Group(body)) = trees
            .iter()
            .find(|t| matches!(t, Tree::Group(g) if g.delim == Delim::Brace))
        else {
            panic!("no body group");
        };
        assert!(body.close.is_none());
    }

    #[test]
    fn orphan_closer_is_flat() {
        let src = ") fn f() {}";
        let (trees, sig) = forest(src);
        assert_eq!(flatten(&trees), sig);
        assert!(matches!(trees[0], Tree::Recovered(_)));
    }

    #[test]
    fn mismatched_closer_ends_inner_group() {
        // `( ]` — the `]` closes nothing; `(` runs unterminated.
        let src = "a ( b ] c";
        let (trees, sig) = forest(src);
        assert_eq!(flatten(&trees), sig);
    }

    fn named(items: &[Item], kind: ItemKind) -> Vec<String> {
        items
            .iter()
            .filter(|i| i.kind == kind)
            .map(Item::qualified)
            .collect()
    }

    #[test]
    fn extracts_fns_with_scope_and_visibility() {
        let src = r#"
mod inner {
    pub fn api() { helper(); }
    fn helper() {}
}
pub struct S;
impl S {
    pub fn method(&self) {}
    fn private(&self) {}
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
pub(crate) fn crate_fn() {}
use std::collections::BTreeMap;
"#;
        let (trees, _) = forest(src);
        let all = items(&trees, src.as_bytes());
        let fns = named(&all, ItemKind::Fn);
        assert!(fns.contains(&"inner::api".to_owned()), "{fns:?}");
        assert!(fns.contains(&"inner::helper".to_owned()));
        assert!(fns.contains(&"S::method".to_owned()));
        assert!(fns.contains(&"S::private".to_owned()));
        assert!(fns.contains(&"S::fmt".to_owned()), "{fns:?}");
        assert!(fns.contains(&"crate_fn".to_owned()));
        let api = all.iter().find(|i| i.name == "api").unwrap();
        assert_eq!(api.vis, Visibility::Pub);
        let helper = all.iter().find(|i| i.name == "helper").unwrap();
        assert_eq!(helper.vis, Visibility::Private);
        let crate_fn = all.iter().find(|i| i.name == "crate_fn").unwrap();
        assert_eq!(crate_fn.vis, Visibility::Restricted);
        let uses = named(&all, ItemKind::Use);
        assert_eq!(uses, vec!["std::collections::BTreeMap"]);
        let mods = named(&all, ItemKind::Mod);
        assert_eq!(mods, vec!["inner"]);
    }

    #[test]
    fn impl_with_generics_names_the_type() {
        let src = "impl<T: Clone> Holder<T> { fn get(&self) {} }";
        let (trees, _) = forest(src);
        let all = items(&trees, src.as_bytes());
        let fns = named(&all, ItemKind::Fn);
        assert_eq!(fns, vec!["Holder::get"]);
    }

    #[test]
    fn nested_fn_is_scoped_under_outer() {
        let src = "fn outer() { fn inner() {} }";
        let (trees, _) = forest(src);
        let all = items(&trees, src.as_bytes());
        let fns = named(&all, ItemKind::Fn);
        assert!(fns.contains(&"outer".to_owned()));
        assert!(fns.contains(&"outer::inner".to_owned()));
    }

    #[test]
    fn trait_default_methods_are_scoped() {
        let src = "pub trait Source { fn shard(&self) -> u32 { fallback() } }";
        let (trees, _) = forest(src);
        let all = items(&trees, src.as_bytes());
        assert_eq!(named(&all, ItemKind::Fn), vec!["Source::shard"]);
    }

    #[test]
    fn visit_fns_hands_over_bodies() {
        let src = "fn a(x: u8) -> u8 { x } fn b();";
        let (trees, _) = forest(src);
        let mut seen = Vec::new();
        visit_fns(&trees, src.as_bytes(), |item, header, body| {
            seen.push((item.name.clone(), header.len(), body.is_some()));
        });
        // a's header: the param group plus `-`, `>`, `u8`.
        assert_eq!(
            seen,
            vec![("a".to_owned(), 4, true), ("b".to_owned(), 1, false)]
        );
    }

    #[test]
    fn arbitrary_garbage_does_not_panic() {
        for src in ["", "}}}", "((((", "fn", "impl", "use ;", "mod {", "pub"] {
            let (trees, sig) = forest(src);
            assert_eq!(flatten(&trees), sig);
            let _ = items(&trees, src.as_bytes());
        }
    }
}
