//! A hand-rolled Rust lexer over raw bytes.
//!
//! The linter's rules are token-level, so this lexer only has to be
//! right about the things that would make a text search lie: comments,
//! string literals (including raw strings with arbitrary `#` fences and
//! byte variants), char literals vs. lifetimes, and nested block
//! comments. It does not parse; it produces a flat stream of
//! byte-range [`Token`]s that exactly tile the input.
//!
//! Guarantees (property-tested in `tests/lexer_props.rs`):
//!
//! - never panics, on any byte string (valid UTF-8 or not);
//! - tokens are contiguous and cover the whole input: concatenating
//!   `src[t.start..t.end]` over all tokens reproduces `src` byte for
//!   byte;
//! - every token is non-empty.
//!
//! Unterminated literals and comments extend to end of input rather
//! than erroring: the linter's job is to scan code that `rustc`
//! already accepted, so recovery only has to be non-destructive.

/// What a [`Token`] is. Keywords are not distinguished from other
/// identifiers; rules match on identifier text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `r#match`).
    Ident,
    /// Lifetime or loop label, quote included (`'a`, `'static`).
    Lifetime,
    /// Numeric literal, suffix included (`0x1f`, `1.5e-3`, `8u64`).
    Number,
    /// `"..."` or `b"..."` string literal, quotes included.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##` raw string literal.
    RawStr,
    /// `'a'`, `'\n'`, or `b'a'` character literal.
    Char,
    /// `// ...` comment, up to but not including the newline.
    LineComment,
    /// `/* ... */` comment, nesting respected.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, ...).
    Punct,
    /// A run of ASCII whitespace.
    Whitespace,
    /// Bytes the lexer cannot classify (e.g. non-ASCII outside
    /// literals). Grouped into maximal runs.
    Unknown,
}

/// One lexed token: a kind plus the half-open byte range it occupies
/// in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// The token's text, as a byte slice of `src`. Returns an empty
    /// slice rather than panicking if the token does not belong to
    /// `src`.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(&[])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c)
}

/// Lexes `src` into a complete, contiguous token stream.
pub fn lex(src: &[u8]) -> Vec<Token> {
    Lexer { src, pos: 0 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let kind = self.next_kind();
            // Defensive: every arm advances, but a zero-width token
            // would loop forever, so force progress.
            if self.pos == start {
                self.pos += 1;
            }
            tokens.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.src.len());
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = match self.peek(0) {
            Some(b) => b,
            None => return TokenKind::Unknown,
        };
        match b {
            _ if is_space(b) => {
                while self.peek(0).is_some_and(is_space) {
                    self.bump(1);
                }
                TokenKind::Whitespace
            }
            b'/' => match self.peek(1) {
                Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump(1);
                    }
                    TokenKind::LineComment
                }
                Some(b'*') => self.block_comment(),
                _ => {
                    self.bump(1);
                    TokenKind::Punct
                }
            },
            b'"' => self.quoted_string(),
            b'b' => match (self.peek(1), self.peek(2)) {
                (Some(b'"'), _) => {
                    self.bump(1);
                    self.quoted_string()
                }
                (Some(b'\''), _) => {
                    self.bump(1);
                    self.char_literal()
                }
                (Some(b'r'), Some(b'"' | b'#')) => {
                    self.bump(1);
                    self.raw_string_or_ident()
                }
                _ => self.ident(),
            },
            b'r' => match self.peek(1) {
                Some(b'"' | b'#') => self.raw_string_or_ident(),
                _ => self.ident(),
            },
            b'\'' => self.char_or_lifetime(),
            _ if b.is_ascii_digit() => self.number(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii() => {
                self.bump(1);
                TokenKind::Punct
            }
            _ => {
                while self.peek(0).is_some_and(|c| !c.is_ascii()) {
                    self.bump(1);
                }
                TokenKind::Unknown
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(1);
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Digits, underscores, radix prefixes and type suffixes all
        // fall under "alphanumeric or `_`"; a `.` joins the literal
        // only when a digit follows (so `1..2` stays two numbers and
        // two dots), and an exponent sign only directly after e/E.
        while let Some(c) = self.peek(0) {
            let joins = c.is_ascii_alphanumeric()
                || c == b'_'
                || (c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == b'+' || c == b'-')
                    && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !joins {
                break;
            }
            self.bump(1);
        }
        TokenKind::Number
    }

    fn block_comment(&mut self) -> TokenKind {
        // Rust block comments nest; an unterminated comment runs to
        // end of input.
        self.bump(2);
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump(2);
                }
                _ => self.bump(1),
            }
        }
        TokenKind::BlockComment
    }

    /// Consumes a `"..."` string starting at the opening quote.
    fn quoted_string(&mut self) -> TokenKind {
        self.bump(1);
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump(2),
                b'"' => {
                    self.bump(1);
                    break;
                }
                _ => self.bump(1),
            }
        }
        TokenKind::Str
    }

    /// At an `r` that might open a raw string (`r"`, `r#"`) or a raw
    /// identifier (`r#match`). Any other shape falls back to lexing
    /// the `r` as a plain identifier.
    fn raw_string_or_ident(&mut self) -> TokenKind {
        let r_pos = self.pos;
        let mut hashes = 0usize;
        while self.src.get(r_pos + 1 + hashes) == Some(&b'#') {
            hashes += 1;
        }
        match self.src.get(r_pos + 1 + hashes) {
            Some(b'"') => {
                self.bump(1 + hashes + 1);
                // Scan for `"` followed by `hashes` hashes.
                while self.pos < self.src.len() {
                    if self.peek(0) == Some(b'"')
                        && (0..hashes).all(|i| self.src.get(self.pos + 1 + i) == Some(&b'#'))
                    {
                        self.bump(1 + hashes);
                        return TokenKind::RawStr;
                    }
                    self.bump(1);
                }
                TokenKind::RawStr
            }
            Some(&c) if hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#match`.
                self.bump(2);
                self.ident()
            }
            _ => self.ident(),
        }
    }

    /// Consumes a char literal starting at the opening quote.
    fn char_literal(&mut self) -> TokenKind {
        self.bump(1);
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump(2),
                b'\'' => {
                    self.bump(1);
                    break;
                }
                b'\n' => break,
                _ => self.bump(1),
            }
        }
        TokenKind::Char
    }

    /// At a `'`: decide between a char literal and a lifetime. The
    /// rule mirrors rustc's: `'` + escape is always a char; otherwise
    /// an identifier-ish run closed by `'` is a char, and an
    /// identifier-ish run not closed by `'` is a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(),
            Some(b'\'') => {
                // `''`: empty (invalid) char literal; consume both.
                self.bump(2);
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                let mut len = 1;
                while self
                    .src
                    .get(self.pos + 1 + len)
                    .copied()
                    .is_some_and(is_ident_continue)
                {
                    len += 1;
                }
                if self.src.get(self.pos + 1 + len) == Some(&b'\'') {
                    self.bump(1 + len + 1);
                    TokenKind::Char
                } else {
                    self.bump(1 + len);
                    TokenKind::Lifetime
                }
            }
            Some(c) if !c.is_ascii() => {
                // A multi-byte UTF-8 scalar like 'é': char if closed.
                let mut len = 1;
                while self
                    .src
                    .get(self.pos + 1 + len)
                    .is_some_and(|b| !b.is_ascii())
                {
                    len += 1;
                }
                if self.src.get(self.pos + 1 + len) == Some(&b'\'') {
                    self.bump(1 + len + 1);
                    TokenKind::Char
                } else {
                    self.bump(1);
                    TokenKind::Punct
                }
            }
            // `'x'` where x is a digit or symbol byte.
            Some(c) if self.src.get(self.pos + 2) == Some(&b'\'') && c != b'\n' => {
                self.bump(3);
                TokenKind::Char
            }
            Some(_) => {
                self.bump(1);
                TokenKind::Punct
            }
            None => {
                self.bump(1);
                TokenKind::Punct
            }
        }
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs. Columns count
/// bytes from the start of the line, which matches how `rustc` reports
/// ASCII source and keeps the mapping total for arbitrary bytes.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &[u8]) -> Self {
        let mut line_starts = vec![0];
        for (i, &b) in src.iter().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { line_starts }
    }

    /// The 1-based `(line, column)` of byte `offset`. Offsets past the
    /// end of input map to the end of the last line.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col as u32 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| {
                (
                    t.kind,
                    std::str::from_utf8(t.text(src.as_bytes())).unwrap_or("<bin>"),
                )
            })
            .collect()
    }

    fn sig(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| !matches!(k, TokenKind::Whitespace))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            sig("x.unwrap()"),
            vec![
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "unwrap"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn comments_hide_their_contents() {
        let toks = sig("a // unwrap()\n/* panic! /* nested */ */ b");
        assert_eq!(toks[0], (TokenKind::Ident, "a"));
        assert_eq!(toks[1], (TokenKind::LineComment, "// unwrap()"));
        assert_eq!(toks[2].0, TokenKind::BlockComment);
        assert_eq!(toks[3], (TokenKind::Ident, "b"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = sig(r##"f("unwrap()", r#"panic!"#, b"x")"##);
        let lit_kinds: Vec<TokenKind> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Str | TokenKind::RawStr))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(
            lit_kinds,
            vec![TokenKind::Str, TokenKind::RawStr, TokenKind::Str]
        );
        assert!(!toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && (*s == "unwrap" || *s == "panic")));
    }

    #[test]
    fn raw_string_fences() {
        assert_eq!(
            sig(r##"r#"a"b"#"##),
            vec![(TokenKind::RawStr, r##"r#"a"b"#"##)]
        );
        assert_eq!(sig(r#"r"plain""#), vec![(TokenKind::RawStr, r#"r"plain""#)]);
        assert_eq!(
            sig("br#\"bytes\"#"),
            vec![(TokenKind::RawStr, "br#\"bytes\"#")]
        );
    }

    #[test]
    fn raw_identifier_is_ident() {
        assert_eq!(sig("r#match"), vec![(TokenKind::Ident, "r#match")]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(
            sig("'a' 'x: &'static str '\\n' ''"),
            vec![
                (TokenKind::Char, "'a'"),
                (TokenKind::Lifetime, "'x"),
                (TokenKind::Punct, ":"),
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Ident, "str"),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Char, "''"),
            ]
        );
    }

    #[test]
    fn quote_in_char_does_not_open_string() {
        // A naive scanner would treat the `'"'` as opening a string
        // and swallow the rest of the file.
        assert_eq!(
            sig(r#"split('"').unwrap()"#)
                .iter()
                .filter(|(k, s)| *k == TokenKind::Ident && *s == "unwrap")
                .count(),
            1
        );
    }

    #[test]
    fn numbers_stay_whole() {
        assert_eq!(
            sig("0x1f 1.5e-3 8u64 1..2"),
            vec![
                (TokenKind::Number, "0x1f"),
                (TokenKind::Number, "1.5e-3"),
                (TokenKind::Number, "8u64"),
                (TokenKind::Number, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "2"),
            ]
        );
    }

    #[test]
    fn tokens_tile_the_input() {
        let src = "fn main() { let s = \"\\\"q\"; } // done\n".as_bytes();
        let toks = lex(src);
        let mut rebuilt = Vec::new();
        for t in &toks {
            assert!(t.start < t.end, "empty token {t:?}");
            rebuilt.extend_from_slice(t.text(src));
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b\"open"] {
            let toks = lex(src.as_bytes());
            assert_eq!(
                toks.iter().map(|t| t.end - t.start).sum::<usize>(),
                src.len()
            );
        }
    }

    #[test]
    fn line_index_round_trip() {
        let src = b"ab\ncd\n\nx";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(4), (2, 2));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_col(800), (4, 794));
    }
}
