//! The committed `lint.toml` configuration: which paths are scanned
//! and where each rule applies.
//!
//! The workspace is offline (no crates-io), so this is a hand-rolled
//! parser for the small TOML subset the config actually uses:
//!
//! ```toml
//! # Paths never scanned (prefix patterns, `*` matches one segment).
//! exclude = ["vendor/", "crates/lint/tests/fixtures/"]
//!
//! [rules.no-panic-in-lib]
//! # The rule does not run under these paths.
//! skip = ["tests/", "crates/*/tests/"]
//!
//! [rules.no-unordered-iter]
//! # The rule runs ONLY under these paths (empty/absent = everywhere).
//! only = ["crates/obs/", "crates/core/"]
//!
//! [rules.no-wall-clock]
//! enabled = true
//! ```
//!
//! Supported syntax: comments, bare `key = value` pairs, `[rules.<name>]`
//! sections, string values, booleans, and (possibly multi-line) arrays
//! of strings. Anything else is a [`ConfigError`], reported with its
//! line number — a config typo must fail the lint run loudly (exit 2),
//! never silently scan the wrong set of files.

use std::collections::BTreeMap;
use std::fmt;

/// Where one rule applies. Paths are workspace-relative with `/`
/// separators; see [`path_matches`] for pattern semantics.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// The rule does not run for paths matching any of these.
    pub skip: Vec<String>,
    /// Non-empty: the rule runs only for paths matching one of these.
    pub only: Vec<String>,
    /// `false` disables the rule outright.
    pub enabled: bool,
}

impl RuleScope {
    /// A scope that applies everywhere.
    pub fn everywhere() -> Self {
        Self {
            skip: Vec::new(),
            only: Vec::new(),
            enabled: true,
        }
    }

    /// Whether the rule should run on `rel_path`.
    pub fn applies_to(&self, rel_path: &str) -> bool {
        if !self.enabled {
            return false;
        }
        if !self.only.is_empty() && !self.only.iter().any(|p| path_matches(p, rel_path)) {
            return false;
        }
        !self.skip.iter().any(|p| path_matches(p, rel_path))
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Paths never scanned at all (on top of the built-in `target/`,
    /// `.git/` skips).
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleScope>,
}

impl LintConfig {
    /// The scope for `rule`, defaulting to everywhere when the config
    /// has no section for it.
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rules
            .get(rule)
            .cloned()
            .unwrap_or_else(RuleScope::everywhere)
    }

    /// Whether `rel_path` is globally excluded from scanning.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_matches(p, rel_path))
    }
}

/// A malformed `lint.toml`, with the 1-based line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Matches a workspace-relative path (always `/`-separated) against a
/// config pattern:
///
/// - a trailing `/` makes the pattern a directory prefix (`crates/obs/`
///   matches everything under that directory);
/// - `*` matches any run of characters within one path segment
///   (`crates/*/tests/` matches each crate's `tests/` directory);
/// - otherwise the pattern must match the full path exactly.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    let (dir_prefix, pattern) = match pattern.strip_suffix('/') {
        Some(p) => (true, p),
        None => (false, pattern),
    };
    let pat_segs: Vec<&str> = pattern.split('/').collect();
    let path_segs: Vec<&str> = path.split('/').collect();
    if dir_prefix {
        path_segs.len() > pat_segs.len()
            && pat_segs
                .iter()
                .zip(&path_segs)
                .all(|(p, s)| segment_matches(p, s))
    } else {
        path_segs.len() == pat_segs.len()
            && pat_segs
                .iter()
                .zip(&path_segs)
                .all(|(p, s)| segment_matches(p, s))
    }
}

/// Matches one path segment against a pattern segment where each `*`
/// matches any (possibly empty) run of non-`/` characters.
fn segment_matches(pattern: &str, segment: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == segment;
    }
    let mut rest = segment;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            rest = match rest.strip_prefix(part) {
                Some(r) => r,
                None => return false,
            };
        } else if i == parts.len() - 1 {
            return part.is_empty() || rest.ends_with(part);
        } else if !part.is_empty() {
            rest = match rest.find(part) {
                Some(at) => &rest[at + part.len()..],
                None => return false,
            };
        }
    }
    true
}

/// One parsed TOML value (the subset the config uses).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
}

/// Parses `lint.toml` source text.
pub fn parse(src: &str) -> Result<LintConfig, ConfigError> {
    let mut config = LintConfig::default();
    let mut section: Option<String> = None;
    let mut lines = src.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.strip_suffix(']').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unterminated section header `{raw}`"),
            })?;
            let rule = header.strip_prefix("rules.").ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unknown section `[{header}]` (expected `[rules.<name>]`)"),
            })?;
            config
                .rules
                .entry(rule.to_owned())
                .or_insert_with(RuleScope::everywhere);
            section = Some(rule.to_owned());
            continue;
        }
        let (key, value_src) = line.split_once('=').ok_or_else(|| ConfigError {
            line: line_no,
            message: format!("expected `key = value`, got `{line}`"),
        })?;
        let key = key.trim();
        // Multi-line arrays: accumulate until the bracket closes
        // outside a string literal.
        let mut value_text = value_src.trim().to_owned();
        while value_text.starts_with('[') && !array_closed(&value_text) {
            let (_, next_raw) = lines.next().ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unterminated array for key `{key}`"),
            })?;
            value_text.push(' ');
            value_text.push_str(strip_comment(next_raw).trim());
        }
        let value = parse_value(&value_text, line_no)?;
        apply(&mut config, section.as_deref(), key, value, line_no)?;
    }
    Ok(config)
}

/// Removes a `#` comment, respecting `"` string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether `text` (starting with `[`) contains its matching `]`
/// outside any string literal.
fn array_closed(text: &str) -> bool {
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_value(text: &str, line: u32) -> Result<Value, ConfigError> {
    let text = text.trim();
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ConfigError {
            line,
            message: "unterminated array".to_owned(),
        })?;
        let mut items = Vec::new();
        for item in split_array_items(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError {
                        line,
                        message: format!("array items must be strings, got `{item}`"),
                    })
                }
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or_else(|| ConfigError {
            line,
            message: format!("unterminated string `{text}`"),
        })?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(ConfigError {
                line,
                message: format!("escapes are not supported in config strings: `{text}`"),
            });
        }
        return Ok(Value::Str(inner.to_owned()));
    }
    Err(ConfigError {
        line,
        message: format!("unsupported value `{text}` (expected string, bool, or array)"),
    })
}

/// Splits array body text on commas that sit outside string literals.
fn split_array_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    items.push(current);
    items
}

fn apply(
    config: &mut LintConfig,
    section: Option<&str>,
    key: &str,
    value: Value,
    line: u32,
) -> Result<(), ConfigError> {
    let err = |message: String| ConfigError { line, message };
    match section {
        None => match (key, value) {
            ("exclude", Value::Array(items)) => {
                config.exclude = items;
                Ok(())
            }
            ("exclude", _) => Err(err("`exclude` must be an array of paths".to_owned())),
            _ => Err(err(format!("unknown top-level key `{key}`"))),
        },
        Some(rule) => {
            let scope = config
                .rules
                .entry(rule.to_owned())
                .or_insert_with(RuleScope::everywhere);
            match (key, value) {
                ("skip", Value::Array(items)) => {
                    scope.skip = items;
                    Ok(())
                }
                ("only", Value::Array(items)) => {
                    scope.only = items;
                    Ok(())
                }
                ("enabled", Value::Bool(b)) => {
                    scope.enabled = b;
                    Ok(())
                }
                ("skip" | "only", _) => Err(err(format!("`{key}` must be an array of paths"))),
                ("enabled", _) => Err(err("`enabled` must be a bool".to_owned())),
                _ => Err(err(format!("unknown rule key `{key}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_shape() {
        let src = r#"
# global
exclude = ["vendor/", "crates/lint/tests/fixtures/"]

[rules.no-panic-in-lib]
skip = [
    "tests/",          # integration tests
    "crates/*/tests/",
]

[rules.no-unordered-iter]
only = ["crates/obs/"]

[rules.no-wall-clock]
enabled = false
"#;
        let config = parse(src).expect("config parses");
        assert_eq!(config.exclude.len(), 2);
        let panic_scope = config.scope("no-panic-in-lib");
        assert!(panic_scope.applies_to("crates/core/src/pipeline.rs"));
        assert!(!panic_scope.applies_to("tests/fault_injection.rs"));
        assert!(!panic_scope.applies_to("crates/kb/tests/proptests.rs"));
        let iter_scope = config.scope("no-unordered-iter");
        assert!(iter_scope.applies_to("crates/obs/src/registry.rs"));
        assert!(!iter_scope.applies_to("crates/nlp/src/lexicon.rs"));
        assert!(!config
            .scope("no-wall-clock")
            .applies_to("crates/core/src/lib.rs"));
        // A rule with no section applies everywhere.
        assert!(config.scope("no-unseeded-rng").applies_to("anything.rs"));
        assert!(config.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!config.is_excluded("crates/lint/src/lexer.rs"));
    }

    #[test]
    fn pattern_semantics() {
        assert!(path_matches("crates/obs/", "crates/obs/src/lib.rs"));
        assert!(!path_matches("crates/obs/", "crates/obs"));
        assert!(path_matches(
            "crates/*/tests/",
            "crates/kb/tests/proptests.rs"
        ));
        assert!(!path_matches("crates/*/tests/", "crates/kb/src/tests.rs"));
        assert!(path_matches(
            "crates/*/src/bin/*.rs",
            "crates/bench/src/bin/repro.rs"
        ));
        assert!(path_matches("tests/", "tests/obs_report.rs"));
        assert!(!path_matches("tests/", "crates/kb/tests/x.rs"));
        assert!(path_matches("lint.toml", "lint.toml"));
        assert!(!path_matches("lint.toml", "sub/lint.toml"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("exclude = [\"a\"\n").expect_err("unterminated");
        assert_eq!(err.line, 1);
        let err = parse("\n\nbogus\n").expect_err("no equals");
        assert_eq!(err.line, 3);
        assert!(parse("[wrong]\n").is_err());
        assert!(parse("[rules.x]\nskip = true\n").is_err());
        assert!(parse("[rules.x]\nweird = \"v\"\n").is_err());
    }

    #[test]
    fn comments_and_multiline_arrays() {
        let src = "exclude = [ # trailing\n  \"a/\", # one\n  \"b/#not-a-comment\",\n]\n";
        let config = parse(src).expect("parses");
        assert_eq!(config.exclude, vec!["a/", "b/#not-a-comment"]);
    }
}
