//! The incremental-analysis cache.
//!
//! A lint run persists each file's [`FileScan`] (raw findings, pragmas,
//! flow summaries) under `artifacts/`, keyed on the file's content
//! hash. A warm run re-uses the stored scan for every unchanged file
//! and only re-lexes what actually changed; the graph phase then runs
//! over the mixed set, so flow rules stay whole-workspace-correct even
//! when almost nothing was re-read. The cache can only ever *skip
//! work*, never change results: a cold run and a warm run produce
//! byte-identical reports, which `scripts/verify.sh` asserts.
//!
//! Invalidation is whole-cache on any key mismatch: the cache format
//! version ([`CACHE_VERSION`]), the rule-set version
//! ([`crate::rules::RULESET_VERSION`]), and the lint-config hash must
//! all match, otherwise the file is discarded and the run proceeds
//! cold. A corrupt or truncated cache file is likewise discarded —
//! [`crate::json`] never panics on bad input. Hashes are FNV-1a-64
//! (dependency-free, stable across platforms) and serialize as hex
//! strings because JSON numbers cannot carry a full u64.

use crate::json::{self, Json};
use crate::output;
use crate::rules::{FileScan, Pragma, RULESET_VERSION};
use crate::{callgraph, output::json_string};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// On-disk cache format version.
pub const CACHE_VERSION: u32 = 1;

/// FNV-1a 64-bit: the same dependency-free hash the kb interner family
/// uses; stable across platforms and runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One cached file: its content hash and its full scan.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// FNV-1a-64 of the file's bytes at scan time.
    pub hash: u64,
    /// The scan results to reuse when the hash still matches.
    pub scan: FileScan,
}

/// The loaded cache: workspace-relative path → entry.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Entries by workspace-relative path.
    pub entries: BTreeMap<String, CacheEntry>,
}

/// Loads the cache at `path`, returning an empty cache when the file
/// is missing, corrupt, or keyed for a different (cache version,
/// rule-set version, config hash) triple.
pub fn load(path: &Path, config_hash: u64) -> Cache {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Cache::default();
    };
    let Ok(doc) = json::parse(&text) else {
        return Cache::default();
    };
    let key_matches = doc.get("version").and_then(Json::as_u32) == Some(CACHE_VERSION)
        && doc.get("ruleset_version").and_then(Json::as_u32) == Some(RULESET_VERSION)
        && doc.get("config_hash").and_then(Json::as_str) == Some(hex(config_hash).as_str());
    if !key_matches {
        return Cache::default();
    }
    let Some(files) = doc.get("files").and_then(Json::as_arr) else {
        return Cache::default();
    };
    let mut entries = BTreeMap::new();
    for item in files {
        let Some(entry) = entry_from_json(item) else {
            // One malformed entry poisons the whole cache: results
            // must never depend on which half of a corrupt file
            // happened to parse.
            return Cache::default();
        };
        entries.insert(entry.1, entry.0);
    }
    Cache { entries }
}

/// Writes the cache for this run. Creates the parent directory; errors
/// are returned so the caller can decide to ignore them (a read-only
/// checkout must not fail the lint gate).
pub fn store(
    path: &Path,
    config_hash: u64,
    entries: &BTreeMap<String, CacheEntry>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":{CACHE_VERSION},\"ruleset_version\":{RULESET_VERSION},\"config_hash\":\"{}\",\"files\":[",
        hex(config_hash)
    );
    for (i, (rel, entry)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        entry_to_json(&mut out, rel, entry);
    }
    out.push_str("]}\n");
    std::fs::write(path, out)
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

fn strings_json(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, s);
    }
    out.push(']');
}

/// Reads an optional string array: an absent key is the serializer's
/// encoding of "empty"; a present key must be a well-formed array.
fn strings_from_json(v: Option<&Json>) -> Option<Vec<String>> {
    let Some(v) = v else {
        return Some(Vec::new());
    };
    v.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_owned))
        .collect()
}

/// Reads an optional bool: absent means `false`.
fn flag_from_json(v: Option<&Json>) -> Option<bool> {
    match v {
        None => Some(false),
        Some(v) => v.as_bool(),
    }
}

/// Reads an optional element array: absent means empty.
fn list_from_json<'a, T>(
    v: Option<&'a Json>,
    item: impl Fn(&'a Json) -> Option<T>,
) -> Option<Vec<T>> {
    let Some(v) = v else {
        return Some(Vec::new());
    };
    v.as_arr()?.iter().map(item).collect()
}

/// Writes `,"key":[...]` only when the list is non-empty — warm-run
/// speed lives and dies on the cache staying small, so every
/// default-valued field is omitted on write and defaulted on read.
fn opt_strings(out: &mut String, key: &str, items: &[String]) {
    if items.is_empty() {
        return;
    }
    let _ = write!(out, ",\"{key}\":");
    strings_json(out, items);
}

fn opt_flag(out: &mut String, key: &str, value: bool) {
    if value {
        let _ = write!(out, ",\"{key}\":true");
    }
}

fn entry_to_json(out: &mut String, rel: &str, entry: &CacheEntry) {
    let _ = write!(
        out,
        "{{\"rel\":{},\"hash\":\"{}\"",
        json_string(rel),
        hex(entry.hash)
    );
    if !entry.scan.raw.is_empty() {
        out.push_str(",\"raw\":[");
        for (i, f) in entry.scan.raw.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"rule_version\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"fix_hint\":{}}}",
                json_string(&f.rule),
                json_string(f.severity.as_str()),
                f.rule_version,
                json_string(&f.file),
                f.line,
                f.col,
                json_string(&f.message),
                json_string(&f.fix_hint),
            );
        }
        out.push(']');
    }
    if !entry.scan.pragmas.is_empty() {
        out.push_str(",\"pragmas\":[");
        for (i, p) in entry.scan.pragmas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"line\":{},\"col\":{},\"rules\":", p.line, p.col);
            strings_json(out, &p.rules);
            out.push('}');
        }
        out.push(']');
    }
    if !entry.scan.summary.fns.is_empty() {
        out.push_str(",\"fns\":[");
        for (i, f) in entry.scan.summary.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            fn_to_json(out, f);
        }
        out.push(']');
    }
    out.push('}');
}

fn fn_to_json(out: &mut String, f: &callgraph::FnSummary) {
    let _ = write!(
        out,
        "{{\"name\":{},\"line\":{},\"col\":{}",
        json_string(&f.name),
        f.line,
        f.col
    );
    opt_flag(out, "pub", f.is_pub);
    if let Some(p) = &f.deadline_param {
        out.push_str(",\"deadline\":");
        json::write_escaped(out, p);
    }
    if !f.calls.is_empty() {
        out.push_str(",\"calls\":[");
        for (i, c) in f.calls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"path\":");
            strings_json(out, &c.path);
            let _ = write!(out, ",\"line\":{},\"col\":{}", c.line, c.col);
            opt_flag(out, "method", c.method);
            opt_strings(out, "args", &c.args);
            out.push('}');
        }
        out.push(']');
    }
    if !f.panics.is_empty() {
        out.push_str(",\"panics\":[");
        for (i, p) in f.panics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"what\":{},\"line\":{},\"col\":{}",
                json_string(&p.what),
                p.line,
                p.col,
            );
            opt_flag(out, "allowed", p.allowed);
            out.push('}');
        }
        out.push(']');
    }
    if !f.locks.is_empty() {
        out.push_str(",\"locks\":[");
        for (i, l) in f.locks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"resource\":{},\"method\":{},\"line\":{},\"col\":{}}}",
                json_string(&l.resource),
                json_string(&l.method),
                l.line,
                l.col
            );
        }
        out.push(']');
    }
    if !f.stmts.is_empty() {
        out.push_str(",\"stmts\":[");
        for (i, s) in f.stmts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"line\":{}", s.line);
            opt_strings(out, "targets", &s.targets);
            opt_strings(out, "idents", &s.idents);
            opt_strings(out, "iterated", &s.iterated);
            opt_strings(out, "calls", &s.calls);
            opt_flag(out, "cleansed", s.cleansed);
            opt_flag(out, "coll", s.has_collection);
            opt_flag(out, "for", s.is_for);
            opt_flag(out, "ret", s.is_return);
            if let Some(name) = &s.sink {
                out.push_str(",\"sink\":");
                json::write_escaped(out, name);
                let _ = write!(
                    out,
                    ",\"sink_line\":{},\"sink_col\":{}",
                    s.sink_line, s.sink_col
                );
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
}

fn entry_from_json(item: &Json) -> Option<(CacheEntry, String)> {
    let rel = item.get("rel")?.as_str()?.to_owned();
    let hash = u64::from_str_radix(item.get("hash")?.as_str()?, 16).ok()?;
    let raw = list_from_json(item.get("raw"), output::finding_from_json)?;
    let pragmas = list_from_json(item.get("pragmas"), |p| {
        Some(Pragma {
            line: p.get("line")?.as_u32()?,
            col: p.get("col")?.as_u32()?,
            rules: strings_from_json(p.get("rules"))?,
        })
    })?;
    let fns = list_from_json(item.get("fns"), fn_from_json)?;
    Some((
        CacheEntry {
            hash,
            scan: FileScan {
                rel: rel.clone(),
                raw,
                pragmas,
                summary: callgraph::FileSummary { fns },
            },
        },
        rel,
    ))
}

fn fn_from_json(item: &Json) -> Option<callgraph::FnSummary> {
    let deadline_param = match item.get("deadline") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_str()?.to_owned()),
    };
    Some(callgraph::FnSummary {
        name: item.get("name")?.as_str()?.to_owned(),
        is_pub: flag_from_json(item.get("pub"))?,
        line: item.get("line")?.as_u32()?,
        col: item.get("col")?.as_u32()?,
        deadline_param,
        calls: list_from_json(item.get("calls"), |c| {
            Some(callgraph::CallSite {
                path: strings_from_json(c.get("path"))?,
                method: flag_from_json(c.get("method"))?,
                line: c.get("line")?.as_u32()?,
                col: c.get("col")?.as_u32()?,
                args: strings_from_json(c.get("args"))?,
            })
        })?,
        panics: list_from_json(item.get("panics"), |p| {
            Some(callgraph::PanicSite {
                what: p.get("what")?.as_str()?.to_owned(),
                line: p.get("line")?.as_u32()?,
                col: p.get("col")?.as_u32()?,
                allowed: flag_from_json(p.get("allowed"))?,
            })
        })?,
        locks: list_from_json(item.get("locks"), |l| {
            Some(callgraph::LockSite {
                resource: l.get("resource")?.as_str()?.to_owned(),
                method: l.get("method")?.as_str()?.to_owned(),
                line: l.get("line")?.as_u32()?,
                col: l.get("col")?.as_u32()?,
            })
        })?,
        stmts: list_from_json(item.get("stmts"), |s| {
            let sink = match s.get("sink") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_str()?.to_owned()),
            };
            let has_sink = sink.is_some();
            Some(callgraph::Stmt {
                targets: strings_from_json(s.get("targets"))?,
                idents: strings_from_json(s.get("idents"))?,
                iterated: strings_from_json(s.get("iterated"))?,
                calls: strings_from_json(s.get("calls"))?,
                cleansed: flag_from_json(s.get("cleansed"))?,
                has_collection: flag_from_json(s.get("coll"))?,
                sink,
                sink_line: if has_sink {
                    s.get("sink_line")?.as_u32()?
                } else {
                    0
                },
                sink_col: if has_sink {
                    s.get("sink_col")?.as_u32()?
                } else {
                    0
                },
                is_for: flag_from_json(s.get("for"))?,
                is_return: flag_from_json(s.get("ret"))?,
                line: s.get("line")?.as_u32()?,
            })
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::rules;

    fn sample_scan() -> FileScan {
        rules::analyze_file(
            "crates/x/src/lib.rs",
            br#"
pub fn handle(q: u32, deadline: Deadline) -> String {
    let m: HashMap<u32, u32> = build(q);
    let mut out = String::new();
    for k in m.keys() { out.push_str(&render(k)); } // lint:allow(no-panic-in-lib): demo
    step(q);
    out
}
fn step(q: u32) { let g = shards.write(); let p = props.lock(); v.unwrap(); }
"#,
            false,
            &LintConfig::default(),
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("surveyor-lint-cache-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_a_full_scan() {
        let scan = sample_scan();
        let path = tmp("roundtrip");
        let mut entries = BTreeMap::new();
        entries.insert(
            scan.rel.clone(),
            CacheEntry {
                hash: fnv1a(b"content"),
                scan: scan.clone(),
            },
        );
        store(&path, 7, &entries).expect("cache writes");
        let loaded = load(&path, 7);
        assert_eq!(loaded.entries.len(), 1);
        let entry = loaded.entries.get(&scan.rel).expect("entry present");
        assert_eq!(entry.hash, fnv1a(b"content"));
        assert_eq!(entry.scan, scan);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn key_mismatches_discard_the_cache() {
        let path = tmp("keys");
        let entries = BTreeMap::new();
        store(&path, 7, &entries).expect("cache writes");
        assert!(load(&path, 7).entries.is_empty());
        // Wrong config hash: discarded (empty either way here, but the
        // parse path differs — exercise it with a real entry).
        let scan = sample_scan();
        let mut entries = BTreeMap::new();
        entries.insert(scan.rel.clone(), CacheEntry { hash: 1, scan });
        store(&path, 7, &entries).expect("cache writes");
        assert_eq!(load(&path, 7).entries.len(), 1);
        assert!(
            load(&path, 8).entries.is_empty(),
            "config hash mismatch kept"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_caches_load_as_empty() {
        let path = tmp("corrupt");
        for bad in [
            "",
            "not json",
            "{\"version\":1}",
            "{\"version\":1,\"ruleset_version\":999,\"config_hash\":\"0000000000000007\",\"files\":[]}",
            "{\"version\":1,\"ruleset_version\":2,\"config_hash\":\"0000000000000007\",\"files\":[{\"rel\":\"x\"}]}",
        ] {
            std::fs::write(&path, bad).expect("test write");
            assert!(load(&path, 7).entries.is_empty(), "accepted {bad:?}");
        }
        let _ = std::fs::remove_file(&path);
        // Missing file: empty, no error.
        assert!(load(&path, 7).entries.is_empty());
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
