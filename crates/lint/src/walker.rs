//! Deterministic workspace traversal.
//!
//! Collects every `.rs` file under the workspace root, sorted by
//! relative path, so findings come out in the same order on every
//! machine. `target/`, `.git/`, and dot-directories are always
//! skipped; further exclusions (`vendor/`, fixture directories) come
//! from `lint.toml`'s `exclude` list.

use crate::config::{path_matches, LintConfig};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file to scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkspaceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Absolute path for reading.
    pub abs: PathBuf,
    /// Whether this file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// or `src/bin/*.rs` of a workspace crate) and must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Directory names never descended into, regardless of config.
const ALWAYS_SKIPPED_DIRS: &[&str] = &["target", ".git"];

/// Collects the `.rs` files to scan, sorted by relative path.
pub fn collect_rust_files(root: &Path, config: &LintConfig) -> io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    walk(root, root, config, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    config: &LintConfig,
    out: &mut Vec<WorkspaceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if ALWAYS_SKIPPED_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            // Excluding a directory pattern prunes the whole subtree.
            let dir_rel = format!("{rel}/");
            if config
                .exclude
                .iter()
                .any(|p| path_matches(p, &format!("{dir_rel}x")) || p.trim_end_matches('/') == rel)
            {
                continue;
            }
            walk(root, &path, config, out)?;
        } else if name.ends_with(".rs") && !config.is_excluded(&rel) {
            out.push(WorkspaceFile {
                is_crate_root: is_crate_root(&rel),
                abs: path,
                rel,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to `/` so patterns and reports are OS-independent.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether `rel` is a crate root of a workspace crate.
fn is_crate_root(rel: &str) -> bool {
    path_matches("crates/*/src/lib.rs", rel)
        || path_matches("crates/*/src/main.rs", rel)
        || path_matches("crates/*/src/bin/*.rs", rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root("crates/kb/src/lib.rs"));
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/repro.rs"));
        assert!(!is_crate_root("crates/kb/src/intern.rs"));
        assert!(!is_crate_root("tests/obs_report.rs"));
        assert!(!is_crate_root("examples/quickstart.rs"));
    }

    #[test]
    fn walks_sorted_and_prunes_excludes() {
        let dir = std::env::temp_dir().join(format!(
            "surveyor-lint-walker-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        for sub in ["crates/a/src", "vendor/x/src", "target/debug"] {
            fs::create_dir_all(dir.join(sub)).expect("mkdir");
        }
        for f in [
            "crates/a/src/lib.rs",
            "crates/a/src/zeta.rs",
            "crates/a/src/alpha.rs",
            "vendor/x/src/lib.rs",
            "target/debug/junk.rs",
            "notes.txt",
        ] {
            fs::write(dir.join(f), "fn x() {}").expect("write");
        }
        let config = crate::config::parse("exclude = [\"vendor/\"]").expect("config");
        let files = collect_rust_files(&dir, &config).expect("walk");
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(
            rels,
            vec![
                "crates/a/src/alpha.rs",
                "crates/a/src/lib.rs",
                "crates/a/src/zeta.rs"
            ]
        );
        assert!(files[1].is_crate_root);
        assert!(!files[0].is_crate_root);
        let _ = fs::remove_dir_all(&dir);
    }
}
