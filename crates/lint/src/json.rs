//! A minimal, panic-free JSON reader.
//!
//! The crate emits JSON by hand ([`crate::output`]) but PR 9 also needs
//! to *read* it: the incremental cache under `artifacts/` round-trips
//! per-file scan results, and `output::from_json` re-hydrates v1 and v2
//! reports. The workspace is offline and this crate is deliberately
//! dependency-free, so this is a small recursive-descent parser over
//! the JSON the crate itself writes: objects, arrays, strings with the
//! standard escapes, integers/floats, booleans, null. Input is
//! untrusted in the same sense the lexer's is — a corrupt or truncated
//! cache file must come back as `Err`, never a panic (a bad cache is
//! discarded and the run proceeds cold).

use std::fmt::Write as _;

/// One parsed JSON value. Objects keep their key order (the crate's
/// own emitters are deterministic, so order round-trips).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64`, which is exact for the u32/usize
    /// counters the crate serializes.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The numeric payload as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error, as is anything malformed — callers treat `Err` as "discard
/// and regenerate".
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

/// Nesting deeper than this is rejected rather than risking a stack
/// overflow on adversarial input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            // Surrogates the crate never emits map to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the raw UTF-8 byte run up to the next quote
                    // or backslash in one go.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "string is not UTF-8".to_owned())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "number is not UTF-8".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

/// Serialization helpers for the cache writer: a tiny builder that
/// mirrors [`parse`] so round-trips are lossless for the subset the
/// crate uses.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_crates_own_shapes() {
        let doc = r#"{"version": 2, "ok": true, "none": null,
                      "items": [{"a": "x\ny", "n": 41.5}, []],
                      "empty": {}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("version").and_then(Json::as_u32), Some(2));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
        let items = v.get("items").and_then(Json::as_arr).expect("array");
        assert_eq!(items[0].get("a").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(items[0].get("n"), Some(&Json::Num(41.5)));
        assert_eq!(items[1], Json::Arr(Vec::new()));
    }

    #[test]
    fn escapes_round_trip() {
        let mut emitted = String::new();
        write_escaped(&mut emitted, "quote \" slash \\ tab \t ctrl \u{1} é");
        let parsed = parse(&emitted).expect("parses");
        assert_eq!(
            parsed.as_str(),
            Some("quote \" slash \\ tab \t ctrl \u{1} é")
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(r#""\u0041\u00e9""#).expect("parses").as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn corrupt_input_errors_without_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "tru",
            "\"open",
            "01x",
            "[1] trailing",
            "{\"a\": 1,}",
            "\u{0}",
            "\"bad \\u12\"",
            "nul",
            "-",
            "[[[[",
        ] {
            assert!(parse(bad).is_err(), "accepted corrupt input {bad:?}");
        }
        // Deep nesting is rejected, not overflowed.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_cover_counters() {
        assert_eq!(parse("0").expect("parses").as_u32(), Some(0));
        assert_eq!(
            parse("4294967295").expect("parses").as_u32(),
            Some(4294967295)
        );
        assert_eq!(parse("4294967296").expect("parses").as_u32(), None);
        assert_eq!(parse("-3").expect("parses").as_u64(), None);
        assert_eq!(parse("1.5").expect("parses").as_u64(), None);
        assert_eq!(parse("12").expect("parses").as_usize(), Some(12));
    }
}
