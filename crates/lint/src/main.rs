//! `surveyor-lint` — the workspace static-analysis gate.
//!
//! ```text
//! surveyor-lint [--root DIR] [--config FILE] [--format human|json]
//!               [--json-out FILE] [--workers N] [--max-severity LEVEL]
//!               [--cache FILE | --no-cache] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings reported, 2 usage/config/IO error.
//! `--max-severity` filters what counts: with `--max-severity error`
//! only error-severity findings are printed and only they drive the
//! exit code (`error` > `warning` > `info`; the default `info` reports
//! everything). This file is the only place in the crate allowed to
//! print.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use surveyor_lint::{lint_workspace_with, load_config, output, rules, LintOptions};

const USAGE: &str = "\
surveyor-lint: enforce Surveyor's determinism and panic-freedom invariants

USAGE:
    surveyor-lint [OPTIONS]

OPTIONS:
    --root DIR           Workspace root to scan (default: current directory)
    --config FILE        Config path (default: <root>/lint.toml)
    --format FMT         Output format: human (default) or json
    --json-out FILE      Additionally write the JSON report to FILE
    --workers N          Scan-phase worker threads (default 0 = auto);
                         any value produces byte-identical output
    --max-severity LVL   Only report findings at LVL or more severe:
                         error, warning, or info (default: info = all)
    --cache FILE         Incremental-cache path
                         (default: <root>/artifacts/lint_cache.json)
    --no-cache           Disable the incremental cache for this run
    --list-rules         Print the rule table (severity, layer) and exit
    -h, --help           Show this help

EXIT CODES:
    0  no findings at or above --max-severity
    1  findings reported
    2  usage, config, or IO error";

#[derive(Debug, PartialEq)]
struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    json_out: Option<PathBuf>,
    workers: usize,
    max_severity: rules::Severity,
    cache: Option<PathBuf>,
    no_cache: bool,
    list_rules: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            root: PathBuf::from("."),
            config: None,
            format: Format::Human,
            json_out: None,
            workers: 0,
            max_severity: rules::Severity::Info,
            cache: None,
            no_cache: false,
            list_rules: false,
        }
    }
}

#[derive(Debug, PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a value".to_owned())?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--config needs a value".to_owned())?,
                ));
            }
            "--format" => {
                opts.format = match it
                    .next()
                    .ok_or_else(|| "--format needs a value".to_owned())?
                    .as_str()
                {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json-out" => {
                opts.json_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json-out needs a value".to_owned())?,
                ));
            }
            "--workers" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--workers needs a value".to_owned())?;
                opts.workers = value
                    .parse()
                    .map_err(|_| format!("--workers needs a number, got `{value}`"))?;
            }
            "--max-severity" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--max-severity needs a value".to_owned())?;
                opts.max_severity = rules::Severity::parse(value).ok_or_else(|| {
                    format!("unknown severity `{value}` (error, warning, or info)")
                })?;
            }
            "--cache" => {
                opts.cache = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache needs a value".to_owned())?,
                ));
            }
            "--no-cache" => opts.no_cache = true,
            "--list-rules" => opts.list_rules = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.no_cache && opts.cache.is_some() {
        return Err("--cache and --no-cache are mutually exclusive".to_owned());
    }
    Ok(opts)
}

fn list_rules() {
    println!(
        "{:28} {:8} {:6} {:3}  SUMMARY",
        "RULE", "SEVERITY", "LAYER", "VER"
    );
    for rule in rules::RULES.iter().chain([&rules::UNUSED_ALLOW_DEF]) {
        println!(
            "{:28} {:8} {:6} {:3}  {}",
            rule.name,
            rule.severity.as_str(),
            rule.layer.as_str(),
            rule.version,
            rule.summary
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("surveyor-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.toml"));
    let config = match load_config(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("surveyor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cache_path = if opts.no_cache {
        None
    } else {
        Some(
            opts.cache
                .clone()
                .unwrap_or_else(|| opts.root.join("artifacts").join("lint_cache.json")),
        )
    };
    let lint_opts = LintOptions {
        workers: opts.workers,
        cache_path,
    };
    let mut run = match lint_workspace_with(&opts.root, &config, &lint_opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("surveyor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    run.findings.retain(|f| f.severity <= opts.max_severity);

    if let Some(path) = &opts.json_out {
        let json = output::render_json(&run.findings, run.files_scanned);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("surveyor-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match opts.format {
        Format::Human => println!("{}", output::render_human(&run.findings, run.files_scanned)),
        Format::Json => print!("{}", output::render_json(&run.findings, run.files_scanned)),
    }
    if run.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_args(&owned)
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).expect("empty args parse");
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn full_flag_set() {
        let opts = parse(&[
            "--root",
            "ws",
            "--config",
            "custom.toml",
            "--format",
            "json",
            "--json-out",
            "report.json",
            "--workers",
            "4",
            "--max-severity",
            "warning",
            "--cache",
            "c.json",
        ])
        .expect("flags parse");
        assert_eq!(opts.root, PathBuf::from("ws"));
        assert_eq!(
            opts.config.as_deref(),
            Some(std::path::Path::new("custom.toml"))
        );
        assert_eq!(opts.format, Format::Json);
        assert_eq!(
            opts.json_out.as_deref(),
            Some(std::path::Path::new("report.json"))
        );
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.max_severity, rules::Severity::Warning);
        assert_eq!(opts.cache.as_deref(), Some(std::path::Path::new("c.json")));
        assert!(!opts.no_cache);
    }

    #[test]
    fn severity_values() {
        for (flag, want) in [
            ("error", rules::Severity::Error),
            ("warning", rules::Severity::Warning),
            ("info", rules::Severity::Info),
        ] {
            let opts = parse(&["--max-severity", flag]).expect("severity parses");
            assert_eq!(opts.max_severity, want);
        }
        assert!(parse(&["--max-severity", "loud"]).is_err());
        assert!(parse(&["--max-severity"]).is_err());
    }

    #[test]
    fn workers_must_be_numeric() {
        assert_eq!(parse(&["--workers", "8"]).expect("parses").workers, 8);
        assert!(parse(&["--workers", "many"]).is_err());
        assert!(parse(&["--workers"]).is_err());
    }

    #[test]
    fn cache_flags_conflict() {
        assert!(parse(&["--no-cache"]).expect("parses").no_cache);
        assert!(parse(&["--cache", "c.json", "--no-cache"]).is_err());
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        assert!(parse(&["--fast"]).is_err());
        assert!(parse(&["extra"]).is_err());
    }
}
