//! `surveyor-lint` — the workspace static-analysis gate.
//!
//! ```text
//! surveyor-lint [--root DIR] [--config FILE] [--format human|json]
//!               [--json-out FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings reported, 2 usage/config/IO error.
//! This file is the only place in the crate allowed to print.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use surveyor_lint::{lint_workspace, load_config, output, rules};

const USAGE: &str = "\
surveyor-lint: enforce Surveyor's determinism and panic-freedom invariants

USAGE:
    surveyor-lint [OPTIONS]

OPTIONS:
    --root DIR         Workspace root to scan (default: current directory)
    --config FILE      Config path (default: <root>/lint.toml)
    --format FMT       Output format: human (default) or json
    --json-out FILE    Additionally write the JSON report to FILE
    --list-rules       Print the rule table and exit
    -h, --help         Show this help

EXIT CODES:
    0  no findings
    1  findings reported
    2  usage, config, or IO error";

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    json_out: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        json_out: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a value".to_owned())?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--config needs a value".to_owned())?,
                ));
            }
            "--format" => {
                opts.format = match it
                    .next()
                    .ok_or_else(|| "--format needs a value".to_owned())?
                    .as_str()
                {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json-out" => {
                opts.json_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json-out needs a value".to_owned())?,
                ));
            }
            "--list-rules" => opts.list_rules = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("surveyor-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules::RULES {
            println!("{:24} {}", rule.name, rule.summary);
        }
        let meta_summary = "meta-rule: a lint:allow pragma that suppresses nothing";
        println!("{:24} {meta_summary}", rules::UNUSED_ALLOW);
        return ExitCode::SUCCESS;
    }

    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.toml"));
    let config = match load_config(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("surveyor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match lint_workspace(&opts.root, &config) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("surveyor-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_out {
        let json = output::render_json(&run.findings, run.files_scanned);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("surveyor-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match opts.format {
        Format::Human => println!("{}", output::render_human(&run.findings, run.files_scanned)),
        Format::Json => print!("{}", output::render_json(&run.findings, run.files_scanned)),
    }
    if run.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
