//! The rule table, the token-level scan engine, and the global
//! pragma-application phase.
//!
//! Every rule here encodes an invariant an earlier PR promised and the
//! compiler cannot check:
//!
//! | rule | layer | guards |
//! |---|---|---|
//! | `no-panic-in-lib` | token | PR 3's `catch_unwind` shard isolation: a panic in library code becomes a quarantined shard instead of a typed `ShardError` |
//! | `no-wall-clock` | token | bit-identical reruns: decisions must not read `Instant`/`SystemTime` |
//! | `no-unseeded-rng` | token | reproducible EM evaluation: all randomness flows from explicit seeds |
//! | `no-print-in-lib` | token | PR 2's report discipline: output goes through obs/`RunReport`, not stdout |
//! | `no-unordered-iter` | token | `RunReport::diff` stability: no `std::collections::HashMap` in paths that feed serialized output |
//! | `forbid-unsafe-missing` | token | every crate root opts the whole crate out of `unsafe` |
//! | `no-shared-lock-in-worker-loop` | token | PR 5's worker-local accumulation: no shared-lock traffic on the hot path |
//! | `panic-reachability` | flow | no panic site is reachable from a public API through the call graph |
//! | `lock-order` | flow | nested lock acquisitions follow one canonical order crate-wide |
//! | `unordered-iter-flow` | flow | unordered iteration does not flow through lets/returns into a serialization sink |
//! | `deadline-propagation` | flow | server handlers thread the request `Deadline` into every blocking call |
//!
//! Token rules operate on the stream from [`crate::lexer`], so text in
//! comments and string literals never matches; flow rules run after
//! every file is scanned, over the call graph [`crate::callgraph`]
//! builds from the [`crate::syntax`] trees. Code under `#[cfg(test)]`
//! (and items under `#[test]`) is exempt from the lib-code rules; see
//! `test_regions`. A finding on a line carrying a
//! `// lint:allow(<rule>)` pragma is suppressed, and a pragma that
//! suppresses nothing is itself reported under the `unused-allow`
//! meta-rule. Because flow findings only exist after the graph phase,
//! pragma application is a global pass ([`finalize`]), not a per-file
//! one.

use crate::callgraph::{self, FileSummary};
use crate::config::LintConfig;
use crate::lexer::{lex, LineIndex, Token, TokenKind};
use crate::syntax;
use std::collections::BTreeSet;

/// The meta-rule name for pragmas that suppress nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Version of the rule set as a whole. Bumped whenever a rule is
/// added, removed, or changes its matching semantics; part of the
/// incremental-cache key so stale caches self-invalidate.
pub const RULESET_VERSION: u32 = 2;

/// How severe a finding is. Orders from most to least severe, so the
/// derived `Ord` makes `--max-severity` a simple `<=` filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Breaks a correctness invariant (determinism, panic isolation).
    Error,
    /// Degrades quality or performance; advisory but gate-failing by
    /// default.
    Warning,
    /// Informational.
    Info,
}

impl Severity {
    /// The lowercase name used in JSON reports and `--max-severity`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warning => "warning",
            Self::Info => "info",
        }
    }

    /// Parses a severity name (as accepted by `--max-severity`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "error" => Some(Self::Error),
            "warning" => Some(Self::Warning),
            "info" => Some(Self::Info),
            _ => None,
        }
    }
}

/// Which analysis layer produces a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Per-file token-pattern matching.
    Token,
    /// Whole-workspace call-graph / taint analysis.
    Flow,
}

impl Layer {
    /// The lowercase name used by `--list-rules` and the docs.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Token => "token",
            Self::Flow => "flow",
        }
    }
}

/// One rule's identity and documentation.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Rule name, as used in `lint.toml` and pragmas.
    pub name: &'static str,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
    /// Whether `#[cfg(test)]` / `#[test]` regions are exempt.
    pub exempt_test_code: bool,
    /// Default severity of the rule's findings.
    pub severity: Severity,
    /// Version of this rule's matching semantics.
    pub version: u32,
    /// Which layer produces the findings.
    pub layer: Layer,
    /// Machine-readable default fix hint.
    pub fix_hint: &'static str,
}

/// The rule set, in documentation order: the token layer first, then
/// the flow layer.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "no-panic-in-lib",
        summary: "unwrap/expect/panic!/todo!/unimplemented! in library code defeats \
                  catch_unwind shard isolation",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "return a typed error (`?`/`Result`) or document the invariant with \
                   `// lint:allow(no-panic-in-lib): <why>`",
    },
    RuleDef {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime in decision paths breaks bit-identical reruns",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "measure in crates/obs or inject the reading; pragma only when it \
                   cannot influence mined output",
    },
    RuleDef {
        name: "no-unseeded-rng",
        summary: "thread_rng/from_entropy bypasses explicit seeding; randomness must flow \
                  from seeds",
        exempt_test_code: false,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "derive the RNG from an explicit seed, e.g. `StdRng::seed_from_u64`",
    },
    RuleDef {
        name: "no-print-in-lib",
        summary: "println!/eprintln! in library code bypasses obs/RunReport",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "route output through obs::RunReport or return data to the CLI layer",
    },
    RuleDef {
        name: "no-unordered-iter",
        summary: "std::collections::HashMap in report/decide/serialization paths makes \
                  emission order nondeterministic",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "use BTreeMap, or collect and sort before emission",
    },
    RuleDef {
        name: "forbid-unsafe-missing",
        summary: "crate roots must carry #![forbid(unsafe_code)]",
        exempt_test_code: false,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Token,
        fix_hint: "add `#![forbid(unsafe_code)]` as the first line of the crate root",
    },
    RuleDef {
        name: "no-shared-lock-in-worker-loop",
        summary: "Mutex/RwLock acquisition in extract/core worker code serializes the \
                  hot path; accumulate worker-locally and merge after the join",
        exempt_test_code: true,
        severity: Severity::Warning,
        version: 1,
        layer: Layer::Token,
        fix_hint: "accumulate worker-locally and merge by shard order after the join",
    },
    RuleDef {
        name: "panic-reachability",
        summary: "a panic site reachable from a public fn through the call graph \
                  defeats shard isolation transitively",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Flow,
        fix_hint: "return a typed error along the call path, or gate the panic site \
                   with `// lint:allow(panic-reachability): <invariant>`",
    },
    RuleDef {
        name: "lock-order",
        summary: "nested lock acquisitions must follow one canonical order (kb \
                  interner: shard write, then properties write) in every function",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Flow,
        fix_hint: "reorder the acquisitions to match the established order",
    },
    RuleDef {
        name: "unordered-iter-flow",
        summary: "a HashMap/HashSet iteration flowing through lets/returns into a \
                  serialization sink makes emission order nondeterministic",
        exempt_test_code: true,
        severity: Severity::Warning,
        version: 1,
        layer: Layer::Flow,
        fix_hint: "sort the iteration (collect to a Vec and sort, or use \
                   BTreeMap/BTreeSet) before the sink",
    },
    RuleDef {
        name: "deadline-propagation",
        summary: "a handler holding a request Deadline must pass it to every callee \
                  that accepts one; dropping it unbounds blocking work",
        exempt_test_code: true,
        severity: Severity::Error,
        version: 1,
        layer: Layer::Flow,
        fix_hint: "pass the deadline parameter through to the blocking callee",
    },
];

/// The `unused-allow` meta-rule's definition (not part of [`RULES`]
/// because it cannot be scoped or suppressed — it reports on the
/// pragma machinery itself).
pub const UNUSED_ALLOW_DEF: RuleDef = RuleDef {
    name: UNUSED_ALLOW,
    summary: "meta-rule: a lint:allow pragma that suppresses nothing",
    exempt_test_code: false,
    severity: Severity::Warning,
    version: 1,
    layer: Layer::Token,
    fix_hint: "delete the pragma",
};

/// Looks up a rule definition by name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.name == name)
}

/// Like [`rule_by_name`] but also resolves the `unused-allow`
/// meta-rule (for severity lookups when re-hydrating v1 reports).
pub fn rule_or_meta(name: &str) -> Option<&'static RuleDef> {
    if name == UNUSED_ALLOW {
        Some(&UNUSED_ALLOW_DEF)
    } else {
        rule_by_name(name)
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (a rule from [`RULES`] or [`UNUSED_ALLOW`]).
    pub rule: String,
    /// Severity, copied from the rule definition.
    pub severity: Severity,
    /// Version of the rule that produced this finding.
    pub rule_version: u32,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Machine-readable fix hint.
    pub fix_hint: String,
}

impl Finding {
    /// Builds a finding for `def` with the rule's default fix hint.
    pub fn of(def: &RuleDef, file: &str, line: u32, col: u32, message: String) -> Self {
        Self {
            rule: def.name.to_owned(),
            severity: def.severity,
            rule_version: def.version,
            file: file.to_owned(),
            line,
            col,
            message,
            fix_hint: def.fix_hint.to_owned(),
        }
    }

    /// Replaces the default fix hint with a finding-specific one.
    pub fn with_hint(mut self, hint: String) -> Self {
        self.fix_hint = hint;
        self
    }

    /// The deterministic ordering key: file, then position, then rule,
    /// then message (flow rules can report two findings at one site).
    pub fn sort_key(&self) -> (&str, u32, u32, &str, &str) {
        (&self.file, self.line, self.col, &self.rule, &self.message)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A `// lint:allow(rule, ...)` pragma found on a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma's comment starts on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
}

/// Everything one file contributes to the lint run: its raw (pre-
/// pragma) token-level findings, its pragmas, and the function
/// summaries the flow rules consume. This is also the unit the
/// incremental cache stores, keyed on the file's content hash.
#[derive(Debug, Clone, PartialEq)]
pub struct FileScan {
    /// Workspace-relative path.
    pub rel: String,
    /// Token-level findings, pre-pragma, unsorted.
    pub raw: Vec<Finding>,
    /// The file's `lint:allow` pragmas.
    pub pragmas: Vec<Pragma>,
    /// Function summaries for the call-graph phase.
    pub summary: FileSummary,
}

/// Scans one file completely: lexes once, parses the token trees once,
/// and produces the raw findings, pragmas, and flow summaries.
pub fn analyze_file(
    rel_path: &str,
    src: &[u8],
    is_crate_root: bool,
    config: &LintConfig,
) -> FileScan {
    let tokens = lex(src);
    let index = LineIndex::new(src);
    let sig = syntax::significant(&tokens);
    let trees = syntax::parse(&sig, src);
    let test_spans = test_regions(&sig, src);
    let pragmas = collect_pragmas(&tokens, src, &index);
    let raw = scan_tokens(
        rel_path,
        src,
        &sig,
        &index,
        &test_spans,
        is_crate_root,
        config,
    );
    let summary = callgraph::summarize(src, &trees, &index, &test_spans, &pragmas);
    FileScan {
        rel: rel_path.to_owned(),
        raw,
        pragmas,
        summary,
    }
}

/// Scans one file's bytes and appends its findings (already
/// pragma-filtered, unsorted) to `out`.
///
/// This is the token-layer convenience API (used by doctests and unit
/// tests): it applies the file's pragmas locally and reports unused
/// ones, but runs no flow rules — those need the whole workspace; see
/// [`crate::lint_workspace`].
pub fn scan_file(
    rel_path: &str,
    src: &[u8],
    is_crate_root: bool,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let scan = analyze_file(rel_path, src, is_crate_root, config);
    let empty = BTreeSet::new();
    out.extend(apply_file_pragmas(&scan, Vec::new(), &empty));
}

/// The global post-graph phase: merges each file's raw findings with
/// the flow findings that landed on it, applies pragmas, reports
/// unused pragmas, and returns the fully sorted finding list.
///
/// `gated` holds `(file, line, rule)` triples for pragma-gated flow
/// events that *would* have fired (e.g. a reachable panic site carrying
/// a `lint:allow(panic-reachability)`), so those pragmas count as used
/// even though no finding was ever materialized at their line.
pub fn finalize(
    scans: &[FileScan],
    flow: Vec<Finding>,
    gated: &BTreeSet<(String, u32, String)>,
) -> Vec<Finding> {
    let mut flow_by_file: std::collections::BTreeMap<String, Vec<Finding>> =
        std::collections::BTreeMap::new();
    for finding in flow {
        flow_by_file
            .entry(finding.file.clone())
            .or_default()
            .push(finding);
    }
    let mut out = Vec::new();
    for scan in scans {
        let flow_here = flow_by_file.remove(&scan.rel).unwrap_or_default();
        out.extend(apply_file_pragmas(scan, flow_here, gated));
    }
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

/// Applies one file's pragmas to its raw + flow findings; appends
/// `unused-allow` findings for pragmas that suppressed nothing and were
/// not gating a flow event recorded in `gated`.
fn apply_file_pragmas(
    scan: &FileScan,
    flow: Vec<Finding>,
    gated: &BTreeSet<(String, u32, String)>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut used = vec![false; scan.pragmas.len()];
    for finding in scan.raw.iter().cloned().chain(flow) {
        let mut suppressed = false;
        for (pi, p) in scan.pragmas.iter().enumerate() {
            if p.line == finding.line && p.rules.contains(&finding.rule) {
                used[pi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(finding);
        }
    }
    for (pi, pragma) in scan.pragmas.iter().enumerate() {
        if pragma
            .rules
            .iter()
            .any(|r| gated.contains(&(scan.rel.clone(), pragma.line, r.clone())))
        {
            used[pi] = true;
        }
    }
    for (pragma, was_used) in scan.pragmas.iter().zip(&used) {
        let unknown: Vec<&String> = pragma
            .rules
            .iter()
            .filter(|r| rule_by_name(r).is_none())
            .collect();
        if let Some(bad) = unknown.first() {
            out.push(Finding::of(
                &UNUSED_ALLOW_DEF,
                &scan.rel,
                pragma.line,
                pragma.col,
                format!("pragma names unknown rule `{bad}`"),
            ));
        } else if !was_used {
            out.push(Finding::of(
                &UNUSED_ALLOW_DEF,
                &scan.rel,
                pragma.line,
                pragma.col,
                format!(
                    "`lint:allow({})` suppresses nothing on this line; remove it",
                    pragma.rules.join(", ")
                ),
            ));
        }
    }
    out
}

/// The token-layer scan: raw findings, pre-pragma, unsorted.
fn scan_tokens(
    rel_path: &str,
    src: &[u8],
    sig: &[Token],
    index: &LineIndex,
    test_spans: &[(usize, usize)],
    is_crate_root: bool,
    config: &LintConfig,
) -> Vec<Finding> {
    // Which rules run on this file at all, resolved once.
    let on = |name: &str| config.scope(name).applies_to(rel_path);
    let active: Vec<(&'static RuleDef, bool)> = RULES.iter().map(|r| (r, on(r.name))).collect();
    let rule_on = |name: &str| active.iter().any(|(r, enabled)| r.name == name && *enabled);
    let in_test = |offset: usize| test_spans.iter().any(|&(s, e)| offset >= s && offset < e);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |name: &'static str, offset: usize, message: String| {
        let Some(rule) = rule_by_name(name) else {
            return;
        };
        if rule.exempt_test_code && in_test(offset) {
            return;
        }
        let (line, col) = index.line_col(offset);
        raw.push(Finding::of(rule, rel_path, line, col, message));
    };

    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text(src) {
            b"unwrap" | b"expect"
                if rule_on("no-panic-in-lib")
                    && prev_text_is(sig, i, src, b".")
                    && next_text_is(sig, i, src, b"(") =>
            {
                push(
                    "no-panic-in-lib",
                    tok.start,
                    format!(
                        "`.{}()` can panic in library code; return a typed error or \
                             document the invariant with a pragma",
                        string_of(tok.text(src))
                    ),
                );
            }
            b"lock" | b"read" | b"write"
                if rule_on("no-shared-lock-in-worker-loop")
                    && prev_text_is(sig, i, src, b".")
                    && next_text_is(sig, i, src, b"(") =>
            {
                push(
                    "no-shared-lock-in-worker-loop",
                    tok.start,
                    format!(
                        "`.{}()` acquires a shared lock on the worker hot path; \
                             hand results back by value over the join and merge in \
                             shard order",
                        string_of(tok.text(src))
                    ),
                );
            }
            b"panic" | b"todo" | b"unimplemented"
                if rule_on("no-panic-in-lib") && next_text_is(sig, i, src, b"!") =>
            {
                push(
                    "no-panic-in-lib",
                    tok.start,
                    format!(
                        "`{}!` in library code defeats shard panic isolation",
                        string_of(tok.text(src))
                    ),
                );
            }
            b"Instant"
                if rule_on("no-wall-clock")
                    && double_colon_at(sig, i + 1, src)
                    && ident_text(sig, i + 3, src) == Some(b"now") =>
            {
                push(
                    "no-wall-clock",
                    tok.start,
                    "`Instant::now()` reads the wall clock; timing belongs in \
                         crates/obs"
                        .to_owned(),
                );
            }
            b"SystemTime" if rule_on("no-wall-clock") => {
                push(
                    "no-wall-clock",
                    tok.start,
                    "`SystemTime` reads the wall clock; timing belongs in crates/obs".to_owned(),
                );
            }
            b"thread_rng" | b"from_entropy" if rule_on("no-unseeded-rng") => {
                push(
                    "no-unseeded-rng",
                    tok.start,
                    format!(
                        "`{}` draws OS entropy; all randomness must flow from \
                             explicit seeds",
                        string_of(tok.text(src))
                    ),
                );
            }
            b"println" | b"eprintln"
                if rule_on("no-print-in-lib") && next_text_is(sig, i, src, b"!") =>
            {
                push(
                    "no-print-in-lib",
                    tok.start,
                    format!(
                        "`{}!` in library code; route output through obs/RunReport \
                             or the CLI layer",
                        string_of(tok.text(src))
                    ),
                );
            }
            // `std :: collections :: HashMap` or
            // `std :: collections :: { ..., HashMap, ... }` —
            // flag each named `HashMap`.
            b"std"
                if rule_on("no-unordered-iter")
                    && double_colon_at(sig, i + 1, src)
                    && ident_text(sig, i + 3, src) == Some(b"collections")
                    && double_colon_at(sig, i + 4, src) =>
            {
                for hashmap_tok in imported_hashmaps(sig, i + 6, src) {
                    push(
                        "no-unordered-iter",
                        hashmap_tok.start,
                        "`std::collections::HashMap` iteration order is \
                         nondeterministic; use BTreeMap or sort before emission"
                            .to_owned(),
                    );
                }
            }
            _ => {}
        }
    }

    if is_crate_root && rule_on("forbid-unsafe-missing") && !has_forbid_unsafe(sig, src) {
        // Report at 1:1 — the attribute belongs at the top.
        push(
            "forbid-unsafe-missing",
            0,
            "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        );
    }

    raw
}

fn string_of(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// The text of the token at `i`, if it is an identifier.
fn ident_text<'a>(sig: &[Token], i: usize, src: &'a [u8]) -> Option<&'a [u8]> {
    let tok = sig.get(i)?;
    (tok.kind == TokenKind::Ident).then(|| tok.text(src))
}

fn prev_text_is(sig: &[Token], i: usize, src: &[u8], text: &[u8]) -> bool {
    i > 0 && sig[i - 1].text(src) == text
}

fn next_text_is(sig: &[Token], i: usize, src: &[u8], text: &[u8]) -> bool {
    sig.get(i + 1).is_some_and(|t| t.text(src) == text)
}

/// Whether tokens `i` and `i + 1` are the two adjacent `:` puncts of a
/// `::` (the lexer emits punctuation one byte at a time).
fn double_colon_at(sig: &[Token], i: usize, src: &[u8]) -> bool {
    matches!((sig.get(i), sig.get(i + 1)), (Some(a), Some(b))
        if a.text(src) == b":" && b.text(src) == b":" && a.end == b.start)
}

/// Starting at the token right after `std :: collections ::` (index
/// `start`), yields each `HashMap` identifier the path imports —
/// either the direct `HashMap` form or any `HashMap` inside a
/// `{...}` use-group.
fn imported_hashmaps(sig: &[Token], start: usize, src: &[u8]) -> Vec<Token> {
    match sig.get(start) {
        Some(t) if t.kind == TokenKind::Ident && t.text(src) == b"HashMap" => vec![*t],
        Some(t) if t.text(src) == b"{" => {
            let mut found = Vec::new();
            let mut depth = 1usize;
            let mut j = start + 1;
            while depth > 0 {
                match sig.get(j) {
                    Some(t) if t.text(src) == b"{" => depth += 1,
                    Some(t) if t.text(src) == b"}" => depth -= 1,
                    Some(t) if t.kind == TokenKind::Ident && t.text(src) == b"HashMap" => {
                        found.push(*t)
                    }
                    Some(_) => {}
                    None => break,
                }
                j += 1;
            }
            found
        }
        _ => Vec::new(),
    }
}

/// Whether the significant-token stream contains the inner attribute
/// `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(sig: &[Token], src: &[u8]) -> bool {
    const SEQ: &[&[u8]] = &[
        b"#",
        b"!",
        b"[",
        b"forbid",
        b"(",
        b"unsafe_code",
        b")",
        b"]",
    ];
    sig.windows(SEQ.len())
        .any(|w| w.iter().zip(SEQ).all(|(t, want)| t.text(src) == *want))
}

/// Byte ranges of code exempt from lib-code rules: each item guarded
/// by `#[cfg(test)]` (or any `cfg` attribute whose argument list
/// mentions `test`) or `#[test]`, through the end of its `{...}` body
/// or terminating `;`.
pub(crate) fn test_regions(sig: &[Token], src: &[u8]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if !(sig[i].text(src) == b"#" && next_text_is(sig, i, src, b"[")) {
            i += 1;
            continue;
        }
        let attr_start = sig[i].start;
        let (attr_end_idx, is_test_attr) = classify_attribute(sig, i + 1, src);
        if !is_test_attr {
            i = attr_end_idx + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end_idx + 1;
        while sig.get(k).is_some_and(|t| t.text(src) == b"#") && next_text_is(sig, k, src, b"[") {
            let (end, _) = classify_attribute(sig, k + 1, src);
            k = end + 1;
        }
        // The guarded item ends at the matching `}` of its first brace
        // block, or at a top-level `;` (e.g. `#[cfg(test)] use ...;`).
        let mut brace_depth = 0usize;
        let mut end = src.len();
        while let Some(tok) = sig.get(k) {
            match tok.text(src) {
                b"{" => brace_depth += 1,
                b"}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        end = tok.end;
                        break;
                    }
                }
                b";" if brace_depth == 0 => {
                    end = tok.end;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((attr_start, end));
        while i < sig.len() && sig[i].start < end {
            i += 1;
        }
    }
    regions
}

/// Scans an attribute starting at its `[` token (index `open`).
/// Returns the index of the matching `]` (or the last token) and
/// whether the attribute gates test code (`#[test]`, `#[cfg(test)]`,
/// or any `cfg`/`cfg_attr` whose arguments mention `test`).
fn classify_attribute(sig: &[Token], open: usize, src: &[u8]) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut saw_cfg = false;
    let mut is_test = false;
    while let Some(tok) = sig.get(j) {
        match tok.text(src) {
            b"[" | b"(" => depth += 1,
            b"]" | b")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (j, is_test);
                }
            }
            b"cfg" | b"cfg_attr" if tok.kind == TokenKind::Ident => saw_cfg = true,
            b"test" if tok.kind == TokenKind::Ident && (saw_cfg || depth == 1) => {
                is_test = true;
            }
            _ => {}
        }
        j += 1;
    }
    (sig.len().saturating_sub(1), is_test)
}

/// Collects the file's `// lint:allow(rule, ...)` pragmas.
pub(crate) fn collect_pragmas(tokens: &[Token], src: &[u8], index: &LineIndex) -> Vec<Pragma> {
    let mut pragmas: Vec<Pragma> = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = string_of(tok.text(src));
        // Doc comments (`///`, `//!`) are documentation, not pragmas —
        // they may legitimately *mention* the pragma syntax.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(open) = text.find("lint:allow(") else {
            continue;
        };
        let after = &text[open + "lint:allow(".len()..];
        let (line, col) = index.line_col(tok.start);
        let rules = match after.find(')') {
            Some(close) => after[..close]
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect(),
            None => Vec::new(),
        };
        pragmas.push(Pragma { line, col, rules });
    }
    pragmas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_file(
            "lib.rs",
            src.as_bytes(),
            false,
            &LintConfig::default(),
            &mut out,
        );
        out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        out
    }

    #[test]
    fn flags_unwrap_and_panic_macros() {
        let found = scan("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); todo!(); }");
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["no-panic-in-lib"; 4], "got: {found:?}");
        assert!(found.iter().all(|f| f.severity == Severity::Error));
        assert!(found.iter().all(|f| f.rule_version == 1));
        assert!(found.iter().all(|f| !f.fix_hint.is_empty()));
    }

    #[test]
    fn ignores_unwrap_variants_and_paths() {
        assert!(scan("fn f() { x.unwrap_or(0); x.unwrap_or_else(g); }").is_empty());
        assert!(scan("use std::panic; fn f() { panic::catch_unwind(g); }").is_empty());
    }

    #[test]
    fn comments_and_strings_never_match() {
        assert!(scan("// x.unwrap() panic!\nfn f() { let _ = \"panic!(unwrap())\"; }").is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt_for_lib_rules() {
        let src = r#"
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); println!("ok"); }
}
"#;
        assert!(scan(src).is_empty());
        // ... but thread_rng stays flagged even in tests.
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let r = thread_rng(); }\n}\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "no-unseeded-rng");
    }

    #[test]
    fn test_attr_fn_is_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn derive_attr_does_not_start_a_region() {
        let src = "#[derive(Debug, Clone)]\nstruct S;\nfn f() { x.unwrap(); }\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn wall_clock_and_rng_and_print() {
        let found = scan(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             let r = thread_rng(); println!(\"x\"); }",
        );
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec![
                "no-wall-clock",
                "no-wall-clock",
                "no-unseeded-rng",
                "no-print-in-lib",
            ]
        );
    }

    #[test]
    fn duration_alone_is_fine() {
        assert!(scan("use std::time::Duration; fn f(d: Duration) {}").is_empty());
        // An Instant that is never `::now()`-ed (e.g. passed in) is fine.
        assert!(scan("use std::time::Instant; fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn hashmap_import_forms() {
        let direct = scan("use std::collections::HashMap;\n");
        assert_eq!(direct.len(), 1, "got: {direct:?}");
        assert_eq!(direct[0].rule, "no-unordered-iter");
        let grouped = scan("use std::collections::{BTreeMap, HashMap, HashSet};\n");
        assert_eq!(grouped.len(), 1);
        let qualified = scan("fn f() { let m = std::collections::HashMap::new(); }");
        assert_eq!(qualified.len(), 1);
        assert!(scan("use std::collections::{BTreeMap, HashSet};\n").is_empty());
        assert!(scan("use rustc_hash::FxHashMap;\n").is_empty());
    }

    #[test]
    fn forbid_unsafe_checked_on_crate_roots_only() {
        let mut out = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            b"pub fn f() {}",
            true,
            &LintConfig::default(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "forbid-unsafe-missing");
        assert_eq!((out[0].line, out[0].col), (1, 1));

        out.clear();
        scan_file(
            "crates/x/src/lib.rs",
            b"#![forbid(unsafe_code)]\npub fn f() {}",
            true,
            &LintConfig::default(),
            &mut out,
        );
        assert!(out.is_empty());

        out.clear();
        scan_file(
            "crates/x/src/util.rs",
            b"pub fn f() {}",
            false,
            &LintConfig::default(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn pragmas_suppress_and_unused_pragmas_report() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib): init-checked\n";
        assert!(scan(src).is_empty());

        let src = "fn ok() {} // lint:allow(no-panic-in-lib)\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, UNUSED_ALLOW);
        assert_eq!(found[0].severity, Severity::Warning);

        let src = "fn f() { x.unwrap(); } // lint:allow(no-such-rule)\n";
        let found = scan(src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert!(
            rules.contains(&"no-panic-in-lib"),
            "violation not suppressed"
        );
        assert!(rules.contains(&UNUSED_ALLOW), "unknown rule reported");
    }

    #[test]
    fn pragma_only_covers_its_own_line() {
        let src = "fn f() { // lint:allow(no-panic-in-lib)\n    x.unwrap();\n}\n";
        let found = scan(src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"no-panic-in-lib"));
        assert!(rules.contains(&UNUSED_ALLOW));
    }

    #[test]
    fn doc_comments_mentioning_pragma_syntax_are_not_pragmas() {
        let src = "/// Suppress with `// lint:allow(<rule>)`.\n//! lint:allow(no-wall-clock)\nfn f() {}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn one_pragma_can_cover_two_findings_on_a_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // lint:allow(no-panic-in-lib)\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn config_scoping_is_respected() {
        let config = crate::config::parse(
            "[rules.no-wall-clock]\nskip = [\"crates/obs/\"]\n\
             [rules.no-unordered-iter]\nonly = [\"crates/core/\"]\n",
        )
        .expect("test config parses");
        let mut out = Vec::new();
        scan_file(
            "crates/obs/src/registry.rs",
            b"fn f() { let t = Instant::now(); }",
            false,
            &config,
            &mut out,
        );
        assert!(out.is_empty());
        scan_file(
            "crates/nlp/src/lexicon.rs",
            b"use std::collections::HashMap;",
            false,
            &config,
            &mut out,
        );
        assert!(out.is_empty(), "only-scoped rule leaked: {out:?}");
        scan_file(
            "crates/core/src/store.rs",
            b"use std::collections::HashMap;",
            false,
            &config,
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn severity_ordering_supports_max_severity_filter() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("loud"), None);
    }

    #[test]
    fn rule_table_has_ten_rules_across_two_layers() {
        assert_eq!(RULES.len(), 11);
        assert_eq!(RULES.iter().filter(|r| r.layer == Layer::Flow).count(), 4);
        assert!(rule_or_meta(UNUSED_ALLOW).is_some());
        assert!(rule_by_name(UNUSED_ALLOW).is_none());
    }

    #[test]
    fn finalize_gates_flow_pragmas_via_the_gated_set() {
        // A pragma that materialized no finding but gated a flow event
        // must not be reported unused.
        let scan = analyze_file(
            "crates/x/src/a.rs",
            b"fn f() { g(); } // lint:allow(panic-reachability): checked\n",
            false,
            &LintConfig::default(),
        );
        let mut gated = BTreeSet::new();
        gated.insert((
            "crates/x/src/a.rs".to_owned(),
            1,
            "panic-reachability".to_owned(),
        ));
        let out = finalize(std::slice::from_ref(&scan), Vec::new(), &gated);
        assert!(out.is_empty(), "{out:?}");
        // Without the gate entry it IS unused.
        let out = finalize(&[scan], Vec::new(), &BTreeSet::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, UNUSED_ALLOW);
    }
}
