//! Golden tests: the linter's findings over the fixture workspace must
//! match the committed expected outputs byte for byte.
//!
//! The fixture workspace under `tests/fixtures/ws/` reintroduces one
//! violation per rule (plus pragma-suppression, unused-pragma, and
//! cfg(test)-exemption cases); the goldens pin the exact sorted finding
//! list, so any change to matching, ordering, or message wording shows up
//! as a diff. Regenerate with:
//!
//! ```text
//! cargo run --release -p surveyor-lint -- --root crates/lint/tests/fixtures/ws \
//!     > crates/lint/tests/fixtures/expected.txt
//! ```

use std::path::{Path, PathBuf};
use surveyor_lint::output::{render_human, render_json};
use surveyor_lint::rules::{RULES, UNUSED_ALLOW};
use surveyor_lint::{lint_workspace, lint_workspace_with, load_config, LintOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn expected(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading golden {}: {e}", path.display()))
}

fn run_fixture() -> surveyor_lint::LintRun {
    let root = fixture_root();
    let config = load_config(&root.join("lint.toml")).expect("fixture lint.toml parses");
    lint_workspace(&root, &config).expect("fixture workspace lints")
}

#[test]
fn human_output_matches_golden() {
    let run = run_fixture();
    let rendered = render_human(&run.findings, run.files_scanned);
    assert_eq!(rendered.trim_end(), expected("expected.txt").trim_end());
}

#[test]
fn json_output_matches_golden() {
    let run = run_fixture();
    let rendered = render_json(&run.findings, run.files_scanned);
    assert_eq!(rendered.trim_end(), expected("expected.json").trim_end());
}

#[test]
fn findings_are_deterministic_across_runs() {
    let a = run_fixture();
    let b = run_fixture();
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn findings_are_sorted() {
    let run = run_fixture();
    let mut sorted = run.findings.clone();
    sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    assert_eq!(run.findings, sorted);
}

#[test]
fn every_rule_fires_in_the_fixture() {
    let run = run_fixture();
    for rule in RULES {
        assert!(
            run.findings.iter().any(|f| f.rule == rule.name),
            "rule {} produced no fixture finding",
            rule.name
        );
    }
    // The unused-allow meta-rule fires for both the no-op pragma and the
    // unknown-rule pragma.
    let unused = run
        .findings
        .iter()
        .filter(|f| f.rule == UNUSED_ALLOW)
        .count();
    assert_eq!(unused, 2);
}

#[test]
fn pragma_suppresses_the_same_line_only() {
    let run = run_fixture();
    // pragmas.rs line 5 holds a pragma-suppressed `.unwrap()`: no
    // no-panic-in-lib finding may point there.
    assert!(!run
        .findings
        .iter()
        .any(|f| f.file.ends_with("pragmas.rs") && f.rule == "no-panic-in-lib"));
}

#[test]
fn test_code_is_exempt() {
    let run = run_fixture();
    assert!(!run.findings.iter().any(|f| f.file.ends_with("testcode.rs")));
}

#[test]
fn lock_rule_fires_inside_its_corpus_scope() {
    // worker.rs holds two acquisitions: the bare one at line 8 must fire,
    // the pragma-carrying one must not.
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("worker.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no-shared-lock-in-worker-loop");
}

#[test]
fn lock_rule_is_silent_outside_its_scope() {
    // unscoped.rs locks a mutex but sits outside the rule's `only` paths.
    let run = run_fixture();
    assert!(!run.findings.iter().any(|f| f.file.ends_with("unscoped.rs")));
}

#[test]
fn panic_reachability_reports_the_chain_and_honors_site_pragmas() {
    // panics.rs: `entry -> helper` reaches an `unreachable!`; the
    // pragma-gated twin (`entry_checked -> checked_helper`) stays silent
    // and its pragma counts as used (no unused-allow for panics.rs).
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("panics.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "panic-reachability");
    assert!(
        hits[0].message.contains("`entry -> helper`"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_reports_the_contradicting_acquisition_only() {
    // ordering.rs: `grow` establishes index -> props; `shrink`
    // contradicts it (reported at the inner acquisition); `rebalance`
    // contradicts it under a pragma (silent).
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("ordering.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "lock-order");
    assert!(
        hits[0].message.contains("`index` -> `props`"),
        "{}",
        hits[0].message
    );
}

#[test]
fn unordered_iter_flow_fires_on_the_sink_and_sorting_cleanses() {
    // taint.rs: `render` pushes HashMap keys into a String (reported at
    // the sink); `render_debug` carries a pragma on the sink line;
    // `render_sorted` sorts first — both silent.
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("taint.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "unordered-iter-flow");
    assert!(hits[0].message.contains("push_str"), "{}", hits[0].message);
}

#[test]
fn deadline_propagation_fires_on_the_dropped_budget_only() {
    // deadline.rs: `handle` invents a fresh Deadline (reported at the
    // call); `handle_probe` does so under a pragma and `handle_scored`
    // threads the parameter — both silent.
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("deadline.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "deadline-propagation");
    assert_eq!(hits[0].fix_hint, "pass `deadline` through to `score`");
}

#[test]
fn flow_rules_are_silent_outside_their_scope() {
    // outside.rs mirrors all four flow violations but sits outside the
    // flow rules' `only` paths.
    let run = run_fixture();
    assert!(!run.findings.iter().any(|f| f.file.ends_with("outside.rs")));
}

#[test]
fn worker_counts_do_not_change_the_output() {
    let root = fixture_root();
    let config = load_config(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let baseline = run_fixture();
    for workers in [1, 2, 4, 8] {
        let opts = LintOptions {
            workers,
            cache_path: None,
        };
        let run = lint_workspace_with(&root, &config, &opts).expect("fixture workspace lints");
        assert_eq!(
            render_json(&run.findings, run.files_scanned),
            render_json(&baseline.findings, baseline.files_scanned),
            "output differs at {workers} workers"
        );
    }
}

#[test]
fn warm_cache_reuses_every_file_and_matches_the_cold_run() {
    let root = fixture_root();
    let config = load_config(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let dir = std::env::temp_dir().join(format!("surveyor-lint-golden-{}", std::process::id()));
    let cache = dir.join("cache.json");
    let _ = std::fs::remove_file(&cache);
    let opts = LintOptions {
        workers: 2,
        cache_path: Some(cache.clone()),
    };
    let cold = lint_workspace_with(&root, &config, &opts).expect("cold run lints");
    assert_eq!(cold.files_reused, 0);
    let warm = lint_workspace_with(&root, &config, &opts).expect("warm run lints");
    assert_eq!(warm.files_reused, warm.files_scanned);
    assert_eq!(cold.findings, warm.findings);
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn wire_scope_catches_panics_and_unordered_iteration() {
    // The wire fixture file mirrors the real lint.toml scoping over
    // crates/wire/src: the snapshot decoder must stay panic-free on
    // untrusted bytes and byte-stable on encode, so both rules fire.
    let run = run_fixture();
    let rules: Vec<&str> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("wire/src/decode.rs"))
        .map(|f| f.rule.as_str())
        .collect();
    assert_eq!(rules.len(), 2, "{rules:?}");
    assert!(rules.contains(&"no-unordered-iter"));
    assert!(rules.contains(&"no-panic-in-lib"));
}
