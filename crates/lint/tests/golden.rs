//! Golden tests: the linter's findings over the fixture workspace must
//! match the committed expected outputs byte for byte.
//!
//! The fixture workspace under `tests/fixtures/ws/` reintroduces one
//! violation per rule (plus pragma-suppression, unused-pragma, and
//! cfg(test)-exemption cases); the goldens pin the exact sorted finding
//! list, so any change to matching, ordering, or message wording shows up
//! as a diff. Regenerate with:
//!
//! ```text
//! cargo run --release -p surveyor-lint -- --root crates/lint/tests/fixtures/ws \
//!     > crates/lint/tests/fixtures/expected.txt
//! ```

use std::path::{Path, PathBuf};
use surveyor_lint::output::{render_human, render_json};
use surveyor_lint::rules::{RULES, UNUSED_ALLOW};
use surveyor_lint::{lint_workspace, load_config};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn expected(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading golden {}: {e}", path.display()))
}

fn run_fixture() -> surveyor_lint::LintRun {
    let root = fixture_root();
    let config = load_config(&root.join("lint.toml")).expect("fixture lint.toml parses");
    lint_workspace(&root, &config).expect("fixture workspace lints")
}

#[test]
fn human_output_matches_golden() {
    let run = run_fixture();
    let rendered = render_human(&run.findings, run.files_scanned);
    assert_eq!(rendered.trim_end(), expected("expected.txt").trim_end());
}

#[test]
fn json_output_matches_golden() {
    let run = run_fixture();
    let rendered = render_json(&run.findings, run.files_scanned);
    assert_eq!(rendered.trim_end(), expected("expected.json").trim_end());
}

#[test]
fn findings_are_deterministic_across_runs() {
    let a = run_fixture();
    let b = run_fixture();
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn findings_are_sorted() {
    let run = run_fixture();
    let mut sorted = run.findings.clone();
    sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    assert_eq!(run.findings, sorted);
}

#[test]
fn every_rule_fires_in_the_fixture() {
    let run = run_fixture();
    for rule in RULES {
        assert!(
            run.findings.iter().any(|f| f.rule == rule.name),
            "rule {} produced no fixture finding",
            rule.name
        );
    }
    // The unused-allow meta-rule fires for both the no-op pragma and the
    // unknown-rule pragma.
    let unused = run
        .findings
        .iter()
        .filter(|f| f.rule == UNUSED_ALLOW)
        .count();
    assert_eq!(unused, 2);
}

#[test]
fn pragma_suppresses_the_same_line_only() {
    let run = run_fixture();
    // pragmas.rs line 5 holds a pragma-suppressed `.unwrap()`: no
    // no-panic-in-lib finding may point there.
    assert!(!run
        .findings
        .iter()
        .any(|f| f.file.ends_with("pragmas.rs") && f.rule == "no-panic-in-lib"));
}

#[test]
fn test_code_is_exempt() {
    let run = run_fixture();
    assert!(!run.findings.iter().any(|f| f.file.ends_with("testcode.rs")));
}

#[test]
fn lock_rule_fires_inside_its_corpus_scope() {
    // worker.rs holds two acquisitions: the bare one at line 8 must fire,
    // the pragma-carrying one must not.
    let run = run_fixture();
    let hits: Vec<_> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("worker.rs"))
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "no-shared-lock-in-worker-loop");
}

#[test]
fn lock_rule_is_silent_outside_its_scope() {
    // unscoped.rs locks a mutex but sits outside the rule's `only` paths.
    let run = run_fixture();
    assert!(!run.findings.iter().any(|f| f.file.ends_with("unscoped.rs")));
}

#[test]
fn wire_scope_catches_panics_and_unordered_iteration() {
    // The wire fixture file mirrors the real lint.toml scoping over
    // crates/wire/src: the snapshot decoder must stay panic-free on
    // untrusted bytes and byte-stable on encode, so both rules fire.
    let run = run_fixture();
    let rules: Vec<&str> = run
        .findings
        .iter()
        .filter(|f| f.file.ends_with("wire/src/decode.rs"))
        .map(|f| f.rule.as_str())
        .collect();
    assert_eq!(rules.len(), 2, "{rules:?}");
    assert!(rules.contains(&"no-unordered-iter"));
    assert!(rules.contains(&"no-panic-in-lib"));
}
