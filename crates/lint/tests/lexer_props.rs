//! Property tests: the lexer never panics and its tokens tile the input.
//!
//! The linter runs over every byte the walker hands it — including files
//! that are not valid Rust, not valid UTF-8, or truncated mid-literal. The
//! lexer's contract is total: any byte string lexes to a token stream whose
//! spans are non-empty, contiguous, start at 0, and end at the input
//! length, so concatenating `token.text(src)` reproduces the input exactly.

use proptest::prelude::*;
use surveyor_lint::lexer::{lex, LineIndex};

/// Asserts the tiling invariant for one input.
fn assert_tiles(src: &[u8]) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos}");
        assert!(t.end > t.start, "zero-width token at byte {pos}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover the whole input");
    let rebuilt: Vec<u8> = tokens.iter().flat_map(|t| t.text(src).to_vec()).collect();
    assert_eq!(rebuilt, src, "token texts must concatenate to the input");
}

proptest! {
    #[test]
    fn arbitrary_bytes_lex_without_panic(
        bytes in prop::collection::vec(0u8..=255, 0..400)
    ) {
        assert_tiles(&bytes);
    }

    #[test]
    fn rust_flavoured_bytes_lex_without_panic(
        pieces in prop::collection::vec(prop_oneof![
            Just("fn "), Just("r#\""), Just("r##"), Just("\""), Just("'"),
            Just("'a"), Just("//"), Just("/*"), Just("*/"), Just("\n"),
            Just("\\"), Just("b\""), Just("0x1f"), Just("1.5e-3"), Just("::"),
            Just("unwrap()"), Just("é"), Just("#"), Just("r#match"),
            Just("// lint:allow(no-panic-in-lib)")
        ], 0..60)
    ) {
        // Adversarial concatenations of Rust lexical fragments: unterminated
        // literals, dangling raw-string fences, stray escapes.
        let src: String = pieces.concat();
        assert_tiles(src.as_bytes());
    }

    #[test]
    fn line_index_agrees_with_manual_count(
        pieces in prop::collection::vec(prop_oneof![
            Just("x"), Just("\n"), Just("ab"), Just("\r\n"), Just("é")
        ], 0..80),
        probe in 0usize..200
    ) {
        let src: String = pieces.concat();
        let bytes = src.as_bytes();
        let offset = probe.min(bytes.len());
        let index = LineIndex::new(bytes);
        let (line, col) = index.line_col(offset);
        // Manual recount: 1-based line is newlines before offset + 1,
        // 1-based col is bytes since the last newline + 1.
        let newlines = bytes[..offset].iter().filter(|&&b| b == b'\n').count();
        let line_start = bytes[..offset]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        prop_assert_eq!(line as usize, newlines + 1);
        prop_assert_eq!(col as usize, offset - line_start + 1);
    }
}

#[test]
fn fixed_edge_cases_tile() {
    let cases: &[&[u8]] = &[
        b"",
        b"\"unterminated",
        b"r#\"never closed",
        b"r####",
        b"/* nested /* deeper */ still open",
        b"'",
        b"'\\",
        b"b'",
        b"0b",
        b"1..=2",
        b"\xff\xfe\x00",
        "é'é'é".as_bytes(),
        b"r#match r#\"raw\"# r\"plain\"",
    ];
    for case in cases {
        let tokens = lex(case);
        let total: usize = tokens.iter().map(|t| t.end - t.start).sum();
        assert_eq!(total, case.len());
    }
}
