//! Fixture: the server-scope cases. The real crates/server/src is
//! covered by no-panic-in-lib (a worker panic must stay one isolated
//! 500), no-wall-clock (only the deadline anchor may read the clock,
//! under a pragma), and no-unordered-iter (JSON response bodies must be
//! byte-stable across identical requests), mirroring lint.toml.

use std::collections::HashMap;
use std::time::Instant;

pub struct Stamp(Instant);

pub fn stamp() -> Stamp {
    Stamp(Instant::now()) // lint:allow(no-wall-clock): deadline anchor mirror — suppressed, no finding here
}

pub fn render_counters(counters: &HashMap<String, u64>) -> String {
    let mut body = String::new();
    for (name, value) in counters {
        body.push_str(&format!("{name}: {value}\n"));
    }
    body
}

pub fn parse_status(head: &str) -> u16 {
    head.split(' ').nth(1).unwrap().parse().unwrap()
}
