//! Fixture: a lock acquisition OUTSIDE the lock rule's `only` scope.
//! No finding may point here — this file proves the scoping works.

use std::sync::Mutex;

pub fn drain(shared: &Mutex<Vec<u32>>) -> usize {
    shared.lock().map(|v| v.len()).unwrap_or(0)
}
