//! Out-of-scope mirrors of the flow-rule fixtures: every pattern below
//! fires inside `crates/flow/src/`, but this crate sits outside the
//! flow rules' `only` paths, so the goldens must stay silent here.

use std::collections::HashMap;
use std::sync::RwLock;

pub fn entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    match v.first() {
        Some(first) => *first,
        None => unreachable!("mirrors the flow fixture"),
    }
}

pub struct Pair {
    pub left: RwLock<Vec<u32>>,
    pub right: RwLock<Vec<u32>>,
}

pub fn forward(p: &Pair) {
    let left = p.left.write();
    let right = p.right.write();
    drop((left, right));
}

pub fn backward(p: &Pair) {
    let right = p.right.write();
    let left = p.left.write();
    drop((left, right));
}

pub fn render(m: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for key in m.keys() {
        out.push_str(key);
    }
    out
}

pub struct Deadline {
    pub remaining_ms: u64,
}

pub fn handle(query: &str, deadline: &Deadline) -> u64 {
    let fresh = Deadline { remaining_ms: 50 };
    score(query, &fresh)
}

fn score(query: &str, deadline: &Deadline) -> u64 {
    query.len() as u64 + deadline.remaining_ms
}
