//! Fixture: violations inside the wire decoder's scope. The real
//! crates/wire/src is covered by both no-panic-in-lib (hostile bytes
//! must yield typed errors, never a panic) and no-unordered-iter (the
//! snapshot encoding must be byte-stable), mirroring lint.toml.

use std::collections::HashMap;

pub fn section_lengths(header: &[u8]) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    let tag = std::str::from_utf8(&header[..4]).unwrap();
    out.insert(tag.to_owned(), header.len());
    out
}
