//! panic-reachability fixtures: a panic site buried one call deep
//! behind a public fn, plus a pragma-gated invariant that must stay
//! silent (and mark its pragma used).

pub fn entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    match v.first() {
        Some(first) => *first,
        None => unreachable!("fixture: reachable from entry"),
    }
}

pub fn entry_checked(v: &[u32]) -> u32 {
    checked_helper(v)
}

fn checked_helper(v: &[u32]) -> u32 {
    match v.first() {
        Some(first) => *first,
        None => unreachable!("callers check emptiness"), // lint:allow(panic-reachability): every caller guards with is_empty
    }
}
