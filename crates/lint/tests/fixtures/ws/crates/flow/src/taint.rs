//! unordered-iter-flow fixtures: HashMap iteration reaching a
//! serialization sink (reported), the same flow with a pragma on the
//! sink line (silent, pragma used), and a sort-cleansed copy (silent).

use std::collections::HashMap;

pub fn render(m: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for key in m.keys() {
        out.push_str(key);
    }
    out
}

pub fn render_debug(m: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for key in m.keys() {
        out.push_str(key); // lint:allow(unordered-iter-flow): debug dump, never diffed or snapshotted
    }
    out
}

pub fn render_sorted(m: &HashMap<String, u32>) -> String {
    let mut keys: Vec<&String> = m.keys().collect();
    keys.sort();
    let mut out = String::new();
    for key in keys {
        out.push_str(key);
    }
    out
}
