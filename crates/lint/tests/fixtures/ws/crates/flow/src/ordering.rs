//! lock-order fixtures: `grow` establishes the canonical
//! `index` -> `props` nesting; `shrink` contradicts it and must be
//! reported; `rebalance` contradicts it too but carries a pragma.

use std::sync::RwLock;

pub struct Shards {
    pub index: RwLock<Vec<u32>>,
    pub props: RwLock<Vec<u32>>,
}

pub fn grow(s: &Shards) {
    let index = s.index.write();
    let props = s.props.write();
    drop((index, props));
}

pub fn shrink(s: &Shards) {
    let props = s.props.write();
    let index = s.index.write();
    drop((index, props));
}

pub fn rebalance(s: &Shards) {
    let props = s.props.write();
    let index = s.index.write(); // lint:allow(lock-order): single-threaded maintenance path, no concurrent grow
    drop((index, props));
}
