//! deadline-propagation fixtures: `handle` invents a fresh budget
//! instead of threading the request deadline (reported), `handle_probe`
//! does the same with a pragma (silent, pragma used), and
//! `handle_scored` threads it correctly (silent).

pub struct Deadline {
    pub remaining_ms: u64,
}

pub fn handle(query: &str, deadline: &Deadline) -> u64 {
    let fresh = Deadline { remaining_ms: 50 };
    score(query, &fresh)
}

pub fn handle_probe(query: &str, deadline: &Deadline) -> u64 {
    let unbounded = Deadline {
        remaining_ms: u64::MAX,
    };
    score(query, &unbounded) // lint:allow(deadline-propagation): health probe runs unbounded by design
}

pub fn handle_scored(query: &str, deadline: &Deadline) -> u64 {
    score(query, deadline)
}

fn score(query: &str, deadline: &Deadline) -> u64 {
    query.len() as u64 + deadline.remaining_ms
}
