//! Fixture: shared-lock acquisitions in corpus-generation worker code.
//! The lock rule's `only` scope covers this tree, so both acquisitions
//! below must fire; the pragma-carrying one must not.

use std::sync::Mutex;

pub fn merge_shard(shared: &Mutex<Vec<String>>, shard: Vec<String>) {
    if let Ok(mut docs) = shared.lock() {
        docs.extend(shard);
    }
}

pub fn shard_len(shared: &Mutex<Vec<String>>) -> usize {
    shared.lock().map(|v| v.len()).unwrap_or(0) // lint:allow(no-shared-lock-in-worker-loop): once per run, outside the claim loop
}
