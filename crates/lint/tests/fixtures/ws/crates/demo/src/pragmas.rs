//! Fixture: pragma suppression, unused pragmas, and unknown rule names.

/// Doc comments mentioning `lint:allow(no-panic-in-lib)` are not pragmas.
pub fn suppressed(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(no-panic-in-lib): fixture invariant
}

pub fn clean() -> u32 {
    7 // lint:allow(no-panic-in-lib): nothing to suppress here
}

pub fn misspelled() -> u32 {
    9 // lint:allow(no-such-rule)
}
