//! Fixture crate root: missing `#![forbid(unsafe_code)]`, panics, prints.

pub fn first_char(s: &str) -> char {
    s.chars().next().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("value required")
}

pub fn shout(msg: &str) {
    println!("{msg}");
    eprintln!("{msg}");
}

pub fn unfinished() {
    todo!()
}
