//! Fixture: shared-lock acquisitions in worker code.

use std::sync::{Mutex, RwLock};

pub fn drain(shared: &Mutex<Vec<u32>>) -> usize {
    shared.lock().map(|v| v.len()).unwrap_or(0)
}

pub fn snapshot(table: &RwLock<Vec<u32>>) -> usize {
    table.read().map(|v| v.len()).unwrap_or(0)
}

pub fn publish(table: &RwLock<Vec<u32>>, value: u32) {
    if let Ok(mut v) = table.write() {
        v.push(value);
    }
}

pub fn allowed(shared: &Mutex<Vec<u32>>) -> usize {
    shared.lock().map(|v| v.len()).unwrap_or(0) // lint:allow(no-shared-lock-in-worker-loop): outside the worker loop, once per run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_lock() {
        let shared = Mutex::new(vec![1, 2]);
        assert_eq!(shared.lock().map(|v| v.len()).unwrap_or(0), 2);
    }
}
