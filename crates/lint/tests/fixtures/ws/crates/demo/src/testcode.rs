//! Fixture: test code is exempt from panic and print rules.

pub fn double(v: u32) -> u32 {
    v * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles() {
        let v: Option<u32> = Some(2);
        assert_eq!(double(v.unwrap()), 4);
        println!("test output is fine");
    }
}
