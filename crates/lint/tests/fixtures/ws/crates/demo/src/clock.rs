//! Fixture: wall-clock reads and unseeded randomness.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    4
}

pub fn seed_from_nowhere() {
    let _rng = rand::rngs::StdRng::from_entropy();
}
