//! Fixture: unordered map in a serialization path.

use std::collections::HashMap;

pub fn tally(words: &[&str]) -> HashMap<String, u32> {
    let mut out: std::collections::HashMap<String, u32> = HashMap::new();
    for w in words {
        *out.entry((*w).to_owned()).or_default() += 1;
    }
    out
}
