//! Property tests: the token-tree parser is total and lossless.
//!
//! `syntax::parse` consumes the significant token stream of any byte
//! string — balanced or not — and must (a) never panic, (b) preserve
//! every token: flattening the trees back out reproduces the
//! significant stream exactly, byte-span for byte-span, and (c) degrade
//! on unbalanced input by recording unclosed groups (`close: None`) and
//! orphan closers (`Tree::Recovered`) instead of dropping tokens.

use proptest::prelude::*;
use surveyor_lint::lexer::lex;
use surveyor_lint::syntax::{flatten, parse, significant, Tree};

/// Parses one input and asserts the round-trip invariant: the flattened
/// trees are exactly the significant tokens, in order.
fn assert_roundtrip(src: &[u8]) {
    let tokens = lex(src);
    let sig = significant(&tokens);
    let trees = parse(&sig, src);
    let flat = flatten(&trees);
    assert_eq!(
        flat.len(),
        sig.len(),
        "flatten must preserve the token count"
    );
    for (a, b) in flat.iter().zip(&sig) {
        assert_eq!((a.start, a.end), (b.start, b.end), "span drift");
        assert_eq!(a.kind, b.kind, "kind drift at byte {}", a.start);
    }
}

/// Counts delimiter health over a tree forest: open groups missing
/// their closer and orphan closers recovered as leaves.
fn health(trees: &[Tree]) -> (usize, usize) {
    let mut unclosed = 0;
    let mut orphans = 0;
    for tree in trees {
        match tree {
            Tree::Leaf(_) => {}
            Tree::Recovered(_) => orphans += 1,
            Tree::Group(g) => {
                if g.close.is_none() {
                    unclosed += 1;
                }
                let (u, o) = health(&g.children);
                unclosed += u;
                orphans += o;
            }
        }
    }
    (unclosed, orphans)
}

proptest! {
    #[test]
    fn arbitrary_bytes_parse_without_panic(
        bytes in prop::collection::vec(0u8..=255, 0..400)
    ) {
        assert_roundtrip(&bytes);
    }

    #[test]
    fn rust_flavoured_fragments_parse_without_panic(
        pieces in prop::collection::vec(prop_oneof![
            Just("fn f"), Just("{"), Just("}"), Just("("), Just(")"),
            Just("["), Just("]"), Just("\""), Just("\"lit\""), Just("'"),
            Just("//"), Just("/*"), Just("*/"), Just("\n"), Just("impl X"),
            Just("pub fn "), Just("mod m"), Just("match x"), Just(";"),
            Just(".unwrap()"), Just("r#\""), Just("=> {"), Just("#[cfg(test)]")
        ], 0..60)
    ) {
        // Adversarial concatenations: unbalanced braces, delimiters
        // swallowed by unterminated strings and comments, item keywords
        // with no bodies.
        let src: String = pieces.concat();
        assert_roundtrip(src.as_bytes());
    }

    #[test]
    fn balanced_inputs_recover_nothing(
        depth in 0usize..8,
        stuffing in prop_oneof![Just("x"), Just("a.b()"), Just("1 + 2;"), Just("")]
    ) {
        // Well-nested delimiters parse with zero unclosed groups and
        // zero orphan closers at any nesting depth.
        let mut src = String::new();
        for _ in 0..depth { src.push_str("{ ("); }
        src.push_str(stuffing);
        for _ in 0..depth { src.push_str(") }"); }
        let tokens = lex(src.as_bytes());
        let sig = significant(&tokens);
        let trees = parse(&sig, src.as_bytes());
        prop_assert_eq!(health(&trees), (0, 0));
    }

    #[test]
    fn every_open_without_close_is_flagged(
        opens in 0usize..6
    ) {
        // N unmatched `{` produce exactly N unclosed groups, no orphans.
        let src = "{".repeat(opens);
        let tokens = lex(src.as_bytes());
        let sig = significant(&tokens);
        let trees = parse(&sig, src.as_bytes());
        prop_assert_eq!(health(&trees), (opens, 0));
    }

    #[test]
    fn every_close_without_open_is_recovered(
        closes in 0usize..6
    ) {
        // N unmatched `}` surface as N `Tree::Recovered` leaves.
        let src = "}".repeat(closes);
        let tokens = lex(src.as_bytes());
        let sig = significant(&tokens);
        let trees = parse(&sig, src.as_bytes());
        prop_assert_eq!(health(&trees), (0, closes));
    }
}

#[test]
fn fixed_edge_cases_roundtrip() {
    let cases: &[&[u8]] = &[
        b"",
        b"fn f() {",
        b"}}}{{{",
        b"fn f(a: u32 -> bool { [ ( } ] )",
        b"impl T { fn g(&self) }",
        b"\"{ not a brace }\"",
        b"// { comment brace\nfn h() {}",
        b"r#\"{ raw\"# }",
        b"\xff{\xfe}\x00",
        b"([{}])",
        b"(]",
    ];
    for case in cases {
        assert_roundtrip(case);
    }
}

#[test]
fn mismatched_delimiters_do_not_cross_pair() {
    // `(]` opens a paren group that never closes; the `]` is recovered
    // rather than closing the paren.
    let src = b"(]";
    let tokens = lex(src);
    let sig = significant(&tokens);
    let trees = parse(&sig, src);
    assert_eq!(health(&trees), (1, 1));
}
