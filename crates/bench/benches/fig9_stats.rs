//! Figure 9 bench: snapshot-statistics computation (percentiles over
//! entities, combinations, and types) and evidence grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use surveyor::extract::{run_sharded, EvidenceTable, ExtractionConfig, GroupedEvidence};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::presets;
use surveyor_eval::snapshot_stats::snapshot_stats;

fn evidence_fixture() -> (EvidenceTable, surveyor_corpus::World) {
    let world = presets::long_tail_world(25, 80, 6, 5);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 4,
            ..CorpusConfig::default()
        },
    );
    let source = CorpusSource::new(&generator);
    let evidence = run_sharded(&source, world.kb(), &ExtractionConfig::paper_final(), 2);
    (evidence, world)
}

fn bench_snapshot_stats(c: &mut Criterion) {
    let (evidence, world) = evidence_fixture();
    let mut group = c.benchmark_group("fig9");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("snapshot_stats", |b| {
        b.iter(|| snapshot_stats(black_box(&evidence), world.kb(), 25));
    });
    group.bench_function("group_by_type_property", |b| {
        b.iter(|| GroupedEvidence::from_table(black_box(&evidence), world.kb()));
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_stats);
criterion_main!(benches);
