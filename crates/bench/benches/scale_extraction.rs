//! Extraction scaling benches (§7.1): per-document annotation throughput
//! and sharded-runner scaling, the reproduction's stand-in for the
//! paper's "one hour on 5000 nodes for 40 TB".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use surveyor::extract::{extract_documents, run_sharded, ExtractionConfig};
use surveyor::nlp::{annotate, AnnotatedDocument, Lexicon};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::presets;

fn corpus_fixture() -> (CorpusGenerator, Lexicon, Vec<AnnotatedDocument>) {
    let world = presets::table2_world(5);
    let generator = CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: 4,
            ..CorpusConfig::default()
        },
    );
    let lexicon = generator.lexicon();
    let docs = generator.shard_annotated(0, &lexicon, None);
    (generator, lexicon, docs)
}

/// Raw NLP annotation throughput (tokenize + tag + parse + link).
fn bench_annotation(c: &mut Criterion) {
    let (generator, lexicon, _) = corpus_fixture();
    let raw: Vec<String> = generator
        .shard_text(0)
        .into_iter()
        .map(|d| d.text)
        .take(500)
        .collect();
    let kb = generator.world().kb().clone();
    let mut group = c.benchmark_group("annotation");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(raw.len() as u64));
    group.bench_function("annotate_500_docs", |b| {
        b.iter(|| {
            raw.iter()
                .enumerate()
                .map(|(i, text)| {
                    annotate(i as u64, black_box(text), &kb, &lexicon)
                        .sentences
                        .len()
                })
                .sum::<usize>()
        });
    });
    group.finish();
}

/// Pattern matching over pre-annotated documents (the map phase minus
/// parsing).
fn bench_pattern_extraction(c: &mut Criterion) {
    let (generator, _, docs) = corpus_fixture();
    let kb = generator.world().kb().clone();
    let config = ExtractionConfig::paper_final();
    let mut group = c.benchmark_group("pattern_extraction");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_function("extract_shard", |b| {
        b.iter(|| extract_documents(black_box(&docs), &kb, &config));
    });
    group.finish();
}

/// The full sharded runner (generation + annotation + extraction + merge)
/// across worker counts.
fn bench_sharded_runner(c: &mut Criterion) {
    let world = presets::table2_world(5);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 8,
            ..CorpusConfig::default()
        },
    );
    let mut group = c.benchmark_group("sharded_runner");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let source = CorpusSource::new(&generator);
                    run_sharded(
                        &source,
                        world.kb(),
                        &ExtractionConfig::paper_final(),
                        threads,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_annotation,
    bench_pattern_extraction,
    bench_sharded_runner
);
criterion_main!(benches);
