//! Table 4 bench: each extraction pattern version over the same
//! materialized snapshot — the cost of the version matrix of Appendix B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use surveyor::extract::{extract_documents, PatternVersion};
use surveyor::nlp::AnnotatedDocument;
use surveyor::prelude::*;
use surveyor_corpus::presets;

fn bench_versions(c: &mut Criterion) {
    let world = presets::table2_world(5);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 2,
            ..CorpusConfig::default()
        },
    );
    let lexicon = generator.lexicon();
    let docs: Vec<AnnotatedDocument> = (0..generator.shard_count())
        .flat_map(|s| generator.shard_annotated(s, &lexicon, None))
        .collect();
    let kb = world.kb().clone();

    let mut group = c.benchmark_group("table4_versions");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(docs.len() as u64));
    for version in PatternVersion::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{version:?}")),
            &version,
            |b, v| {
                let config = v.config();
                b.iter(|| extract_documents(black_box(&docs), &kb, &config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);
