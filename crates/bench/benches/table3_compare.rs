//! Table 3 / Figure 12 bench: the full §7.4 comparison (corpus → pipeline
//! → crowd judging → four methods scored) plus the per-method decision
//! phase in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::presets;
use surveyor_eval::comparison::{method_decisions, run_comparison, WebChildConfig};
use surveyor_eval::EvalSuite;

fn bench_full_comparison(c: &mut Criterion) {
    let world = presets::table2_world(5);
    let mut group = c.benchmark_group("table3");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.sample_size(10);
    group.bench_function("full_comparison", |b| {
        b.iter(|| {
            run_comparison(
                black_box(&world),
                CorpusConfig {
                    num_shards: 4,
                    ..CorpusConfig::default()
                },
                SurveyorConfig {
                    rho: 100,
                    threads: 1,
                    ..SurveyorConfig::default()
                },
                WebChildConfig::default(),
                500,
                Some(20),
            )
        });
    });
    group.finish();
}

fn bench_method_decisions(c: &mut Criterion) {
    let world = presets::table2_world(5);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 4,
            ..CorpusConfig::default()
        },
    );
    let surveyor = Surveyor::new(
        world.kb().clone(),
        SurveyorConfig {
            rho: 100,
            threads: 1,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    let suite = EvalSuite::from_world_limited(&world, 500, Some(20));
    let mut group = c.benchmark_group("table3");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("score_four_methods", |b| {
        b.iter(|| method_decisions(black_box(&suite), &output, WebChildConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_full_comparison, bench_method_decisions);
criterion_main!(benches);
