//! Figure 3 bench: the §2 empirical study end to end — 461 Californian
//! cities from text generation through model decisions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use surveyor::kb::seed::ATTR_POPULATION;
use surveyor::prelude::*;
use surveyor_corpus::presets;
use surveyor_eval::empirical::run_empirical;

fn bench_fig3(c: &mut Criterion) {
    let world = presets::big_cities_world(5);
    let mut group = c.benchmark_group("fig3");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("big_cities_study", |b| {
        b.iter(|| {
            run_empirical(
                black_box(&world),
                ATTR_POPULATION,
                CorpusConfig {
                    num_shards: 4,
                    ..CorpusConfig::default()
                },
                SurveyorConfig {
                    rho: 50,
                    threads: 1,
                    ..SurveyorConfig::default()
                },
            )
        });
    });
    group.finish();
}

/// The model-interpretation half alone (counts → EM → decisions) — the
/// part the paper timed at 10 minutes for 4B pairs.
fn bench_fig3_interpretation(c: &mut Criterion) {
    let world = presets::big_cities_world(5);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 4,
            ..CorpusConfig::default()
        },
    );
    let surveyor = Surveyor::new(
        world.kb().clone(),
        SurveyorConfig {
            rho: 50,
            threads: 1,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&surveyor::CorpusSource::new(&generator));
    let evidence = output.evidence;
    let mut group = c.benchmark_group("fig3");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("interpretation_only", |b| {
        b.iter(|| surveyor.run_on_evidence(black_box(evidence.clone())));
    });
    group.finish();
}

criterion_group!(benches, bench_fig3, bench_fig3_interpretation);
criterion_main!(benches);
