//! EM scaling benches (§6/§7.1): each iteration is O(m) in the number of
//! entities and independent of how many mentions produced the counts —
//! the property that let the paper run EM over 4 billion pairs in ten
//! minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use surveyor_model::{fit, posterior_positive, EmConfig, ModelParams, ObservedCounts};
use surveyor_prob::Poisson;

fn synth_counts(m: usize, scale: f64, seed: u64) -> Vec<ObservedCounts> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|i| {
            let (lp, ln) = if i % 4 == 0 {
                (30.0 * scale, 1.0 * scale)
            } else {
                (2.0 * scale, 0.6 * scale)
            };
            ObservedCounts::new(
                Poisson::new(lp).sample(&mut rng),
                Poisson::new(ln).sample(&mut rng),
            )
        })
        .collect()
}

/// EM runtime must grow linearly with the entity count.
fn bench_em_entities(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_fit_entities");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for m in [1_000usize, 10_000, 100_000] {
        let counts = synth_counts(m, 1.0, 7);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &counts, |b, counts| {
            b.iter(|| fit(black_box(counts), &EmConfig::default()));
        });
    }
    group.finish();
}

/// EM runtime must be flat in the *mention* volume: scaling every count
/// by 10x changes the numbers inside the tuples, not the work.
fn bench_em_mention_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_fit_mention_volume");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for scale in [1u32, 10, 100] {
        let counts = synth_counts(20_000, scale as f64, 11);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &counts, |b, counts| {
            b.iter(|| fit(black_box(counts), &EmConfig::default()));
        });
    }
    group.finish();
}

/// Posterior inference throughput (Algorithm 1's inner loop over 4B pairs).
fn bench_posterior(c: &mut Criterion) {
    let params = ModelParams::new(0.9, 30.0, 3.0);
    let counts = synth_counts(10_000, 1.0, 3);
    let mut group = c.benchmark_group("posterior");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(counts.len() as u64));
    group.bench_function("posterior_10k_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &c in &counts {
                acc += posterior_positive(black_box(c), &params);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_em_entities,
    bench_em_mention_independence,
    bench_posterior
);
criterion_main!(benches);
