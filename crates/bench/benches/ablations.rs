//! Ablation benches for the design choices DESIGN.md calls out: the EM
//! multi-start and pA-grid resolution (cost vs the closed-form speed the
//! paper claims), the NLP parser on each sentence family, and the
//! negation-path polarity walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use surveyor::extract::polarity::statement_polarity;
use surveyor::nlp::{parse, tokenize, Lexicon};
use surveyor_model::{fit, EmConfig, ObservedCounts};
use surveyor_prob::Poisson;

fn synth_counts(m: usize, seed: u64) -> Vec<ObservedCounts> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|i| {
            let (lp, ln) = if i % 4 == 0 { (25.0, 1.0) } else { (1.5, 0.4) };
            ObservedCounts::new(
                Poisson::new(lp).sample(&mut rng),
                Poisson::new(ln).sample(&mut rng),
            )
        })
        .collect()
}

/// EM cost vs multi-start count: the restart strategy triples the work —
/// is the closed-form step cheap enough to afford it? (Yes.)
fn bench_em_restarts(c: &mut Criterion) {
    let counts = synth_counts(20_000, 3);
    let mut group = c.benchmark_group("ablation_em_restarts");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for restarts in [1usize, 3, 6] {
        let config = EmConfig {
            restart_shares: (0..restarts).map(|i| 0.5 / (i + 1) as f64).collect(),
            ..EmConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(restarts),
            &config,
            |b, config| {
                b.iter(|| fit(black_box(&counts), config));
            },
        );
    }
    group.finish();
}

/// EM cost vs pA-grid resolution (the paper fixes a grid "to speed up
/// computations"; this measures what finer grids would cost).
fn bench_em_grid(c: &mut Criterion) {
    let counts = synth_counts(20_000, 9);
    let mut group = c.benchmark_group("ablation_em_grid");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for points in [5usize, 25, 125] {
        let grid: Vec<f64> = (0..points)
            .map(|i| 0.5 + 0.49 * (i as f64) / (points.max(2) - 1) as f64)
            .collect();
        let config = EmConfig {
            pa_grid: grid,
            ..EmConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(points), &config, |b, config| {
            b.iter(|| fit(black_box(&counts), config));
        });
    }
    group.finish();
}

/// Parser cost per sentence family (Figure 4's pattern inputs).
fn bench_parser_families(c: &mut Criterion) {
    let families = [
        ("acomp", "San Francisco is very big"),
        ("pred_nominal", "San Francisco is not a very big city"),
        ("embedded", "I don't think that snakes are never dangerous"),
        ("conjunction", "Soccer is a fast and exciting sport"),
        ("attributive", "I love the cute kitten"),
        ("constriction", "New York is bad for parking in the winter"),
    ];
    let lexicon = Lexicon::new();
    let mut group = c.benchmark_group("ablation_parser");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, sentence) in families {
        let mut tokens = tokenize(sentence);
        lexicon.tag(&mut tokens);
        group.bench_with_input(BenchmarkId::from_parameter(name), &tokens, |b, tokens| {
            b.iter(|| parse(black_box(tokens)));
        });
    }
    group.finish();
}

/// The negation-path polarity walk of Figure 5.
fn bench_polarity(c: &mut Criterion) {
    let lexicon = Lexicon::new();
    let mut tokens = tokenize("I don't think that snakes are never dangerous");
    lexicon.tag(&mut tokens);
    let tree = parse(&tokens).unwrap();
    let property = (0..tokens.len())
        .position(|i| tokens.lower_of(i) == "dangerous")
        .unwrap();
    let mut group = c.benchmark_group("ablation_polarity");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("negation_path_walk", |b| {
        b.iter(|| statement_polarity(black_box(&tree), property));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_em_restarts,
    bench_em_grid,
    bench_parser_families,
    bench_polarity
);
criterion_main!(benches);
