//! The scaling-regression gate behind `bench scale --assert-scaling`.
//!
//! A `BENCH_scale.json` artifact carries one speedup curve per pipeline
//! phase (`generation`, `extraction`, `model`, `group`). This module
//! compares each curve against a per-phase *target curve* derived from a
//! parallel-efficiency constant, and renders a verdict object that the
//! bench binary embeds in the artifact and turns into a nonzero exit on
//! regression — so a quietly re-serialized phase fails CI instead of
//! hiding in a JSON file nobody reads.
//!
//! The target for a phase with efficiency `e` at `t` threads on a host
//! with `c` CPUs is
//!
//! ```text
//! required(t) = 1 + (min(t, c) − 1) · e
//! ```
//!
//! and a measured speedup passes when it reaches
//! `required(t) · (1 − tolerance)`. Two properties make this 1-CPU-safe:
//! `min(t, c)` caps the expectation at physical parallelism (on a 1-CPU
//! host every target collapses to 1.0, so only a genuine *slowdown*
//! beyond the tolerance fails), and the tolerance absorbs scheduler noise
//! on shared hosts.

use serde_json::{json, Value};

/// Per-phase parallel-efficiency targets. `generation` and `extraction`
/// are embarrassingly parallel over shards (near-linear is expected);
/// `model` fans over combinations whose sizes skew, and `group` pays a
/// serial merge + sort tail — their targets are correspondingly lower.
pub const PHASE_EFFICIENCY: &[(&str, f64)] = &[
    ("generation", 0.70),
    ("extraction", 0.70),
    ("model", 0.50),
    ("group", 0.30),
];

/// Default slack applied to every target curve.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Rows faster than this are exempt from the curve check: a speedup ratio
/// between two sub-10ms medians is timer jitter, not a scaling signal.
/// Quick-mode smoke runs shrink some phases below this floor; full runs
/// keep every phase well above it, so the gate still bites where it can
/// actually measure.
pub const NOISE_FLOOR_SECONDS: f64 = 0.01;

/// Minimum speedup the target curve requires at `threads` threads.
pub fn required_speedup(threads: u64, host_cpus: u64, efficiency: f64) -> f64 {
    let usable = threads.min(host_cpus.max(1)) as f64;
    1.0 + (usable - 1.0) * efficiency
}

/// Evaluates every phase curve in `artifact` against its target curve and
/// returns the `assert_scaling` verdict object: per-phase pass/fail with
/// the worst-margin row, plus an overall `verdict` of `"pass"` or
/// `"fail"`. Phases absent from the artifact fail (a regression gate that
/// silently skips a missing curve is no gate).
pub fn evaluate(artifact: &Value, tolerance: f64) -> Value {
    let host_cpus = artifact["host_cpus"].as_u64().unwrap_or(1);
    let mut phases = serde_json::Map::new();
    let mut all_pass = true;
    for &(phase, efficiency) in PHASE_EFFICIENCY {
        let entry = evaluate_phase(artifact, phase, efficiency, host_cpus, tolerance);
        all_pass &= entry["pass"].as_bool() == Some(true);
        phases.insert(phase.to_owned(), entry);
    }
    json!({
        "tolerance": tolerance,
        "host_cpus": host_cpus,
        "phases": Value::Object(phases),
        "verdict": if all_pass { "pass" } else { "fail" },
    })
}

/// Whether an [`evaluate`] verdict object passed.
pub fn passed(verdict: &Value) -> bool {
    verdict["verdict"].as_str() == Some("pass")
}

/// Renders the verdict as a short human-readable block.
pub fn render(verdict: &Value) -> String {
    let mut lines = vec![format!(
        "assert-scaling (tolerance {:.0}%, {} host CPUs): {}",
        verdict["tolerance"].as_f64().unwrap_or(0.0) * 100.0,
        verdict["host_cpus"].as_u64().unwrap_or(1),
        verdict["verdict"].as_str().unwrap_or("fail"),
    )];
    if let Some(phases) = verdict["phases"].as_object() {
        for (phase, entry) in phases {
            let status = if entry["pass"].as_bool() == Some(true) {
                "pass"
            } else {
                "FAIL"
            };
            let worst = &entry["worst"];
            if worst.is_null() {
                lines.push(format!(
                    "  {phase:<11} {status} — all rows below {NOISE_FLOOR_SECONDS}s noise floor",
                ));
            } else {
                lines.push(format!(
                    "  {phase:<11} {status} — worst {:.2}x vs {:.2}x required at {} threads",
                    worst["speedup"].as_f64().unwrap_or(0.0),
                    worst["allowed"].as_f64().unwrap_or(0.0),
                    worst["threads"].as_u64().unwrap_or(0),
                ));
            }
        }
    }
    lines.join("\n")
}

/// One phase's curve check: every row above the noise floor must reach its
/// slacked target; the reported `worst` row is the one with the smallest
/// margin. A phase whose rows are all below the floor passes vacuously
/// (there is nothing to measure) with `worst: null`.
fn evaluate_phase(
    artifact: &Value,
    phase: &str,
    efficiency: f64,
    host_cpus: u64,
    tolerance: f64,
) -> Value {
    let Some(rows) = artifact["phases"][phase]
        .as_array()
        .filter(|r| !r.is_empty())
    else {
        return json!({
            "efficiency_target": efficiency,
            "pass": false,
            "error": format!("phases.{phase} missing or empty"),
        });
    };
    let mut pass = true;
    let mut checked = 0usize;
    let mut worst: Option<(f64, Value)> = None;
    for row in rows {
        let threads = row["threads"].as_u64().unwrap_or(1);
        let seconds = row["seconds"].as_f64().unwrap_or(0.0);
        if seconds < NOISE_FLOOR_SECONDS {
            continue;
        }
        checked += 1;
        let speedup = row["speedup"].as_f64().unwrap_or(0.0);
        let required = required_speedup(threads, host_cpus, efficiency);
        let allowed = required * (1.0 - tolerance);
        let margin = speedup - allowed;
        pass &= margin >= 0.0;
        let detail = json!({
            "threads": threads,
            "speedup": speedup,
            "required": required,
            "allowed": allowed,
        });
        if worst.as_ref().is_none_or(|(m, _)| margin < *m) {
            worst = Some((margin, detail));
        }
    }
    json!({
        "efficiency_target": efficiency,
        "pass": pass,
        "rows_checked": checked,
        "rows_below_floor": rows.len() - checked,
        "worst": worst.map(|(_, detail)| detail).unwrap_or(Value::Null),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_rows(curve: &[f64]) -> Vec<Value> {
        curve
            .iter()
            .enumerate()
            .map(|(i, s)| json!({"threads": 1u64 << i, "seconds": 1.0, "speedup": s}))
            .collect()
    }

    fn artifact(host_cpus: u64, speedups: &[(&str, &[f64])]) -> Value {
        let mut phases = serde_json::Map::new();
        for (phase, curve) in speedups {
            phases.insert((*phase).to_owned(), json!(phase_rows(curve)));
        }
        json!({"host_cpus": host_cpus, "phases": Value::Object(phases)})
    }

    const FLAT: &[f64] = &[1.0, 1.0, 1.0, 1.0];

    #[test]
    fn required_speedup_caps_at_host_cpus() {
        assert_eq!(required_speedup(1, 8, 0.7), 1.0);
        assert_eq!(required_speedup(8, 8, 1.0), 8.0);
        assert_eq!(required_speedup(8, 1, 0.7), 1.0);
        assert_eq!(required_speedup(8, 4, 0.5), 2.5);
    }

    #[test]
    fn flat_curves_pass_on_one_cpu() {
        let artifact = artifact(
            1,
            &[
                ("generation", FLAT),
                ("extraction", FLAT),
                ("model", FLAT),
                ("group", FLAT),
            ],
        );
        let verdict = evaluate(&artifact, DEFAULT_TOLERANCE);
        assert!(passed(&verdict), "{verdict:?}");
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_even_on_one_cpu() {
        let artifact = artifact(
            1,
            &[
                ("generation", &[1.0, 0.5, 0.5, 0.5]),
                ("extraction", FLAT),
                ("model", FLAT),
                ("group", FLAT),
            ],
        );
        let verdict = evaluate(&artifact, DEFAULT_TOLERANCE);
        assert!(!passed(&verdict), "{verdict:?}");
        assert_eq!(verdict["phases"]["generation"]["pass"], json!(false));
        assert_eq!(verdict["phases"]["extraction"]["pass"], json!(true));
    }

    #[test]
    fn sublinear_curve_fails_on_multicore() {
        // 8 CPUs, but extraction stalls at 1.2x: required at 8 threads is
        // 1 + 7*0.7 = 5.9, allowed 4.425 — clear regression.
        let artifact = artifact(
            8,
            &[
                ("generation", &[1.0, 1.9, 3.6, 6.5]),
                ("extraction", &[1.0, 1.1, 1.2, 1.2]),
                ("model", &[1.0, 1.8, 3.2, 5.0]),
                ("group", &[1.0, 1.2, 1.5, 1.8]),
            ],
        );
        let verdict = evaluate(&artifact, DEFAULT_TOLERANCE);
        assert!(!passed(&verdict));
        assert_eq!(verdict["phases"]["extraction"]["pass"], json!(false));
        assert_eq!(verdict["phases"]["generation"]["pass"], json!(true));
        let worst = &verdict["phases"]["extraction"]["worst"];
        assert_eq!(worst["threads"], json!(8));
    }

    #[test]
    fn sub_floor_rows_are_exempt() {
        // A "0.4x slowdown" measured on microsecond medians is jitter, not
        // regression — the whole phase sits below the noise floor.
        let sub_floor: Vec<Value> = [1u64, 2, 4, 8]
            .iter()
            .map(|t| json!({"threads": t, "seconds": 0.0004, "speedup": 0.4}))
            .collect();
        let artifact = json!({
            "host_cpus": 1,
            "phases": json!({
                "generation": phase_rows(FLAT),
                "extraction": phase_rows(FLAT),
                "model": phase_rows(FLAT),
                "group": sub_floor,
            }),
        });
        let verdict = evaluate(&artifact, DEFAULT_TOLERANCE);
        assert!(passed(&verdict), "{verdict:?}");
        assert_eq!(verdict["phases"]["group"]["rows_below_floor"], json!(4));
        assert!(verdict["phases"]["group"]["worst"].is_null());
    }

    #[test]
    fn missing_phase_fails_closed() {
        let artifact = artifact(1, &[("generation", FLAT)]);
        let verdict = evaluate(&artifact, DEFAULT_TOLERANCE);
        assert!(!passed(&verdict));
        assert!(verdict["phases"]["group"]["error"].as_str().is_some());
    }
}
