//! `repro` — regenerates every table and figure of *Mining Subjective
//! Properties on the Web* (SIGMOD 2015) from the synthetic snapshot.
//!
//! ```text
//! repro <experiment|all> [--seed N] [--shards N] [--threads N]
//!       [--rho N] [--json DIR]
//!
//! experiments: table1 table2 table3 table4 table5
//!              fig3 fig5 fig6 fig9 fig10 fig12 fig13
//!              ablations regions scale
//! (fig10 prints Figures 10 and 11; table3 prints Table 3 and Figure 12.)
//! ```

#![forbid(unsafe_code)]

use std::io::Write;
use std::process::ExitCode;
use surveyor_bench::experiments::{self, ReproConfig};

type Driver = fn(&ReproConfig) -> (String, serde_json::Value);

const EXPERIMENTS: &[(&str, Driver)] = &[
    ("table1", experiments::table1),
    ("table2", experiments::table2),
    ("fig5", experiments::fig5),
    ("fig6", experiments::fig6),
    ("fig3", experiments::fig3),
    ("fig9", experiments::fig9),
    ("fig10", experiments::fig10_11),
    ("table3", experiments::table3_fig12),
    ("fig12", experiments::table3_fig12),
    ("table4", experiments::table4),
    ("table5", experiments::table5),
    ("fig13", experiments::fig13),
    ("ablations", experiments::ablations),
    ("regions", experiments::regions),
    ("scale", experiments::scale),
    ("pipeline", experiments::pipeline),
];

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: repro <experiment|all> [--seed N] [--shards N] [--threads N] [--rho N] [--json DIR]\n\
         experiments: {} all",
        names.join(" ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let mut selected: Vec<String> = Vec::new();
    let mut config = ReproConfig::default();
    let mut json_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" | "--shards" | "--threads" | "--rho" | "--json" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}");
                    return ExitCode::FAILURE;
                };
                if arg == "--json" {
                    json_dir = Some(value);
                    continue;
                }
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--seed" => config.seed = v,
                    "--shards" => config.shards = (v as usize).max(1),
                    "--threads" => config.threads = (v as usize).max(1),
                    "--rho" => config.rho = v,
                    _ => unreachable!(),
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            name => selected.push(name.to_owned()),
        }
    }

    if selected.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let to_run: Vec<(&str, Driver)> = if run_all {
        // table3 and fig12 share a driver; run it once.
        EXPERIMENTS
            .iter()
            .filter(|(n, _)| *n != "fig12")
            .copied()
            .collect()
    } else {
        let mut out = Vec::new();
        for name in &selected {
            match EXPERIMENTS.iter().find(|(n, _)| n == name) {
                Some(&(n, d)) => out.push((n, d)),
                None => {
                    eprintln!("unknown experiment: {name}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for (name, driver) in to_run {
        let start = std::time::Instant::now();
        let (text, value) = driver(&config);
        println!("==================== {name} ====================");
        println!("{text}");
        println!(
            "[{name} completed in {:.2}s]\n",
            start.elapsed().as_secs_f64()
        );
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{name}.json");
            match std::fs::File::create(&path).and_then(|mut f| {
                f.write_all(
                    serde_json::to_string_pretty(&value)
                        .expect("serializable artifact")
                        .as_bytes(),
                )
            }) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
