//! `bench` — throughput harness for the Surveyor pipeline.
//!
//! ```text
//! bench pipeline [--seed N] [--threads N] [--out PATH] [--baseline PATH] [--report PATH]
//! bench scale [--seed N] [--out PATH] [--quick] [--assert-scaling] [--scaling-tolerance T]
//! bench diff <current.json> <baseline.json>
//! ```
//!
//! `pipeline` measures extraction docs/sec (1/2/4/8 worker threads) and
//! end-to-end wall time on a fixed corpus preset, and writes
//! `BENCH_pipeline.json`. When `--baseline` points at a previous run's
//! artifact, the output also reports the throughput ratio against it.
//! `--report` additionally runs an observed end-to-end pass and writes a
//! versioned run report (phase times, counters, EM telemetry).
//!
//! `scale` sweeps 1/2/4/8 worker threads over a ~10× larger corpus, timing
//! the generation, extraction, model, and grouping phases separately, and
//! writes `BENCH_scale.json` (schema-validated before writing). `--quick`
//! shrinks the corpus for CI smoke tests. `--assert-scaling` additionally
//! checks every phase's speedup curve against its per-phase target curve
//! (see `surveyor_bench::scaling`), embeds the verdict in the artifact
//! under `assert_scaling`, and exits nonzero on regression;
//! `--scaling-tolerance T` overrides the default slack (0 ≤ T < 1).
//!
//! `snapshot` measures binary snapshot throughput: re-mine time vs
//! `surveyor-wire` encode/decode time on the pipeline preset, and writes
//! `BENCH_snapshot.json` (schema-validated before writing). The artifact
//! records `speedup_load_vs_remine` and a `byte_identical` round-trip
//! verdict. `--assert-speedup X` exits nonzero when the speedup falls
//! below `X` or the round trip is not byte-identical.
//!
//! `serve` boots a `surveyor-server` on a loopback port, replays
//! `/decide` queries from 1/2/4/8 client threads (p50/p99 latency and
//! queries/sec), then drives a seeded chaos phase — malformed bytes,
//! slowloris writes, disconnects, worker panics, concurrent
//! corrupt-reload attempts — against a deliberately tight second server,
//! and writes `BENCH_serve.json` (schema-validated before writing).
//! `--assert-chaos` exits nonzero unless every valid query answered
//! correctly, every corrupt reload was rejected, and the shed counter
//! moved under overload.
//!
//! `lint` measures the flow-aware linter over the workspace at `--root`
//! (default `.`): a 1/2/4/8-worker sweep with byte-identity checks, then
//! a cold-vs-warm incremental-cache pass, and writes `BENCH_lint.json`
//! (schema-validated before writing). `--assert-cache` exits nonzero
//! unless the warm run reused at least 90% of the unchanged files,
//! outran the cold run, and every configuration produced the same
//! report.
//!
//! `incremental` measures delta ingestion against from-scratch mining:
//! a delta-size sweep on a fixed corpus (update time must track the
//! delta, every update byte-identical to the from-scratch mine), a
//! corpus-size sweep at fixed delta, 1/2/4/8-thread byte-identity, a
//! seeded chaos quarantine-then-replay convergence check, and the
//! opt-in seeded warm-start mode, written to `BENCH_incremental.json`
//! (schema-validated before writing). `--quick` shrinks the corpus.
//! `--assert-delta-scaling` exits nonzero unless every ≤10% delta ran
//! at least 5x faster than from-scratch and every byte-identity held.
//!
//! `diff` compares two such run reports phase by phase.

#![forbid(unsafe_code)]

use std::io::Write;
use std::process::ExitCode;
use surveyor::obs::RunReport;
use surveyor_bench::experiments::{self, ReproConfig};

const USAGE: &str = "usage: bench pipeline [--seed N] [--threads N] \
                     [--out PATH] [--baseline PATH] [--report PATH]\n\
                     \u{20}      bench scale [--seed N] [--out PATH] [--quick] \
                     [--assert-scaling] [--scaling-tolerance T]\n\
                     \u{20}      bench snapshot [--seed N] [--out PATH] [--quick] \
                     [--assert-speedup X]\n\
                     \u{20}      bench serve [--seed N] [--out PATH] [--quick] \
                     [--assert-chaos]\n\
                     \u{20}      bench lint [--root PATH] [--out PATH] [--quick] \
                     [--assert-cache]\n\
                     \u{20}      bench incremental [--seed N] [--out PATH] [--quick] \
                     [--assert-delta-scaling]\n\
                     \u{20}      bench diff <current.json> <baseline.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command {
        "pipeline" => pipeline(rest),
        "scale" => scale(rest),
        "snapshot" => snapshot(rest),
        "serve" => serve(rest),
        "lint" => lint(rest),
        "incremental" => incremental(rest),
        "diff" => diff(rest),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `bench diff`: render the phase/counter comparison of two run reports.
fn diff(rest: &[String]) -> ExitCode {
    let [current, baseline] = rest else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<RunReport, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        RunReport::from_json(&json).map_err(|e| format!("invalid run report {path}: {e}"))
    };
    let reports = load(current).and_then(|c| load(baseline).map(|b| (c, b)));
    match reports {
        Ok((current, baseline)) => {
            println!("{}", current.diff(&baseline));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench pipeline`: the throughput harness.
fn pipeline(rest: &[String]) -> ExitCode {
    let mut config = ReproConfig::default();
    let mut out = "BENCH_pipeline.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {arg}\n{USAGE}");
            return ExitCode::FAILURE;
        };
        match arg.as_str() {
            "--seed" | "--threads" => {
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--seed" => config.seed = v,
                    _ => config.threads = (v as usize).max(1),
                }
            }
            "--out" => out = value.clone(),
            "--baseline" => baseline_path = Some(value.clone()),
            "--report" => report_path = Some(value.clone()),
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, mut value) = experiments::pipeline(&config);
    println!("{text}");

    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        {
            Ok(baseline) => {
                let speedup = throughput_at(&value, 8)
                    .zip(throughput_at(&baseline, 8))
                    .map(|(cur, base)| cur / base);
                if let serde_json::Value::Object(obj) = &mut value {
                    obj.insert("baseline".to_owned(), baseline);
                    if let Some(s) = speedup {
                        println!("extraction speedup vs baseline (8 threads): {s:.2}x");
                        obj.insert(
                            "speedup_extraction_8_threads".to_owned(),
                            serde_json::json!(s),
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = report_path {
        let report = experiments::pipeline_report(&config);
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write run report {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote run report {path}");
    }

    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench scale`: the thread-scaling sweep behind `BENCH_scale.json`.
fn scale(rest: &[String]) -> ExitCode {
    let mut config = ReproConfig::default();
    let mut out = "BENCH_scale.json".to_owned();
    let mut quick = false;
    let mut assert_scaling = false;
    let mut tolerance = surveyor_bench::scaling::DEFAULT_TOLERANCE;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-scaling" => assert_scaling = true,
            "--seed" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--scaling-tolerance" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match value.parse::<f64>() {
                    Ok(t) if (0.0..1.0).contains(&t) => tolerance = t,
                    _ => {
                        eprintln!("invalid tolerance for {arg}: {value} (want 0 <= T < 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = value.clone();
            }
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, mut value) = experiments::scale_sweep(&config, quick);
    println!("{text}");

    let mut regression = false;
    if assert_scaling {
        let verdict = surveyor_bench::scaling::evaluate(&value, tolerance);
        println!("{}", surveyor_bench::scaling::render(&verdict));
        regression = !surveyor_bench::scaling::passed(&verdict);
        if let serde_json::Value::Object(obj) = &mut value {
            obj.insert("assert_scaling".to_owned(), verdict);
        }
    }

    if let Err(e) = validate_scale_schema(&value) {
        eprintln!("internal error: scale artifact failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            if regression {
                eprintln!("assert-scaling: regression detected (see verdict above)");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench snapshot`: binary snapshot throughput behind `BENCH_snapshot.json`.
fn snapshot(rest: &[String]) -> ExitCode {
    let mut config = ReproConfig::default();
    let mut out = "BENCH_snapshot.json".to_owned();
    let mut quick = false;
    let mut assert_speedup: Option<f64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--assert-speedup" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match value.parse::<f64>() {
                    Ok(x) if x > 0.0 => assert_speedup = Some(x),
                    _ => {
                        eprintln!("invalid speedup floor for {arg}: {value}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = value.clone();
            }
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, value) = experiments::snapshot_bench(&config, quick);
    println!("{text}");

    if let Err(e) = validate_snapshot_schema(&value) {
        eprintln!("internal error: snapshot artifact failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            if let Some(floor) = assert_speedup {
                let speedup = value["speedup_load_vs_remine"].as_f64().unwrap_or(0.0);
                let identical = value["byte_identical"].as_bool() == Some(true);
                if speedup < floor || !identical {
                    eprintln!(
                        "assert-speedup: failed (speedup {speedup:.1}x vs floor {floor:.1}x, \
                         byte identical: {identical})"
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench serve`: server throughput + chaos behind `BENCH_serve.json`.
fn serve(rest: &[String]) -> ExitCode {
    let mut config = ReproConfig::default();
    let mut out = "BENCH_serve.json".to_owned();
    let mut quick = false;
    let mut assert_chaos = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-chaos" => assert_chaos = true,
            "--seed" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = value.clone();
            }
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, value) = experiments::serve_bench(&config, quick);
    println!("{text}");

    if let Err(e) = validate_serve_schema(&value) {
        eprintln!("internal error: serve artifact failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            if assert_chaos {
                let chaos = &value["chaos"];
                let all_valid = chaos["all_valid_answered"].as_bool() == Some(true);
                let reloads_held = chaos["corrupt_reloads"].as_u64().unwrap_or(0) > 0
                    && chaos["corrupt_reloads"] == chaos["corrupt_reloads_rejected"];
                let shed = chaos["overload"]["shed_503"].as_u64().unwrap_or(0) > 0;
                let graceful = chaos["graceful_shutdown"].as_bool() == Some(true);
                if !(all_valid && reloads_held && shed && graceful) {
                    eprintln!(
                        "assert-chaos: failed (valid answered: {all_valid}, corrupt reloads \
                         rejected: {reloads_held}, shed under overload: {shed}, graceful \
                         shutdown: {graceful})"
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench lint`: linter wall time, parallel speedup, and warm-cache hit
/// rate behind `BENCH_lint.json`.
fn lint(rest: &[String]) -> ExitCode {
    let mut root = ".".to_owned();
    let mut out = "BENCH_lint.json".to_owned();
    let mut quick = false;
    let mut assert_cache = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-cache" => assert_cache = true,
            "--root" | "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--root" => root = value.clone(),
                    _ => out = value.clone(),
                }
            }
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, value) = match experiments::lint_bench(std::path::Path::new(&root), quick) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{text}");

    if let Err(e) = validate_lint_schema(&value) {
        eprintln!("internal error: lint artifact failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            if assert_cache {
                let reuse = value["cache"]["reuse_fraction"].as_f64().unwrap_or(0.0);
                let warm_faster = value["cache"]["warm_speedup"].as_f64().unwrap_or(0.0) > 1.0;
                let identical = value["identical_across_workers"].as_bool() == Some(true)
                    && value["cache"]["identical_to_cold"].as_bool() == Some(true);
                if reuse < 0.9 || !warm_faster || !identical {
                    eprintln!(
                        "assert-cache: failed (reuse {reuse:.2} vs floor 0.90, warm faster \
                         than cold: {warm_faster}, identical output: {identical})"
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench incremental`: delta ingestion vs from-scratch mining behind
/// `BENCH_incremental.json`.
fn incremental(rest: &[String]) -> ExitCode {
    let mut config = ReproConfig::default();
    let mut out = "BENCH_incremental.json".to_owned();
    let mut quick = false;
    let mut assert_delta_scaling = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--assert-delta-scaling" => assert_delta_scaling = true,
            "--seed" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {arg}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = value.clone();
            }
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, value) = experiments::incremental_bench(&config, quick);
    println!("{text}");

    if let Err(e) = validate_incremental_schema(&value) {
        eprintln!("internal error: incremental artifact failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            if assert_delta_scaling {
                let rows = value["delta_sweep"].as_array().cloned().unwrap_or_default();
                let all_identical = rows
                    .iter()
                    .all(|r| r["byte_identical"].as_bool() == Some(true));
                let small_fast = rows
                    .iter()
                    .filter(|r| r["delta_fraction"].as_f64().unwrap_or(1.0) <= 0.101)
                    .all(|r| r["speedup_vs_scratch"].as_f64().unwrap_or(0.0) >= 5.0);
                let threads_ok =
                    value["determinism"]["byte_identical_all_threads"].as_bool() == Some(true);
                let chaos_ok = value["determinism"]["chaos"]["byte_identical_after_replay"]
                    .as_bool()
                    == Some(true);
                if !(all_identical && small_fast && threads_ok && chaos_ok) {
                    eprintln!(
                        "assert-delta-scaling: failed (byte identical: {all_identical}, \
                         <=10% deltas >=5x: {small_fast}, identical across threads: \
                         {threads_ok}, chaos replay converged: {chaos_ok})"
                    );
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Checks the `BENCH_incremental.json` shape before anything is written
/// (verify.sh greps these same keys as a second line of defense).
fn validate_incremental_schema(value: &serde_json::Value) -> Result<(), String> {
    for key in [
        "schema_version",
        "preset",
        "seed",
        "shards",
        "rho",
        "timing",
    ] {
        if value.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    if value["schema_version"].as_u64() != Some(1) {
        return Err("schema_version is not 1".to_owned());
    }
    if value["from_scratch_seconds"].as_f64().is_none() {
        return Err("from_scratch_seconds is not a number".to_owned());
    }
    let deltas = value["delta_sweep"]
        .as_array()
        .ok_or_else(|| "delta_sweep is not an array".to_owned())?;
    if deltas.is_empty() {
        return Err("delta_sweep is empty".to_owned());
    }
    for row in deltas {
        for key in [
            "delta_shards",
            "delta_fraction",
            "update_seconds",
            "speedup_vs_scratch",
            "groups_total",
            "groups_dirty",
            "groups_carried",
            "groups_refit",
            "delta_pairs",
            "delta_statements",
        ] {
            if row[key].as_f64().is_none() {
                return Err(format!("delta_sweep row missing numeric {key:?}"));
            }
        }
        if row["byte_identical"].as_bool().is_none() {
            return Err("delta_sweep row missing boolean byte_identical".to_owned());
        }
    }
    let corpora = value["corpus_sweep"]
        .as_array()
        .ok_or_else(|| "corpus_sweep is not an array".to_owned())?;
    if corpora.is_empty() {
        return Err("corpus_sweep is empty".to_owned());
    }
    for row in corpora {
        for key in [
            "shards",
            "delta_shards",
            "scratch_seconds",
            "update_seconds",
            "update_fraction_of_scratch",
        ] {
            if row[key].as_f64().is_none() {
                return Err(format!("corpus_sweep row missing numeric {key:?}"));
            }
        }
    }
    let determinism = &value["determinism"];
    if determinism["byte_identical_all_threads"]
        .as_bool()
        .is_none()
    {
        return Err("determinism.byte_identical_all_threads is not a boolean".to_owned());
    }
    let chaos = &determinism["chaos"];
    if chaos["seed"].as_u64().is_none() {
        return Err("determinism.chaos.seed is not a number".to_owned());
    }
    if chaos["byte_identical_after_replay"].as_bool().is_none() {
        return Err("determinism.chaos.byte_identical_after_replay is not a boolean".to_owned());
    }
    let warm = &value["warm_seeded"];
    for key in ["update_seconds", "exact_update_seconds"] {
        if warm[key].as_f64().is_none() {
            return Err(format!("warm_seeded.{key} is not a number"));
        }
    }
    if warm["decisions_identical"].as_bool().is_none() {
        return Err("warm_seeded.decisions_identical is not a boolean".to_owned());
    }
    Ok(())
}

/// Checks the `BENCH_lint.json` shape before anything is written
/// (verify.sh greps these same keys as a second line of defense).
fn validate_lint_schema(value: &serde_json::Value) -> Result<(), String> {
    for key in ["schema_version", "preset", "ruleset_version", "timing"] {
        if value.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    if value["schema_version"].as_u64() != Some(1) {
        return Err("schema_version is not 1".to_owned());
    }
    for key in ["files_scanned", "findings"] {
        if value[key].as_u64().is_none() {
            return Err(format!("{key} is not a number"));
        }
    }
    let rows = value["workers"]
        .as_array()
        .ok_or_else(|| "workers is not an array".to_owned())?;
    if rows.len() != 4 {
        return Err(format!("workers has {} rows, want 4", rows.len()));
    }
    for row in rows {
        for key in ["workers", "seconds"] {
            if row[key].as_f64().is_none() {
                return Err(format!("workers row missing numeric {key:?}"));
            }
        }
    }
    if value["parallel_speedup"].as_f64().is_none() {
        return Err("parallel_speedup is not a number".to_owned());
    }
    if value["identical_across_workers"].as_bool().is_none() {
        return Err("identical_across_workers is not a boolean".to_owned());
    }
    let cache = &value["cache"];
    for key in [
        "cold_seconds",
        "warm_seconds",
        "warm_speedup",
        "reuse_fraction",
    ] {
        if cache[key].as_f64().is_none() {
            return Err(format!("cache.{key} is not a number"));
        }
    }
    if cache["files_reused"].as_u64().is_none() {
        return Err("cache.files_reused is not a number".to_owned());
    }
    if cache["identical_to_cold"].as_bool().is_none() {
        return Err("cache.identical_to_cold is not a boolean".to_owned());
    }
    Ok(())
}

/// Checks the `BENCH_serve.json` shape before anything is written
/// (verify.sh greps these same keys as a second line of defense).
fn validate_serve_schema(value: &serde_json::Value) -> Result<(), String> {
    for key in ["schema_version", "preset", "seed", "shards", "associations"] {
        if value.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    if value["schema_version"].as_u64() != Some(1) {
        return Err("schema_version is not 1".to_owned());
    }
    let rows = value["throughput"]
        .as_array()
        .ok_or_else(|| "throughput is not an array".to_owned())?;
    if rows.len() != 4 {
        return Err(format!("throughput has {} rows, want 4", rows.len()));
    }
    for row in rows {
        for key in [
            "threads", "requests", "ok", "errors", "qps", "p50_ms", "p99_ms",
        ] {
            if row[key].as_f64().is_none() {
                return Err(format!("throughput row missing numeric {key:?}"));
            }
        }
    }
    let chaos = &value["chaos"];
    for key in [
        "ops",
        "valid_queries",
        "valid_ok",
        "malformed",
        "slowloris",
        "disconnects",
        "corrupt_reloads",
        "corrupt_reloads_rejected",
        "panics_injected",
    ] {
        if chaos[key].as_u64().is_none() {
            return Err(format!("chaos.{key} is not a number"));
        }
    }
    for key in ["all_valid_answered", "accepted_reload", "graceful_shutdown"] {
        if chaos[key].as_bool().is_none() {
            return Err(format!("chaos.{key} is not a boolean"));
        }
    }
    if chaos["overload"]["shed_503"].as_u64().is_none() {
        return Err("chaos.overload.shed_503 is not a number".to_owned());
    }
    for key in ["shed", "reload_ok", "reload_rejected", "requests", "panics"] {
        if chaos["metrics"][key].as_u64().is_none() {
            return Err(format!("chaos.metrics.{key} is not a number"));
        }
    }
    Ok(())
}

/// Checks the `BENCH_snapshot.json` shape before anything is written
/// (verify.sh greps these same keys as a second line of defense).
fn validate_snapshot_schema(value: &serde_json::Value) -> Result<(), String> {
    for key in [
        "schema_version",
        "preset",
        "seed",
        "shards",
        "timing",
        "format_version",
    ] {
        if value.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    if value["schema_version"].as_u64() != Some(1) {
        return Err("schema_version is not 1".to_owned());
    }
    for key in [
        "snapshot_bytes",
        "remine_seconds",
        "encode_seconds",
        "encode_mb_s",
        "load_seconds",
        "decode_mb_s",
        "speedup_load_vs_remine",
    ] {
        if value[key].as_f64().is_none() {
            return Err(format!("{key} is not a number"));
        }
    }
    if value["byte_identical"].as_bool().is_none() {
        return Err("byte_identical is not a boolean".to_owned());
    }
    Ok(())
}

/// Checks the `BENCH_scale.json` shape before anything is written, so a
/// malformed artifact can never land on disk (verify.sh greps these same
/// keys as a second line of defense).
fn validate_scale_schema(value: &serde_json::Value) -> Result<(), String> {
    for key in [
        "schema_version",
        "preset",
        "seed",
        "shards",
        "documents",
        "host_cpus",
        "timing",
    ] {
        if value.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    if value["schema_version"].as_u64() != Some(2) {
        return Err("schema_version is not 2".to_owned());
    }
    for phase in ["generation", "extraction", "model", "group"] {
        let rows = value["phases"][phase]
            .as_array()
            .ok_or_else(|| format!("phases.{phase} is not an array"))?;
        if rows.is_empty() {
            return Err(format!("phases.{phase} is empty"));
        }
        for row in rows {
            for key in ["threads", "seconds", "speedup"] {
                if row[key].as_f64().is_none() {
                    return Err(format!("phases.{phase} row missing numeric {key:?}"));
                }
            }
        }
    }
    for key in [
        "documents_identical",
        "statements_identical",
        "decided_pairs_identical",
        "groups_identical",
    ] {
        if value["determinism"][key].as_bool().is_none() {
            return Err(format!("determinism.{key} is not a boolean"));
        }
    }
    if let Some(verdict) = value.get("assert_scaling") {
        if verdict["verdict"].as_str().is_none() {
            return Err("assert_scaling.verdict is not a string".to_owned());
        }
    }
    for key in ["hits", "global_lookups", "hit_rate"] {
        if value["intern_cache"][key].as_f64().is_none() {
            return Err(format!("intern_cache.{key} is not a number"));
        }
    }
    Ok(())
}

/// `docs_per_sec` of the extraction row with the given thread count.
fn throughput_at(artifact: &serde_json::Value, threads: u64) -> Option<f64> {
    artifact["extraction"]
        .as_array()?
        .iter()
        .find(|row| row["threads"].as_u64() == Some(threads))?["docs_per_sec"]
        .as_f64()
}
