//! `bench` — throughput harness for the Surveyor pipeline.
//!
//! ```text
//! bench pipeline [--seed N] [--threads N] [--out PATH] [--baseline PATH]
//! ```
//!
//! Measures extraction docs/sec (1/2/4/8 worker threads) and end-to-end
//! wall time on a fixed corpus preset, and writes `BENCH_pipeline.json`.
//! When `--baseline` points at a previous run's artifact, the output also
//! reports the throughput ratio against it.

use std::io::Write;
use std::process::ExitCode;
use surveyor_bench::experiments::{self, ReproConfig};

const USAGE: &str = "usage: bench pipeline [--seed N] [--threads N] \
                     [--out PATH] [--baseline PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(("pipeline", rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut config = ReproConfig::default();
    let mut out = "BENCH_pipeline.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {arg}\n{USAGE}");
            return ExitCode::FAILURE;
        };
        match arg.as_str() {
            "--seed" | "--threads" => {
                let Ok(v) = value.parse::<u64>() else {
                    eprintln!("invalid numeric value for {arg}: {value}");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--seed" => config.seed = v,
                    _ => config.threads = (v as usize).max(1),
                }
            }
            "--out" => out = value.clone(),
            "--baseline" => baseline_path = Some(value.clone()),
            _ => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (text, mut value) = experiments::pipeline(&config);
    println!("{text}");

    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        {
            Ok(baseline) => {
                let speedup = throughput_at(&value, 8)
                    .zip(throughput_at(&baseline, 8))
                    .map(|(cur, base)| cur / base);
                if let serde_json::Value::Object(obj) = &mut value {
                    obj.insert("baseline".to_owned(), baseline);
                    if let Some(s) = speedup {
                        println!("extraction speedup vs baseline (8 threads): {s:.2}x");
                        obj.insert(
                            "speedup_extraction_8_threads".to_owned(),
                            serde_json::json!(s),
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match std::fs::File::create(&out).and_then(|mut f| {
        f.write_all(
            serde_json::to_string_pretty(&value)
                .expect("serializable artifact")
                .as_bytes(),
        )
    }) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `docs_per_sec` of the extraction row with the given thread count.
fn throughput_at(artifact: &serde_json::Value, threads: u64) -> Option<f64> {
    artifact["extraction"]
        .as_array()?
        .iter()
        .find(|row| row["threads"].as_u64() == Some(threads))?["docs_per_sec"]
        .as_f64()
}
