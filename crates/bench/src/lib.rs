//! Benchmark-harness support library: experiment drivers and plain-text
//! rendering for the `repro` binary, which regenerates every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod scaling;

pub use experiments::ReproConfig;
