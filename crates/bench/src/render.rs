//! Plain-text rendering: ASCII tables and dot plots for the repro output.

/// Renders an ASCII table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&render_row(
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar chart (one row per label), scaled to `width`
/// characters for the maximum value.
pub fn bars(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_width = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<label_width$} |{}{} {:.3}\n",
            label,
            "#".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
            value,
        ));
    }
    out
}

/// Renders an x/y series as a coarse scatter plot with log-x buckets —
/// enough to convey the shape of the paper's log-axis figures in a
/// terminal.
pub fn scatter_logx(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() {
        return "(no data)\n".to_owned();
    }
    let xs: Vec<f64> = points.iter().map(|(x, _)| x.max(1e-12).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    let (xmin, xmax) = bounds(&xs);
    let (ymin, ymax) = bounds(&ys);
    let mut grid = vec![vec![b' '; cols]; rows];
    for (x, y) in xs.iter().zip(&ys) {
        let cx = scale(*x, xmin, xmax, cols);
        let cy = rows - 1 - scale(*y, ymin, ymax, rows);
        grid[cy][cx] = b'*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let ylabel = if i == 0 {
            format!("{ymax:>9.1}")
        } else if i == rows - 1 {
            format!("{ymin:>9.1}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&format!("{ylabel} |{}\n", String::from_utf8_lossy(row)));
    }
    out.push_str(&format!(
        "{} +{}\n{} {:<.3e}{:>width$.3e}\n",
        " ".repeat(9),
        "-".repeat(cols),
        " ".repeat(9),
        xmin.exp(),
        xmax.exp(),
        width = cols.saturating_sub(8),
    ));
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn scale(v: f64, min: f64, max: f64, cells: usize) -> usize {
    let t = (v - min) / (max - min);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

/// Formats a float as a fixed 3-decimal cell.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage-like metric pair used in the comparison tables.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["Approach", "Coverage"],
            &[
                vec!["Majority Vote".into(), "0.483".into()],
                vec!["Surveyor".into(), "0.966".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Approach"));
        assert!(lines[2].contains("Majority Vote"));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn bars_scale_to_max() {
        let out = bars(&[("a".into(), 1.0), ("bb".into(), 2.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("##########"));
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        assert!(scatter_logx(&[], 5, 20).contains("no data"));
        let out = scatter_logx(&[(10.0, 1.0)], 5, 20);
        assert!(out.contains('*'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.966), "96.6%");
    }
}
