//! One driver per paper artifact; each returns rendered text plus a JSON
//! value for machine-readable archiving.

use crate::render;
use serde_json::{json, Value};
use std::time::Instant;
use surveyor::nlp::{annotate, annotate_with, AnnotateScratch, Lexicon};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::presets;
use surveyor_corpus::CorpusGenerator;
use surveyor_eval::comparison::WebChildConfig;
use surveyor_eval::empirical::run_empirical;
use surveyor_eval::random_sample::run_random_sample;
use surveyor_eval::snapshot_stats::snapshot_stats;
use surveyor_eval::versions::run_versions;
use surveyor_eval::{ablation, EvalSuite};
use surveyor_extract::{run_sharded, EvidenceTable};
use surveyor_kb::seed as kbseed;
use surveyor_model::{fit, posterior_positive, EmConfig, ModelParams, ObservedCounts};

/// Configuration shared by all experiment drivers.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Master seed.
    pub seed: u64,
    /// Corpus shards.
    pub shards: usize,
    /// Extraction worker threads.
    pub threads: usize,
    /// Occurrence threshold ρ.
    pub rho: u64,
    /// Crowd panel seed.
    pub panel_seed: u64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self {
            seed: 2015,
            shards: 8,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            rho: 100,
            panel_seed: 500,
        }
    }
}

impl ReproConfig {
    fn corpus(&self) -> CorpusConfig {
        CorpusConfig {
            num_shards: self.shards,
            ..CorpusConfig::default()
        }
    }

    fn surveyor(&self) -> SurveyorConfig {
        SurveyorConfig {
            rho: self.rho,
            threads: self.threads,
            ..SurveyorConfig::default()
        }
    }
}

/// Table 1: example extractions for the three patterns of Figure 4.
pub fn table1(_cfg: &ReproConfig) -> (String, Value) {
    let mut b = surveyor_kb::KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    let sport = b.add_type("sport", &["sport"], &[]);
    b.add_entity("Snake", animal).finish();
    b.add_entity("Chicago", city).finish();
    b.add_entity("Soccer", sport).finish();
    let kb = b.build();
    let lexicon = Lexicon::new();

    let sentences = [
        ("Snakes are dangerous animals.", "Adjectival modifier"),
        ("Chicago is very big.", "Adjectival complement"),
        ("Soccer is a fast and exciting sport.", "Conjunction"),
    ];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (text, pattern) in sentences {
        let doc = annotate(0, text, &kb, &lexicon);
        for s in &doc.sentences {
            for st in surveyor_extract::extract_sentence(
                s,
                &kb,
                &surveyor_extract::ExtractionConfig::paper_final(),
            ) {
                let entity = kb.entity(st.entity).name().to_owned();
                let property = st.property.resolve().to_string();
                rows.push(vec![
                    text.to_owned(),
                    pattern.to_owned(),
                    entity.clone(),
                    property.clone(),
                ]);
                artifacts.push(json!({
                    "statement": text, "pattern": pattern,
                    "entity": entity, "property": property,
                    "polarity": format!("{:?}", st.polarity),
                }));
            }
        }
    }
    let text = format!(
        "Table 1 — example extractions\n{}",
        render::table(&["Statement", "Pattern", "Entity", "Property"], &rows)
    );
    (text, Value::Array(artifacts))
}

/// Table 2: the evaluated property-type matrix.
pub fn table2(_cfg: &ReproConfig) -> (String, Value) {
    let rows: Vec<Vec<String>> = kbseed::table2_matrix()
        .into_iter()
        .map(|(t, props)| vec![t.to_owned(), props.join(", ")])
        .collect();
    let text = format!(
        "Table 2 — evaluated property-type combinations\n{}",
        render::table(&["Entity Type", "Properties"], &rows)
    );
    let value = json!(kbseed::table2_matrix()
        .into_iter()
        .map(|(t, p)| json!({"type": t, "properties": p}))
        .collect::<Vec<_>>());
    (text, value)
}

/// Figure 5: negation-path polarity on the paper's example sentence.
pub fn fig5(_cfg: &ReproConfig) -> (String, Value) {
    let mut b = surveyor_kb::KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    b.add_entity("Snake", animal).finish();
    let kb = b.build();
    let lexicon = Lexicon::new();
    let sentence = "I don't think that snakes are never dangerous.";
    let doc = annotate(0, sentence, &kb, &lexicon);
    let s = &doc.sentences[0];
    let mut lines = vec![format!("Figure 5 — \"{sentence}\"")];
    for line in s.tree.render(&s.tokens).lines() {
        lines.push(format!("  {line}"));
    }
    let stmts = surveyor_extract::extract_sentence(
        s,
        &kb,
        &surveyor_extract::ExtractionConfig::paper_final(),
    );
    for st in &stmts {
        lines.push(format!(
            "  extraction: ({}, {}) polarity {:?}  [two negations cancel]",
            kb.entity(st.entity).name(),
            st.property.resolve(),
            st.polarity
        ));
    }
    let value = json!({
        "sentence": sentence,
        "extractions": stmts.len(),
        "polarity": stmts.first().map(|s| format!("{:?}", s.polarity)),
    });
    (lines.join("\n") + "\n", value)
}

/// Figure 6: the two count distributions of Example 3 and the ⟨60,3⟩
/// posterior.
pub fn fig6(_cfg: &ReproConfig) -> (String, Value) {
    let params = ModelParams::new(0.9, 100.0, 5.0);
    let mut lines = vec![
        "Figure 6 — log-probabilities under Example 3 (pA=0.9, np+S=100, np-S=5)".to_owned(),
        "posterior Pr(D=+ | c+, c-) over a grid:".to_owned(),
        "        c+:   0     20     40     60     80    100".to_owned(),
    ];
    for c_neg in [0u64, 2, 4, 6, 8, 10] {
        let mut row = format!("  c-={c_neg:>2}  ");
        for c_pos in [0u64, 20, 40, 60, 80, 100] {
            let p = posterior_positive(ObservedCounts::new(c_pos, c_neg), &params);
            row.push_str(&format!("{p:>7.3}"));
        }
        lines.push(row);
    }
    let p63 = posterior_positive(ObservedCounts::new(60, 3), &params);
    lines.push(format!(
        "tuple X = (60, 3): Pr(positive dominant opinion) = {p63:.6} (paper: clearly positive)"
    ));
    let value = json!({"pa": 0.9, "np_pos": 100.0, "np_neg": 5.0, "posterior_60_3": p63});
    (lines.join("\n") + "\n", value)
}

/// Figure 3: the Californian big-cities empirical study.
pub fn fig3(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::big_cities_world(cfg.seed);
    let study = run_empirical(
        &world,
        kbseed::ATTR_POPULATION,
        cfg.corpus(),
        SurveyorConfig {
            rho: 50,
            threads: cfg.threads,
            ..SurveyorConfig::default()
        },
    );
    let mut text = String::from("Figure 3 — 461 Californian cities, property `big`\n");
    text.push_str("\n(a) positive statements vs population (log x):\n");
    let pos_points: Vec<(f64, f64)> = study
        .points
        .iter()
        .map(|p| (p.attribute, p.positive as f64))
        .collect();
    text.push_str(&render::scatter_logx(&pos_points, 10, 56));
    text.push_str("\n(b) negative statements vs population (log x):\n");
    let neg_points: Vec<(f64, f64)> = study
        .points
        .iter()
        .map(|p| (p.attribute, p.negative as f64))
        .collect();
    text.push_str(&render::scatter_logx(&neg_points, 8, 56));
    let polarity_points = |value: fn(&surveyor_eval::EmpiricalPoint) -> f64| -> Vec<(f64, f64)> {
        study
            .points
            .iter()
            .map(|p| (p.attribute, value(p)))
            .collect()
    };
    text.push_str("\n(c) majority-vote polarity (+1 / 0=N / -1) vs population:\n");
    text.push_str(&render::scatter_logx(
        &polarity_points(|p| match p.majority {
            Decision::Positive => 1.0,
            Decision::Unsolved => 0.0,
            Decision::Negative => -1.0,
        }),
        7,
        56,
    ));
    text.push_str("\n(d) probabilistic-model polarity vs population:\n");
    text.push_str(&render::scatter_logx(
        &polarity_points(|p| match p.model {
            Decision::Positive => 1.0,
            Decision::Unsolved => 0.0,
            Decision::Negative => -1.0,
        }),
        7,
        56,
    ));
    text.push_str(&format!(
        "\nSpearman(population, polarity): majority vote {:.3}, model {:.3}\n\
         coverage: majority vote {:.3}, model {:.3}\n\
         accuracy vs planted opinion: majority vote {:.3}, model {:.3}\n",
        study.majority_spearman.unwrap_or(0.0),
        study.model_spearman.unwrap_or(0.0),
        study.majority_coverage,
        study.model_coverage,
        study.majority_accuracy,
        study.model_accuracy,
    ));
    let value = serde_json::to_value(&study).expect("serializable study");
    (text, value)
}

/// Figure 13: the Appendix A studies (countries / lakes / mountains).
pub fn fig13(cfg: &ReproConfig) -> (String, Value) {
    let studies = [
        (
            "Wealthy countries (GDP per capita)",
            presets::wealthy_countries_world(cfg.seed),
            kbseed::ATTR_GDP_PER_CAPITA,
        ),
        (
            "Big lakes in Switzerland (area km2)",
            presets::big_lakes_world(cfg.seed),
            kbseed::ATTR_AREA_KM2,
        ),
        (
            "High mountains on the British Isles (relative height m)",
            presets::high_mountains_world(cfg.seed),
            kbseed::ATTR_RELATIVE_HEIGHT_M,
        ),
    ];
    let mut text = String::from("Figure 13 — Appendix A empirical studies\n");
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for (label, world, attr) in studies {
        let study = run_empirical(
            &world,
            attr,
            cfg.corpus(),
            SurveyorConfig {
                rho: 20,
                threads: cfg.threads,
                ..SurveyorConfig::default()
            },
        );
        rows.push(vec![
            label.to_owned(),
            render::f3(study.majority_spearman.unwrap_or(0.0)),
            render::f3(study.model_spearman.unwrap_or(0.0)),
            render::f3(study.majority_coverage),
            render::f3(study.model_coverage),
        ]);
        values.push(serde_json::to_value(&study).expect("serializable"));
    }
    text.push_str(&render::table(
        &[
            "Scenario",
            "MV corr",
            "Model corr",
            "MV coverage",
            "Model coverage",
        ],
        &rows,
    ));
    (text, Value::Array(values))
}

/// Figure 9: extraction statistics over a large synthetic snapshot.
pub fn fig9(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::long_tail_world(40, 120, 8, cfg.seed);
    let generator = CorpusGenerator::new(world.clone(), cfg.corpus());
    let source = CorpusSource::new(&generator);
    let evidence = run_sharded(
        &source,
        world.kb(),
        &surveyor_extract::ExtractionConfig::paper_final(),
        cfg.threads,
    );
    let stats = snapshot_stats(&evidence, world.kb(), cfg.rho.min(25));
    let series = |name: &str, data: &[(u8, f64)]| -> String {
        let items: Vec<(String, f64)> = data.iter().map(|(q, v)| (format!("p{q}"), *v)).collect();
        format!("{name}\n{}", render::bars(&items, 40))
    };
    let text = format!(
        "Figure 9 — extraction statistics ({} statements, {} pairs, {} combinations, {} above threshold)\n\n{}\n{}\n{}",
        stats.statements_total,
        stats.pairs_with_evidence,
        stats.combinations_total,
        stats.combinations_above_rho,
        series("(a) statements per KB entity (percentiles):", &stats.per_entity),
        series(
            "(b) statements per property-type combination (percentiles):",
            &stats.per_combination
        ),
        series(
            "(c) properties above threshold per type (percentiles):",
            &stats.properties_per_type
        ),
    );
    let value = serde_json::to_value(&stats).expect("serializable stats");
    (text, value)
}

/// Figures 10 and 11: the crowd data.
pub fn fig10_11(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::table2_world(cfg.seed);
    let suite = EvalSuite::from_world_limited(&world, cfg.panel_seed, Some(20));
    let votes = suite.votes_for("animal", &Property::adjective("cute"));
    let mut text = String::from("Figure 10 — workers calling the animal \"cute\" (of 20):\n");
    let items: Vec<(String, f64)> = votes
        .iter()
        .map(|(name, v)| (name.clone(), *v as f64))
        .collect();
    text.push_str(&render::bars(&items, 20));
    text.push_str(&format!(
        "\nFigure 11 — test cases with agreement above threshold (of {} cases, {} ties removed, mean agreement {:.1}, {} unanimous):\n",
        suite.cases.len(),
        suite.ties_removed,
        suite.mean_agreement(),
        suite.unanimous_cases(),
    ));
    let hist: Vec<(String, f64)> = (11..=20)
        .map(|t| (format!(">= {t}"), suite.at_agreement(t).len() as f64))
        .collect();
    text.push_str(&render::bars(&hist, 40));
    let value = json!({
        "figure10_votes": votes,
        "figure11_histogram": (11..=20)
            .map(|t| json!({"threshold": t, "cases": suite.at_agreement(t).len()}))
            .collect::<Vec<_>>(),
        "mean_agreement": suite.mean_agreement(),
        "unanimous": suite.unanimous_cases(),
        "ties_removed": suite.ties_removed,
    });
    (text, value)
}

/// Table 3 and Figure 12: the method comparison (with bootstrap 95% CIs).
pub fn table3_fig12(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::table2_world(cfg.seed);
    let generator = CorpusGenerator::new(world.clone(), cfg.corpus());
    let surveyor = Surveyor::new(world.kb().clone(), cfg.surveyor());
    let output = surveyor.run(&CorpusSource::new(&generator));
    let suite = surveyor_eval::EvalSuite::from_world_limited(&world, cfg.panel_seed, Some(20));
    let report =
        surveyor_eval::comparison::report_from_parts(&suite, &output, WebChildConfig::default());
    // Bootstrap 95% CIs on precision per method.
    let decisions =
        surveyor_eval::comparison::method_decisions(&suite, &output, WebChildConfig::default());
    let truths: Vec<bool> = suite.cases.iter().map(|c| c.crowd_majority).collect();
    let mut text = format!(
        "Table 3 — comparison on {} judged test cases ({} ties removed)\n",
        report.cases, report.ties_removed
    );
    let rows: Vec<Vec<String>> = report
        .table3
        .iter()
        .map(|r| {
            let d = &decisions
                .per_method
                .iter()
                .find(|(n, _)| n == &r.method)
                .expect("method decisions")
                .1;
            let ci = surveyor_eval::bootstrap::bootstrap_metrics(d, &truths, 500, 0.95, 99);
            vec![
                r.method.clone(),
                render::f3(r.metrics.coverage),
                render::f3(r.metrics.precision),
                format!(
                    "[{}, {}]",
                    render::f3(ci.precision.lower),
                    render::f3(ci.precision.upper)
                ),
                render::f3(r.metrics.f1),
            ]
        })
        .collect();
    text.push_str(&render::table(
        &["Approach", "Coverage", "Precision", "95% CI (prec)", "F1"],
        &rows,
    ));
    text.push_str(
        "\nFigure 12 — precision (top) and coverage (bottom) vs worker-agreement threshold:\n",
    );
    let methods: Vec<&str> = report.table3.iter().map(|r| r.method.as_str()).collect();
    for metric in ["precision", "coverage"] {
        text.push_str(&format!("\n{metric}:\n  threshold:"));
        for p in &report.figure12 {
            text.push_str(&format!("{:>7}", p.threshold));
        }
        text.push('\n');
        for method in &methods {
            text.push_str(&format!("  {method:<20}"));
            for p in &report.figure12 {
                let m = p
                    .rows
                    .iter()
                    .find(|r| &r.method == method)
                    .expect("method row");
                let v = if metric == "precision" {
                    m.metrics.precision
                } else {
                    m.metrics.coverage
                };
                text.push_str(&format!("{v:>7.3}"));
            }
            text.push('\n');
        }
    }
    let value = serde_json::to_value(&report).expect("serializable report");
    (text, value)
}

/// Table 4: the extraction pattern versions.
pub fn table4(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::table2_world(cfg.seed);
    let rows_data = run_versions(&world, cfg.corpus());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.version),
                r.modifiers.clone(),
                r.verbs.clone(),
                if r.checks { "yes" } else { "no" }.to_owned(),
                r.statements.to_string(),
                r.pairs.to_string(),
                render::f3(r.on_target_share),
            ]
        })
        .collect();
    let text = format!(
        "Table 4 — extraction pattern versions\n{}",
        render::table(
            &[
                "Vers.",
                "Modifiers",
                "Verbs",
                "Check",
                "Statements",
                "Pairs",
                "On-target"
            ],
            &rows,
        )
    );
    let value = serde_json::to_value(&rows_data).expect("serializable rows");
    (text, value)
}

/// Table 5: the random-sample comparison.
pub fn table5(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::long_tail_world(40, 120, 8, cfg.seed);
    let report = run_random_sample(
        &world,
        cfg.corpus(),
        SurveyorConfig {
            rho: 25,
            threads: cfg.threads,
            ..SurveyorConfig::default()
        },
        WebChildConfig::default(),
        100,
        7,
        80,
        cfg.seed ^ 0xD,
    );
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                render::f3(r.coverage),
                render::f3(r.precision),
                render::f3(r.f1),
            ]
        })
        .collect();
    let text = format!(
        "Table 5 — random sample ({} cases, {} judged)\n{}",
        report.sampled_cases,
        report.judged_cases,
        render::table(&["Approach", "Coverage", "Precision", "F1"], &rows)
    );
    let value = serde_json::to_value(&report).expect("serializable report");
    (text, value)
}

/// Ablations of the design choices.
pub fn ablations(cfg: &ReproConfig) -> (String, Value) {
    let world = presets::table2_world(cfg.seed);
    let report = ablation::run_ablations(&world, cfg.corpus(), cfg.surveyor(), cfg.panel_seed);
    let m = |m: &surveyor_eval::Metrics| {
        vec![
            render::f3(m.coverage),
            render::f3(m.precision),
            render::f3(m.f1),
        ]
    };
    let mut rows = vec![
        [vec!["Surveyor (standard)".to_owned()], m(&report.standard)].concat(),
        [vec!["negation-blind".to_owned()], m(&report.negation_blind)].concat(),
        [
            vec!["global parameters".to_owned()],
            m(&report.global_params),
        ]
        .concat(),
        [
            vec!["standard (inverted-bias combos)".to_owned()],
            m(&report.standard_inverted),
        ]
        .concat(),
        [
            vec!["negation-blind (inverted-bias combos)".to_owned()],
            m(&report.negation_blind_inverted),
        ]
        .concat(),
    ];
    for (tau, metrics) in &report.thresholds {
        rows.push([vec![format!("threshold tau={tau}")], m(metrics)].concat());
    }
    for (iters, metrics) in &report.em_iterations {
        rows.push([vec![format!("EM iterations={iters}")], m(metrics)].concat());
    }
    // The §4 antonym alternative, on its dedicated two-property world.
    let antonym = surveyor_eval::antonym::run_antonym_ablation(cfg.seed, 400);
    rows.push(
        [
            vec!["antonym world: raw evidence".to_owned()],
            m(&antonym.without_folding),
        ]
        .concat(),
    );
    rows.push(
        [
            vec!["antonym world: small folded into not-big".to_owned()],
            m(&antonym.with_folding),
        ]
        .concat(),
    );
    let text = format!(
        "Ablations — design choices of Sections 4 and 5\n{}\n\
         (antonym world: {} of {} entities are neither big nor small — the\n\
          band that antonym folding misreads, paper Section 4)\n",
        render::table(&["Variant", "Coverage", "Precision", "F1"], &rows),
        antonym.medium_entities,
        antonym.entities,
    );
    let value = serde_json::json!({
        "design_choices": serde_json::to_value(&report).expect("serializable report"),
        "antonym": serde_json::to_value(&antonym).expect("serializable antonym report"),
    });
    (text, value)
}

/// Region-specific mining (§2 extension): divergence and per-region
/// accuracy as the second region's opinion-flip probability grows.
pub fn regions(cfg: &ReproConfig) -> (String, Value) {
    // A dense world: each region sees only half the corpus, so rates are
    // high enough that per-region decisions stay well determined.
    let mut b = surveyor::kb::KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for i in 0..80 {
        b.add_entity(&format!("Critter{i}"), animal).finish();
        b.add_entity(&format!("Metroville{i}"), city).finish();
    }
    let kb = std::sync::Arc::new(b.build());
    let dense = |share: f64| surveyor::prelude::DomainParams {
        p_agree: 0.92,
        rate_pos: 30.0,
        rate_neg: 5.0,
        opinions: surveyor::prelude::OpinionRule::RandomShare(share),
        ..surveyor::prelude::DomainParams::default()
    };
    let world = surveyor::prelude::WorldBuilder::new(kb, cfg.seed)
        .domain("animal", Property::adjective("cute"), dense(0.5))
        .domain("animal", Property::adjective("dangerous"), dense(0.4))
        .domain("city", Property::adjective("big"), dense(0.3))
        .build();
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for flip in [0.0, 0.2, 0.4, 0.6] {
        let report =
            surveyor_eval::region::run_region_experiment(&world, flip, cfg.shards, 40, cfg.threads);
        rows.push(vec![
            format!("{flip:.1}"),
            render::f3(report.divergence),
            render::f3(report.accuracy_a),
            render::f3(report.accuracy_b),
            report.compared_pairs.to_string(),
        ]);
        values.push(serde_json::to_value(&report).expect("serializable report"));
    }
    let text = format!(
        "Region-specific mining (§2) — two author regions, region B flips a\n\
         fraction of region A's dominant opinions; each region's corpus slice\n\
         is mined separately\n{}",
        render::table(
            &[
                "Flip prob",
                "Divergence",
                "Accuracy A",
                "Accuracy B",
                "Pairs"
            ],
            &rows,
        )
    );
    (text, Value::Array(values))
}

/// Scale experiment (§7.1): extraction and EM throughput, and the EM's
/// O(m) claim (runtime vs entities, independent of mention counts).
pub fn scale(cfg: &ReproConfig) -> (String, Value) {
    // Extraction throughput vs worker threads; a larger sharded corpus so
    // per-shard work dominates scheduling overhead.
    let world = presets::table2_world(cfg.seed);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 64,
            ..CorpusConfig::default()
        },
    );
    let source = CorpusSource::new(&generator);
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let table = run_sharded(
            &source,
            world.kb(),
            &surveyor_extract::ExtractionConfig::paper_final(),
            threads,
        );
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(vec![
            format!("extraction, {threads} threads"),
            format!("{:.2}s", elapsed),
            format!("{} statements", table.total_statements()),
        ]);
        values.push(
            json!({"phase": "extraction", "threads": threads, "seconds": elapsed,
                           "statements": table.total_statements()}),
        );
    }
    // EM runtime vs entity count (fixed per-entity rates — mention counts
    // grow linearly but EM cost must stay O(m)).
    use rand::{rngs::StdRng, SeedableRng};
    use surveyor_prob::Poisson;
    for m in [1_000usize, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let counts: Vec<ObservedCounts> = (0..m)
            .map(|i| {
                let (lp, ln) = if i % 5 == 0 { (40.0, 1.0) } else { (2.0, 0.5) };
                ObservedCounts::new(
                    Poisson::new(lp).sample(&mut rng),
                    Poisson::new(ln).sample(&mut rng),
                )
            })
            .collect();
        let start = Instant::now();
        let fitted = fit(&counts, &EmConfig::default());
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(vec![
            format!("EM, {m} entities"),
            format!("{:.3}s", elapsed),
            format!("{} iterations", fitted.iterations),
        ]);
        values.push(json!({"phase": "em", "entities": m, "seconds": elapsed,
                           "iterations": fitted.iterations}));
    }
    let text = format!(
        "Scale (§7.1) — pipeline throughput\n{}",
        render::table(&["Stage", "Time", "Detail"], &rows)
    );
    (text, Value::Array(values))
}

/// `bench pipeline`: extraction throughput (docs/sec) and end-to-end wall
/// time on a fixed corpus preset — the numbers behind `BENCH_pipeline.json`.
///
/// Document generation runs up front, outside the timed region, so the
/// measured phase is exactly annotation (tokenize → tag → parse → entity
/// tagging) plus pattern extraction — the per-sentence hot path.
pub fn pipeline(cfg: &ReproConfig) -> (String, Value) {
    use surveyor::nlp::AnnotatedDocument;
    use surveyor_corpus::RawDocument;
    use surveyor_extract::ShardSource;

    /// Pre-generated raw shards; annotation happens inside `shard`, so it
    /// is part of the measured extraction phase.
    struct RawShards<'a> {
        shards: Vec<Vec<RawDocument>>,
        kb: &'a surveyor_kb::KnowledgeBase,
        lexicon: &'a Lexicon,
    }

    impl ShardSource for RawShards<'_> {
        fn shard_count(&self) -> usize {
            self.shards.len()
        }

        fn shard(&self, index: usize) -> std::borrow::Cow<'_, [AnnotatedDocument]> {
            let mut scratch = AnnotateScratch::default();
            std::borrow::Cow::Owned(
                self.shards[index]
                    .iter()
                    .map(|d| annotate_with(d.id, &d.text, self.kb, self.lexicon, &mut scratch))
                    .collect(),
            )
        }
    }

    let world = presets::table2_world(cfg.seed);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 64,
            ..CorpusConfig::default()
        },
    );
    let lexicon = generator.lexicon();
    let shards: Vec<Vec<RawDocument>> = (0..generator.shard_count())
        .map(|s| generator.shard_text(s))
        .collect();
    let documents: usize = shards.iter().map(Vec::len).sum();
    let sentences: usize = shards
        .iter()
        .flatten()
        .map(|d| d.text.matches('.').count())
        .sum();
    let source = RawShards {
        shards,
        kb: world.kb(),
        lexicon: &lexicon,
    };

    let mut rows = Vec::new();
    let mut extraction = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // One discarded warmup run pays thread spin-up and cold caches;
        // the median of five timed runs then resists shared-host noise in
        // both directions (best-of-N systematically understates cost).
        let mut table = EvidenceTable::new();
        let mut samples = Vec::with_capacity(TIMED_RUNS);
        for run in 0..=TIMED_RUNS {
            let start = Instant::now();
            table = run_sharded(
                &source,
                world.kb(),
                &surveyor_extract::ExtractionConfig::paper_final(),
                threads,
            );
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
        }
        let seconds = median(&mut samples);
        let docs_per_sec = documents as f64 / seconds;
        rows.push(vec![
            format!("extraction, {threads} threads"),
            format!("{seconds:.2}s"),
            format!(
                "{docs_per_sec:.0} docs/s, {} statements",
                table.total_statements()
            ),
        ]);
        extraction.push(json!({
            "threads": threads, "seconds": seconds, "docs_per_sec": docs_per_sec,
            "statements": table.total_statements(),
        }));
    }

    // End to end: sharded extraction plus the interpretation phase
    // (grouping, per-combination EM, decisions).
    let corpus_source = CorpusSource::new(&generator);
    let surveyor = Surveyor::new(world.kb().clone(), cfg.surveyor());
    let start = Instant::now();
    let output = surveyor.run(&corpus_source);
    let seconds = start.elapsed().as_secs_f64();
    rows.push(vec![
        format!("end to end, {} threads", cfg.threads),
        format!("{seconds:.2}s"),
        format!(
            "{} combinations, {} decided pairs",
            output.modeled_combinations(),
            output.decided_pairs()
        ),
    ]);
    let end_to_end = json!({
        "threads": cfg.threads, "seconds": seconds,
        "combinations": output.modeled_combinations(),
        "decided_pairs": output.decided_pairs(),
    });

    let text = format!(
        "Pipeline throughput — fixed preset (table2_world, 64 shards)\n{}",
        render::table(&["Stage", "Time", "Detail"], &rows)
    );
    let value = json!({
        "preset": "table2_world", "seed": cfg.seed, "shards": 64,
        "documents": documents, "sentences": sentences,
        "timing": timing_block(TIMED_RUNS),
        "extraction": extraction, "end_to_end": end_to_end,
    });
    (text, value)
}

/// Timed runs per configuration in `bench pipeline` / `bench scale`.
const TIMED_RUNS: usize = 5;

/// Median of a sample set (mean of the middle two for even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    match samples.len() {
        0 => 0.0,
        n if n % 2 == 1 => samples[n / 2],
        n => (samples[n / 2 - 1] + samples[n / 2]) / 2.0,
    }
}

/// The timing-methodology block embedded in every bench artifact.
fn timing_block(timed_runs: usize) -> Value {
    json!({"warmup_runs": 1, "timed_runs": timed_runs, "statistic": "median"})
}

/// FNV-1a fingerprint of a materialized corpus: folds every document's id,
/// region, and text bytes, so two sweeps collide only if they produced
/// byte-identical shards (up to hash collision).
fn fingerprint_shards(shards: &[Vec<surveyor_corpus::RawDocument>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |byte: u8| hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
    for doc in shards.iter().flatten() {
        for byte in doc.id.to_le_bytes() {
            eat(byte);
        }
        for byte in doc.region.to_le_bytes() {
            eat(byte);
        }
        for &byte in doc.text.as_bytes() {
            eat(byte);
        }
    }
    hash
}

/// `bench scale`: thread-scaling sweep over a corpus roughly 10× the
/// `bench pipeline` preset, timing the generation, extraction, model, and
/// grouping phases separately at 1/2/4/8 workers — the numbers behind
/// `BENCH_scale.json` (`schema_version` 2).
///
/// Besides the speedup curves the artifact records `host_cpus` (speedup is
/// bounded by physical parallelism — on a 1-CPU host every curve is flat
/// and that is the honest result), a determinism block asserting that
/// document fingerprints, statement counts, decided pairs, and grouped
/// evidence are identical across thread counts, and the interner cache
/// counters that prove the steady-state extraction path stays off the
/// global table.
///
/// `quick` shrinks the corpus and run count so `scripts/verify.sh` can
/// smoke-test the artifact schema in seconds.
pub fn scale_sweep(cfg: &ReproConfig, quick: bool) -> (String, Value) {
    use std::sync::Arc;
    use surveyor::nlp::AnnotatedDocument;
    use surveyor::obs::MetricsRegistry;
    use surveyor_corpus::RawDocument;
    use surveyor_extract::ShardSource;

    /// Pre-generated raw shards; annotation happens inside `shard`, so it
    /// is part of the measured extraction phase (as in `bench pipeline`).
    struct RawShards<'a> {
        shards: Vec<Vec<RawDocument>>,
        kb: &'a surveyor_kb::KnowledgeBase,
        lexicon: &'a Lexicon,
    }

    impl ShardSource for RawShards<'_> {
        fn shard_count(&self) -> usize {
            self.shards.len()
        }

        fn shard(&self, index: usize) -> std::borrow::Cow<'_, [AnnotatedDocument]> {
            let mut scratch = AnnotateScratch::default();
            std::borrow::Cow::Owned(
                self.shards[index]
                    .iter()
                    .map(|d| annotate_with(d.id, &d.text, self.kb, self.lexicon, &mut scratch))
                    .collect(),
            )
        }
    }

    let background_per_type = if quick { 60 } else { 4800 };
    let num_shards = if quick { 16 } else { 64 };
    let timed_runs = if quick { 3 } else { TIMED_RUNS };
    let thread_counts = [1usize, 2, 4, 8];
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let world = presets::table2_world_sized(cfg.seed, background_per_type);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards,
            ..CorpusConfig::default()
        },
    );
    let lexicon = generator.lexicon();

    // Generation sweep: parallel corpus materialization at each worker
    // count. The last sweep's output (byte-identical across worker counts
    // by construction, cross-checked below) feeds the extraction source.
    let mut rows = Vec::new();
    let mut generation = Vec::new();
    let mut document_fingerprints = Vec::new();
    let mut shards: Vec<Vec<RawDocument>> = Vec::new();
    let mut generation_t1 = 0.0f64;
    for threads in thread_counts {
        let mut samples = Vec::with_capacity(timed_runs);
        for run in 0..=timed_runs {
            let start = Instant::now();
            shards = generator.all_shards_text(threads);
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
        }
        let seconds = median(&mut samples);
        if threads == 1 {
            generation_t1 = seconds;
        }
        let speedup = generation_t1 / seconds;
        let docs: usize = shards.iter().map(Vec::len).sum();
        document_fingerprints.push(fingerprint_shards(&shards));
        rows.push(vec![
            format!("generation, {threads} threads"),
            format!("{seconds:.2}s"),
            format!("{speedup:.2}x"),
            format!("{docs} documents"),
        ]);
        generation.push(json!({
            "threads": threads, "seconds": seconds, "speedup": speedup,
            "documents": docs,
        }));
    }
    let documents: usize = shards.iter().map(Vec::len).sum();
    let source = RawShards {
        shards,
        kb: world.kb(),
        lexicon: &lexicon,
    };
    let extraction_config = surveyor_extract::ExtractionConfig::paper_final();

    // Extraction sweep. One warmup then `timed_runs` timed runs per thread
    // count; the warmup also yields the evidence reused by the model sweep.
    let mut extraction = Vec::new();
    let mut statement_counts = Vec::new();
    let mut evidence = EvidenceTable::new();
    let mut extraction_t1 = 0.0f64;
    for threads in thread_counts {
        let mut samples = Vec::with_capacity(timed_runs);
        for run in 0..=timed_runs {
            let start = Instant::now();
            evidence = run_sharded(&source, world.kb(), &extraction_config, threads);
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
        }
        let seconds = median(&mut samples);
        if threads == 1 {
            extraction_t1 = seconds;
        }
        let speedup = extraction_t1 / seconds;
        statement_counts.push(evidence.total_statements());
        rows.push(vec![
            format!("extraction, {threads} threads"),
            format!("{seconds:.2}s"),
            format!("{speedup:.2}x"),
            format!("{} statements", evidence.total_statements()),
        ]);
        extraction.push(json!({
            "threads": threads, "seconds": seconds, "speedup": speedup,
            "statements": evidence.total_statements(),
        }));
    }

    // Model (interpretation) sweep over the same evidence.
    let mut model = Vec::new();
    let mut decided_counts = Vec::new();
    let mut model_t1 = 0.0f64;
    for threads in thread_counts {
        let surveyor = Surveyor::new(
            world.kb().clone(),
            SurveyorConfig {
                rho: cfg.rho,
                threads,
                ..SurveyorConfig::default()
            },
        );
        let mut samples = Vec::with_capacity(timed_runs);
        let mut decided = 0usize;
        for run in 0..=timed_runs {
            let start = Instant::now();
            let output = surveyor.run_on_evidence(evidence.clone());
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
            decided = output.decided_pairs();
        }
        let seconds = median(&mut samples);
        if threads == 1 {
            model_t1 = seconds;
        }
        let speedup = model_t1 / seconds;
        decided_counts.push(decided);
        rows.push(vec![
            format!("model, {threads} threads"),
            format!("{seconds:.3}s"),
            format!("{speedup:.2}x"),
            format!("{decided} decided pairs"),
        ]);
        model.push(json!({
            "threads": threads, "seconds": seconds, "speedup": speedup,
            "decided_pairs": decided,
        }));
    }

    // Grouping sweep: sharded aggregation of the evidence table into
    // per-(type, property) groups. Quick mode keeps the table small enough
    // that `from_table_parallel` falls back to the serial path below its
    // range threshold — the timing is still honest, it measures the call
    // the pipeline actually makes.
    let mut group = Vec::new();
    let mut group_snapshots: Vec<surveyor_extract::GroupedEvidence> = Vec::new();
    let mut group_t1 = 0.0f64;
    for threads in thread_counts {
        let mut samples = Vec::with_capacity(timed_runs);
        let mut grouped = None;
        for run in 0..=timed_runs {
            let start = Instant::now();
            let g = surveyor_extract::GroupedEvidence::from_table_parallel(
                &evidence,
                world.kb(),
                threads,
            );
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
            grouped = Some(g);
        }
        let seconds = median(&mut samples);
        if threads == 1 {
            group_t1 = seconds;
        }
        let speedup = group_t1 / seconds;
        let grouped = grouped.unwrap_or_default();
        rows.push(vec![
            format!("group, {threads} threads"),
            format!("{seconds:.3}s"),
            format!("{speedup:.2}x"),
            format!("{} combinations", grouped.len()),
        ]);
        group.push(json!({
            "threads": threads, "seconds": seconds, "speedup": speedup,
            "combinations": grouped.len(),
        }));
        group_snapshots.push(grouped);
    }

    let documents_identical = document_fingerprints.windows(2).all(|w| w[0] == w[1]);
    let statements_identical = statement_counts.windows(2).all(|w| w[0] == w[1]);
    let decided_identical = decided_counts.windows(2).all(|w| w[0] == w[1]);
    let groups_identical = group_snapshots.windows(2).all(|w| w[0] == w[1]);

    // One observed run surfaces the interner cache counters: steady-state
    // extraction is lock-free exactly when global lookups stay a small
    // constant (the vocabulary) while hits scale with the corpus.
    let registry = Arc::new(MetricsRegistry::new());
    let threads_max = *thread_counts.last().unwrap_or(&1);
    let _ = surveyor_extract::run_sharded_observed(
        &source,
        world.kb(),
        &extraction_config,
        threads_max,
        &registry,
    );
    let cache_hits = registry.counter_value("extract.intern.cache_hits");
    let global_lookups = registry.counter_value("extract.intern.global_lookups");
    let hit_rate = if cache_hits + global_lookups > 0 {
        cache_hits as f64 / (cache_hits + global_lookups) as f64
    } else {
        0.0
    };

    let text = format!(
        "Thread scaling — {documents} documents, {num_shards} shards, {host_cpus} host CPUs\n{}\nintern cache: {cache_hits} hits, {global_lookups} global lookups ({:.1}% local)",
        render::table(&["Stage", "Median time", "Speedup", "Detail"], &rows),
        hit_rate * 100.0,
    );
    let value = json!({
        "schema_version": 2,
        "preset": "table2_world_sized",
        "background_per_type": background_per_type,
        "seed": cfg.seed, "shards": num_shards,
        "documents": documents,
        "host_cpus": host_cpus,
        "quick": quick,
        "timing": timing_block(timed_runs),
        "phases": json!({
            "generation": generation,
            "extraction": extraction,
            "model": model,
            "group": group,
        }),
        "determinism": json!({
            "documents_identical": documents_identical,
            "statements_identical": statements_identical,
            "decided_pairs_identical": decided_identical,
            "groups_identical": groups_identical,
            "document_fingerprints": document_fingerprints,
            "statements": statement_counts,
            "decided_pairs": decided_counts,
        }),
        "intern_cache": json!({
            "hits": cache_hits,
            "global_lookups": global_lookups,
            "hit_rate": hit_rate,
        }),
    });
    (text, value)
}

/// `bench snapshot`: binary snapshot throughput — the numbers behind
/// `BENCH_snapshot.json`.
///
/// Mines the `bench pipeline` preset once, then times three things over
/// the same mined world: re-mining it from the corpus (the cost a
/// snapshot avoids), encoding it to `surveyor-wire` bytes, and decoding
/// those bytes back into a full [`SurveyorOutput`]. The headline number
/// is `speedup_load_vs_remine`; the artifact also asserts the round trip
/// is byte-identical (decode → re-encode reproduces the input exactly).
///
/// `quick` shrinks the corpus and run count so `scripts/verify.sh` can
/// smoke-test the artifact schema in seconds.
pub fn snapshot_bench(cfg: &ReproConfig, quick: bool) -> (String, Value) {
    let num_shards = if quick { 16 } else { 64 };
    let timed_runs = if quick { 3 } else { TIMED_RUNS };

    let world = presets::table2_world(cfg.seed);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards,
            ..CorpusConfig::default()
        },
    );
    let source = CorpusSource::new(&generator);
    let surveyor = Surveyor::new(world.kb().clone(), cfg.surveyor());

    // Re-mine timings: the full pipeline (generation + extraction +
    // grouping + EM + decisions) a snapshot load replaces.
    let mut output = surveyor.run(&source);
    let mut remine_samples = Vec::with_capacity(timed_runs);
    for run in 0..=timed_runs {
        let start = Instant::now();
        output = surveyor.run(&source);
        if run > 0 {
            remine_samples.push(start.elapsed().as_secs_f64());
        }
    }
    let remine_seconds = median(&mut remine_samples);

    // Encode timings.
    let mut bytes = surveyor::save_snapshot(&output);
    let mut encode_samples = Vec::with_capacity(timed_runs);
    for run in 0..=timed_runs {
        let start = Instant::now();
        bytes = surveyor::save_snapshot(&output);
        if run > 0 {
            encode_samples.push(start.elapsed().as_secs_f64());
        }
    }
    let encode_seconds = median(&mut encode_samples);
    let megabytes = bytes.len() as f64 / (1024.0 * 1024.0);
    let encode_mb_s = megabytes / encode_seconds.max(f64::EPSILON);

    // Decode (load) timings: bytes back to a full mined world.
    let mut loaded = surveyor::load_snapshot(&bytes).expect("own snapshot decodes");
    let mut load_samples = Vec::with_capacity(timed_runs);
    for run in 0..=timed_runs {
        let start = Instant::now();
        loaded = surveyor::load_snapshot(&bytes).expect("own snapshot decodes");
        if run > 0 {
            load_samples.push(start.elapsed().as_secs_f64());
        }
    }
    let load_seconds = median(&mut load_samples);
    let decode_mb_s = megabytes / load_seconds.max(f64::EPSILON);
    let speedup = remine_seconds / load_seconds.max(f64::EPSILON);

    // Round-trip fidelity: the loaded world re-encodes to the exact same
    // bytes, and its queryable store is the same JSON.
    let byte_identical = surveyor::save_snapshot(&loaded) == bytes
        && surveyor::SubjectiveKb::from_output(&loaded, loaded.kb()).to_json()
            == surveyor::SubjectiveKb::from_output(&output, output.kb()).to_json();

    let rows = vec![
        vec![
            "re-mine".to_owned(),
            format!("{remine_seconds:.3}s"),
            format!("{} statements", output.evidence.total_statements()),
        ],
        vec![
            "encode".to_owned(),
            format!("{encode_seconds:.4}s"),
            format!("{:.1} MB/s, {} bytes", encode_mb_s, bytes.len()),
        ],
        vec![
            "load".to_owned(),
            format!("{load_seconds:.4}s"),
            format!("{decode_mb_s:.1} MB/s"),
        ],
        vec![
            "speedup".to_owned(),
            format!("{speedup:.0}x"),
            format!("byte identical: {byte_identical}"),
        ],
    ];
    let text = format!(
        "Snapshot throughput — load vs re-mine (table2_world, {num_shards} shards)\n{}",
        render::table(&["Stage", "Median time", "Detail"], &rows)
    );
    let value = json!({
        "schema_version": 1,
        "preset": "table2_world", "seed": cfg.seed, "shards": num_shards,
        "quick": quick,
        "timing": timing_block(timed_runs),
        "snapshot_bytes": bytes.len(),
        "format_version": surveyor::wire::FORMAT_VERSION,
        "remine_seconds": remine_seconds,
        "encode_seconds": encode_seconds,
        "encode_mb_s": encode_mb_s,
        "load_seconds": load_seconds,
        "decode_mb_s": decode_mb_s,
        "speedup_load_vs_remine": speedup,
        "byte_identical": byte_identical,
        "statements": output.evidence.total_statements(),
        "decided_pairs": output.decided_pairs(),
    });
    (text, value)
}

/// `bench lint`: wall time, parallel speedup, and warm-cache hit rate of
/// the flow-aware linter over the workspace at `root`, behind
/// `BENCH_lint.json`.
///
/// Three measurements: (1) a 1/2/4/8-worker sweep with the cache off,
/// asserting byte-identical JSON reports at every width; (2) a cold run
/// against a fresh cache file; (3) a warm run against that same file,
/// whose `reuse_fraction` is the fraction of unchanged files the cache
/// let the linter skip re-analyzing.
pub fn lint_bench(root: &std::path::Path, quick: bool) -> Result<(String, Value), String> {
    use surveyor_lint::output::render_json;
    use surveyor_lint::{lint_workspace_with, load_config, LintOptions};

    let timed_runs = if quick { 2 } else { TIMED_RUNS };
    let config = load_config(&root.join("lint.toml"))
        .map_err(|e| format!("loading {}: {e}", root.join("lint.toml").display()))?;
    let lint = |opts: &LintOptions| {
        lint_workspace_with(root, &config, opts).map_err(|e| format!("linting workspace: {e}"))
    };

    // Worker sweep, cache off: median wall time per width, and the JSON
    // report must not move a byte between widths.
    let mut sweep = Vec::new();
    let mut reference: Option<String> = None;
    let mut identical_across_workers = true;
    for workers in [1usize, 2, 4, 8] {
        let opts = LintOptions {
            workers,
            cache_path: None,
        };
        let mut run = lint(&opts)?;
        let mut samples = Vec::with_capacity(timed_runs);
        for timed in 0..=timed_runs {
            let start = Instant::now();
            run = lint(&opts)?;
            if timed > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
        }
        let rendered = render_json(&run.findings, run.files_scanned);
        match &reference {
            None => reference = Some(rendered),
            Some(want) => identical_across_workers &= *want == rendered,
        }
        sweep.push((workers, median(&mut samples), run));
    }
    let (_, t1, base) = &sweep[0];
    let best = sweep
        .iter()
        .map(|&(_, t, _)| t)
        .fold(f64::INFINITY, f64::min);
    let parallel_speedup = t1 / best.max(f64::EPSILON);

    // Cold vs warm cache at the widest width.
    let cache_path = std::env::temp_dir().join(format!(
        "surveyor-lint-bench-{}-cache.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_path);
    let opts = LintOptions {
        workers: 8,
        cache_path: Some(cache_path.clone()),
    };
    let start = Instant::now();
    let cold = lint(&opts)?;
    let cold_seconds = start.elapsed().as_secs_f64();
    let mut warm_samples = Vec::with_capacity(timed_runs);
    let mut warm = lint(&opts)?;
    for timed in 0..=timed_runs {
        let start = Instant::now();
        warm = lint(&opts)?;
        if timed > 0 {
            warm_samples.push(start.elapsed().as_secs_f64());
        }
    }
    let warm_seconds = median(&mut warm_samples);
    let _ = std::fs::remove_file(&cache_path);
    let reuse_fraction = warm.files_reused as f64 / warm.files_scanned.max(1) as f64;
    let warm_identical = render_json(&warm.findings, warm.files_scanned)
        == render_json(&cold.findings, cold.files_scanned);

    let mut rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(workers, seconds, run)| {
            vec![
                format!("{workers} workers"),
                format!("{seconds:.4}s"),
                format!(
                    "{} findings / {} files",
                    run.findings.len(),
                    run.files_scanned
                ),
            ]
        })
        .collect();
    rows.push(vec![
        "cold cache".to_owned(),
        format!("{cold_seconds:.4}s"),
        format!("{} reused", cold.files_reused),
    ]);
    rows.push(vec![
        "warm cache".to_owned(),
        format!("{warm_seconds:.4}s"),
        format!(
            "{}/{} reused ({:.0}%)",
            warm.files_reused,
            warm.files_scanned,
            reuse_fraction * 100.0
        ),
    ]);
    let text = format!(
        "Lint throughput — parallel sweep + incremental cache ({} files)\n{}\nparallel speedup \
         (1 -> best width): {parallel_speedup:.2}x, identical output across widths: \
         {identical_across_workers}",
        base.files_scanned,
        render::table(&["Configuration", "Median time", "Detail"], &rows)
    );
    let value = json!({
        "schema_version": 1,
        "preset": "workspace",
        "quick": quick,
        "timing": timing_block(timed_runs),
        "ruleset_version": surveyor_lint::rules::RULESET_VERSION,
        "files_scanned": base.files_scanned,
        "findings": base.findings.len(),
        "workers": sweep.iter().map(|(workers, seconds, _)| json!({
            "workers": workers,
            "seconds": seconds,
        })).collect::<Vec<_>>(),
        "parallel_speedup": parallel_speedup,
        "identical_across_workers": identical_across_workers,
        "cache": json!({
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds.max(f64::EPSILON),
            "files_reused": warm.files_reused,
            "reuse_fraction": reuse_fraction,
            "identical_to_cold": warm_identical,
        }),
    });
    Ok((text, value))
}

/// One HTTP/1.1 exchange against a bench server: connect, send `request`
/// verbatim, read to EOF (the server closes every connection), and parse
/// the status line. `None` covers every transport failure — in the chaos
/// phase a vanished response is an expected outcome, not a panic.
fn http_exchange(addr: std::net::SocketAddr, request: &[u8]) -> Option<(u16, String)> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    let patience = Some(std::time::Duration::from_secs(10));
    stream.set_read_timeout(patience).ok()?;
    stream.set_write_timeout(patience).ok()?;
    stream.write_all(request).ok()?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply).ok()?;
    let status = reply.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()?;
    Some((status, reply))
}

/// `GET path` against a bench server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<(u16, String)> {
    http_exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes(),
    )
}

/// `POST path` against a bench server.
fn http_post(addr: std::net::SocketAddr, path: &str) -> Option<(u16, String)> {
    http_exchange(
        addr,
        format!("POST {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes(),
    )
}

/// `GET path` as a well-behaved client under chaos: honors the server's
/// backpressure by retrying briefly on a shed `503` or queue-expired
/// `408`. Those are *correct* overload answers, not wrong answers — the
/// invariant the chaos phase pins is that a valid query is never
/// answered incorrectly or dropped, not that the server never sheds.
fn http_get_patient(addr: std::net::SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut last = None;
    for _ in 0..5 {
        last = http_get(addr, path);
        match last {
            Some((503, _)) | Some((408, _)) | None => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            _ => break,
        }
    }
    last
}

/// Nearest-rank percentile of a sample set (sorts in place).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// `bench serve`: query-server throughput and chaos resilience — the
/// numbers behind `BENCH_serve.json`.
///
/// Mines the `table2_world` preset once, snapshots it, and boots a
/// `surveyor-server` on a loopback port. The throughput phase replays
/// `/decide` queries from 1/2/4/8 client threads and reports p50/p99
/// latency plus queries/sec. The chaos phase then boots a second,
/// deliberately tight server (2 workers, 4-slot queue, debug routes) and
/// drives a seeded [`FaultPlan`] of hostile clients — malformed request
/// bytes, slowloris partial writes, mid-request disconnects, worker
/// panics, and concurrent corrupt-reload attempts — interleaved with
/// valid queries whose answers are asserted against the mined store. An
/// overload burst against stalled workers pins the shed counter, one
/// valid reload pins the accept path, and the server is shut down via
/// `POST /ctl/shutdown` (the graceful drain path, not the test hook).
///
/// `quick` shrinks the corpus, request counts, and chaos op count so
/// `scripts/verify.sh` can smoke-test the artifact schema in seconds.
pub fn serve_bench(cfg: &ReproConfig, quick: bool) -> (String, Value) {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use surveyor::obs::MetricsRegistry;
    use surveyor_extract::{Fault, FaultPlan};
    use surveyor_server::{percent_encode, ServedState, ServerConfig};

    // Mine once, snapshot to bytes: both servers serve the same index.
    let num_shards = if quick { 4 } else { 16 };
    let world = presets::table2_world(cfg.seed);
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards,
            ..CorpusConfig::default()
        },
    );
    let surveyor = Surveyor::new(
        world.kb().clone(),
        SurveyorConfig {
            rho: 40,
            threads: cfg.threads,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    let bytes = surveyor::save_snapshot(&output);
    let state = Arc::new(
        ServedState::from_snapshot_bytes(&bytes, 1, "bench").expect("own snapshot serves"),
    );
    let associations = state.store.len();

    // Query targets: every stored opinion, as a percent-encoded `/decide`
    // path plus the verdict the store will answer with. The expected bit
    // comes from `find_opinion` (what the route calls), not the block the
    // pair was enumerated from — when an entity carries the same property
    // under two types, the route answers from the most confident block.
    let targets: Vec<(String, bool)> = state
        .store
        .blocks()
        .iter()
        .flat_map(|block| {
            block
                .opinions
                .iter()
                .map(move |o| (o.entity_name.as_str(), &block.property))
        })
        .take(256)
        .map(|(entity, property)| {
            let (_, opinion) = state
                .store
                .find_opinion(entity, property)
                .expect("enumerated pair resolves");
            (
                format!(
                    "/decide/{}/{}",
                    percent_encode(entity),
                    percent_encode(&property.to_string())
                ),
                opinion.positive,
            )
        })
        .collect();
    assert!(!targets.is_empty(), "mined snapshot decided no pairs");

    // ---- Throughput phase: a comfortably provisioned server. ----
    let registry = Arc::new(MetricsRegistry::new());
    let handle = surveyor_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 256,
            request_budget: Duration::from_secs(5),
            retry_after_seconds: 1,
            debug_routes: false,
        },
        state.clone(),
        registry.clone(),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let per_client = if quick { 40 } else { 300 };
    for (path, _) in targets.iter().take(8) {
        let _ = http_get(addr, path); // warmup: TCP stack + first-touch caches
    }
    let mut rows = Vec::new();
    let mut throughput = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let errors = AtomicUsize::new(0);
        let started = Instant::now();
        let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let targets = &targets;
                    let errors = &errors;
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            // Stride by a prime so clients do not walk the
                            // target list in lockstep.
                            let (path, _) = &targets[(c * 7919 + i) % targets.len()];
                            let t0 = Instant::now();
                            if let Some((200, _)) = http_get(addr, path) {
                                lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = started.elapsed().as_secs_f64();
        let ok = latencies_ms.len();
        let qps = ok as f64 / wall.max(f64::EPSILON);
        let p50_ms = percentile(&mut latencies_ms, 50.0);
        let p99_ms = percentile(&mut latencies_ms, 99.0);
        let errors = errors.into_inner();
        rows.push(vec![
            format!("{clients} clients"),
            format!("{qps:.0} q/s"),
            format!("{p50_ms:.2} ms"),
            format!("{p99_ms:.2} ms"),
            format!("{ok} ok, {errors} errors"),
        ]);
        throughput.push(json!({
            "threads": clients, "requests": clients * per_client,
            "ok": ok, "errors": errors,
            "qps": qps, "p50_ms": p50_ms, "p99_ms": p99_ms,
        }));
    }
    let throughput_requests = registry.counter_value("serve.requests");
    handle.shutdown();

    // ---- Chaos phase: a tight server under a seeded fault plan. ----
    let chaos_registry = Arc::new(MetricsRegistry::new());
    let chaos = surveyor_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 4,
            request_budget: Duration::from_secs(2),
            retry_after_seconds: 1,
            debug_routes: true,
        },
        state.clone(),
        chaos_registry.clone(),
    )
    .expect("bind loopback");
    let chaos_addr = chaos.addr();

    // Reload candidates on disk: one corrupt (bit-flipped CRC region),
    // one valid. Unique names so parallel bench runs cannot collide.
    let pid = std::process::id();
    let corrupt_path =
        std::env::temp_dir().join(format!("surveyor_bench_corrupt_{}_{pid}.swire", cfg.seed));
    let valid_path =
        std::env::temp_dir().join(format!("surveyor_bench_valid_{}_{pid}.swire", cfg.seed));
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&corrupt_path, &corrupt).expect("write corrupt reload candidate");
    std::fs::write(&valid_path, &bytes).expect("write valid reload candidate");
    let corrupt_route = format!(
        "/ctl/reload?path={}",
        percent_encode(corrupt_path.to_str().expect("utf8 temp path"))
    );

    let ops = if quick { 48 } else { 192 };
    let plan = FaultPlan::from_seed(cfg.seed, ops);
    let valid_sent = AtomicUsize::new(0);
    let valid_ok = AtomicUsize::new(0);
    let malformed_sent = AtomicUsize::new(0);
    let slowloris_sent = AtomicUsize::new(0);
    let disconnects_sent = AtomicUsize::new(0);
    let corrupt_reloads = AtomicUsize::new(0);
    let corrupt_rejected = AtomicUsize::new(0);
    let panics_injected = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let plan = &plan;
            let targets = &targets;
            let corrupt_route = corrupt_route.as_str();
            let valid_sent = &valid_sent;
            let valid_ok = &valid_ok;
            let malformed_sent = &malformed_sent;
            let slowloris_sent = &slowloris_sent;
            let disconnects_sent = &disconnects_sent;
            let corrupt_reloads = &corrupt_reloads;
            let corrupt_rejected = &corrupt_rejected;
            let panics_injected = &panics_injected;
            scope.spawn(move || {
                for i in (worker..ops).step_by(4) {
                    // The seeded plan decides most ops, but three classes
                    // are pinned to fixed op slots so every run exercises
                    // them regardless of how the seed rolls: concurrent
                    // corrupt reloads (i % 12 == 5), slowloris (== 11),
                    // and mid-request disconnects (== 3).
                    let fault = match i % 12 {
                        5 => Some(Fault::Permanent),
                        11 => Some(Fault::Slow { millis: 0 }),
                        3 => Some(Fault::Slow { millis: 1 }),
                        _ => plan.fault(i),
                    };
                    match fault {
                        Some(Fault::Panic) => {
                            panics_injected.fetch_add(1, Ordering::Relaxed);
                            let _ = http_post(chaos_addr, "/ctl/panic");
                        }
                        Some(Fault::Transient { failures }) => {
                            malformed_sent.fetch_add(1, Ordering::Relaxed);
                            let junk = format!("GET /\u{1}bad op{i} x{failures}\r\n\r\n");
                            let _ = http_exchange(chaos_addr, junk.as_bytes());
                        }
                        Some(Fault::Permanent) => {
                            // Concurrent corrupt-reload attempt: must be
                            // rejected, and the very next valid query must
                            // still answer from the old index.
                            corrupt_reloads.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..5 {
                                match http_post(chaos_addr, corrupt_route) {
                                    Some((422, _)) => {
                                        corrupt_rejected.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                    // Shed or queue-expired: back off and
                                    // retry like a real client would.
                                    Some((503, _)) | Some((408, _)) | None => {
                                        std::thread::sleep(Duration::from_millis(25));
                                    }
                                    Some(_) => break,
                                }
                            }
                            let (path, positive) = &targets[i % targets.len()];
                            valid_sent.fetch_add(1, Ordering::Relaxed);
                            if let Some((200, body)) = http_get_patient(chaos_addr, path) {
                                if body.contains(&format!("\"positive\": {positive}")) {
                                    valid_ok.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Some(Fault::Slow { millis: 0 }) => {
                            // Slowloris: dribble a partial head, then hang
                            // up without ever finishing it.
                            slowloris_sent.fetch_add(1, Ordering::Relaxed);
                            if let Ok(mut s) = std::net::TcpStream::connect(chaos_addr) {
                                let _ = s.write_all(b"GET /healthz HT");
                                std::thread::sleep(Duration::from_millis(50));
                                let _ = s.write_all(b"TP/1.1\r\nHost:");
                            }
                        }
                        Some(Fault::Slow { .. }) => {
                            // Mid-request disconnect.
                            disconnects_sent.fetch_add(1, Ordering::Relaxed);
                            if let Ok(mut s) = std::net::TcpStream::connect(chaos_addr) {
                                let _ = s.write_all(b"GET /decide/nobody");
                            }
                        }
                        None => {
                            let (path, positive) = &targets[i % targets.len()];
                            valid_sent.fetch_add(1, Ordering::Relaxed);
                            if let Some((200, body)) = http_get_patient(chaos_addr, path) {
                                if body.contains(&format!("\"positive\": {positive}")) {
                                    valid_ok.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    let valid_sent = valid_sent.into_inner();
    let valid_ok = valid_ok.into_inner();
    let malformed_sent = malformed_sent.into_inner();
    let slowloris_sent = slowloris_sent.into_inner();
    let disconnects_sent = disconnects_sent.into_inner();
    let corrupt_reloads = corrupt_reloads.into_inner();
    let corrupt_rejected = corrupt_rejected.into_inner();
    let panics_injected = panics_injected.into_inner();

    // One valid reload must still be accepted after all that abuse.
    let accepted_reload = matches!(
        http_post(
            chaos_addr,
            &format!(
                "/ctl/reload?path={}",
                percent_encode(valid_path.to_str().expect("utf8 temp path"))
            ),
        ),
        Some((200, _))
    );

    // Overload burst: stall both workers, then pile 24 connections onto
    // the 4-slot queue — the overflow must shed as immediate 503s.
    let burst = 24usize;
    let shed_503 = std::thread::scope(|scope| {
        let stallers: Vec<_> = (0..2)
            .map(|_| scope.spawn(move || http_post(chaos_addr, "/ctl/stall?ms=600")))
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        let shed = AtomicUsize::new(0);
        std::thread::scope(|inner| {
            for _ in 0..burst {
                let shed = &shed;
                inner.spawn(move || {
                    if let Some((503, reply)) = http_get(chaos_addr, "/healthz") {
                        assert!(
                            reply.contains("Retry-After:"),
                            "shed reply lacks Retry-After"
                        );
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for s in stallers {
            let _ = s.join();
        }
        shed.into_inner()
    });

    // Graceful drain via the control route, then join every thread.
    let graceful = matches!(http_post(chaos_addr, "/ctl/shutdown"), Some((200, _)));
    chaos.join();
    let _ = std::fs::remove_file(&corrupt_path);
    let _ = std::fs::remove_file(&valid_path);

    let counter = |name: &str| chaos_registry.counter_value(name);
    let chaos_metrics = json!({
        "requests": counter("serve.requests"),
        "shed": counter("serve.shed"),
        "panics": counter("serve.panics"),
        "deadline_expired": counter("serve.deadline_expired"),
        "malformed": counter("serve.malformed"),
        "disconnects": counter("serve.disconnects"),
        "reload_ok": counter("serve.reload.ok"),
        "reload_rejected": counter("serve.reload.rejected"),
    });

    let text = format!(
        "Serve throughput — {associations} associations, {} query targets\n{}\n\
         chaos: {ops} ops — {valid_ok}/{valid_sent} valid queries answered correctly, \
         {}/{} corrupt reloads rejected, {} panics injected, \
         {shed_503}/{burst} shed in overload burst, accepted reload: {accepted_reload}, \
         graceful shutdown: {graceful}",
        targets.len(),
        render::table(&["Clients", "Throughput", "p50", "p99", "Detail"], &rows),
        corrupt_rejected,
        corrupt_reloads,
        panics_injected,
    );
    let all_valid_answered = valid_sent > 0 && valid_sent == valid_ok;
    let value = json!({
        "schema_version": 1,
        "preset": "table2_world",
        "seed": cfg.seed,
        "shards": num_shards,
        "quick": quick,
        "associations": associations,
        "targets": targets.len(),
        "requests_per_client": per_client,
        "throughput": throughput,
        "throughput_requests_served": throughput_requests,
        "chaos": json!({
            "ops": ops,
            "valid_queries": valid_sent,
            "valid_ok": valid_ok,
            "all_valid_answered": all_valid_answered,
            "malformed": malformed_sent,
            "slowloris": slowloris_sent,
            "disconnects": disconnects_sent,
            "corrupt_reloads": corrupt_reloads,
            "corrupt_reloads_rejected": corrupt_rejected,
            "panics_injected": panics_injected,
            "overload": json!({ "burst": burst, "shed_503": shed_503 }),
            "accepted_reload": accepted_reload,
            "graceful_shutdown": graceful,
            "metrics": chaos_metrics,
        }),
    });
    (text, value)
}

/// `bench incremental`: delta-ingestion cost vs from-scratch mining,
/// behind `BENCH_incremental.json`.
///
/// Four measurements over the long-tail preset (many (type, property)
/// groups, so a small delta leaves most groups untouched):
///
/// 1. **Delta sweep** — fixed corpus, growing delta: update wall time
///    must track the delta size, not the corpus size, and every updated
///    output must re-encode byte-identical to the from-scratch mine of
///    the whole corpus.
/// 2. **Corpus sweep** — fixed absolute delta, growing corpus: the
///    from-scratch time grows with the corpus while the update time
///    stays roughly flat.
/// 3. **Thread determinism** — the byte-identity of (1) holds at 1, 2,
///    4, and 8 worker threads.
/// 4. **Chaos replay** — a base mined under seeded fault injection
///    quarantines shards into the replay queue; updating it (delta plus
///    replay) converges bit-for-bit to the clean from-scratch bytes.
///
/// A fifth block times the opt-in `WarmStart::Seeded` mode, which trades
/// byte-identity for a single warm-started EM run per dirty group, and
/// records whether its *decisions* still match.
pub fn incremental_bench(cfg: &ReproConfig, quick: bool) -> (String, Value) {
    use surveyor::WarmStart;

    let num_shards: usize = if quick { 20 } else { 40 };
    let timed_runs = if quick { 3 } else { TIMED_RUNS };
    // 5%, 10%, 20%, and 50% of the corpus.
    let delta_sizes: Vec<usize> = [20, 10, 5, 2].iter().map(|d| num_shards / d).collect();
    let fixed_delta = num_shards / 10;
    // The long-tail preset's per-domain rates are deliberately low; the
    // default ρ = 100 would leave every group below threshold and the EM
    // phase idle. ρ = 25 keeps a healthy population of modeled groups so
    // updates exercise dirty-group refits and carried groups alike.
    let rho = cfg.rho.min(25);
    // A leaner EM search than the default (half the pA grid, one restart
    // instead of three). Applied identically to the from-scratch and
    // incremental sides, so speedups stay apples-to-apples; it keeps the
    // constant per-group refit cost from drowning the delta-proportional
    // extraction cost at bench scale.
    let em = EmConfig {
        pa_grid: (50..100).step_by(4).map(|p| p as f64 / 100.0).collect(),
        restart_shares: vec![0.5],
        ..EmConfig::default()
    };

    let world = presets::long_tail_world(40, 120, 8, cfg.seed);
    let kb = world.kb().clone();
    let make_generator = |shards: usize| {
        CorpusGenerator::new(
            world.clone(),
            CorpusConfig {
                num_shards: shards,
                ..CorpusConfig::default()
            },
        )
    };
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho,
            em: em.clone(),
            threads: cfg.threads,
            ..SurveyorConfig::default()
        },
    );
    let retry = RetryPolicy::default();
    let policy = FailurePolicy::FailFast;

    let generator = make_generator(num_shards);
    let source = CorpusSource::new(&generator);

    // Mines shards `[0, upto)` of a generator — the base snapshot an
    // update later extends.
    let mine_base = |surv: &Surveyor, gen: &CorpusGenerator, upto: usize| {
        let subset = ShardSubset::range(CorpusSource::new(gen), 0, upto);
        surv.try_run(&subset, &retry, &policy)
            .expect("clean base mine")
            .output
    };

    // From-scratch reference: the full corpus, mined cold.
    let mut scratch = surveyor.run(&source);
    let mut scratch_samples = Vec::with_capacity(timed_runs);
    for run in 0..=timed_runs {
        let start = Instant::now();
        scratch = surveyor.run(&source);
        if run > 0 {
            scratch_samples.push(start.elapsed().as_secs_f64());
        }
    }
    let scratch_seconds = median(&mut scratch_samples);
    let scratch_bytes = surveyor::save_snapshot(&scratch);

    // (1) Delta sweep: base = all but the last `d` shards, delta = the
    // rest. Updates are timed on a pre-mined base clone, mirroring the
    // real flow where the base comes off disk.
    let mut delta_rows = Vec::new();
    let mut sweep_table = Vec::new();
    for &d in &delta_sizes {
        let base_shards = num_shards - d;
        let base = mine_base(&surveyor, &generator, base_shards);
        let mut outcome = None;
        let mut samples = Vec::with_capacity(timed_runs);
        for run in 0..=timed_runs {
            let input = base.clone();
            let delta = ShardSubset::range(CorpusSource::new(&generator), base_shards, num_shards);
            let start = Instant::now();
            let out = surveyor
                .try_update(input, &delta, &retry, &policy, WarmStart::Exact)
                .expect("clean update");
            if run > 0 {
                samples.push(start.elapsed().as_secs_f64());
            }
            outcome = Some(out);
        }
        let update_seconds = median(&mut samples);
        let outcome = outcome.expect("at least one update ran");
        let byte_identical = surveyor::save_snapshot(&outcome.output) == scratch_bytes;
        let speedup = scratch_seconds / update_seconds.max(f64::EPSILON);
        let stats = outcome.stats;
        sweep_table.push(vec![
            format!("{d}/{num_shards}"),
            format!("{:.0}%", d as f64 / num_shards as f64 * 100.0),
            format!("{update_seconds:.3}s"),
            format!("{speedup:.1}x"),
            format!(
                "{}/{} refit, {} carried",
                stats.groups_refit, stats.groups_total, stats.groups_carried
            ),
            byte_identical.to_string(),
        ]);
        delta_rows.push(json!({
            "delta_shards": d,
            "delta_fraction": d as f64 / num_shards as f64,
            "update_seconds": update_seconds,
            "speedup_vs_scratch": speedup,
            "byte_identical": byte_identical,
            "groups_total": stats.groups_total,
            "groups_dirty": stats.groups_dirty,
            "groups_carried": stats.groups_carried,
            "groups_refit": stats.groups_refit,
            "delta_pairs": stats.delta_pairs,
            "delta_statements": stats.delta_statements,
        }));
    }

    // (2) Corpus sweep: the same absolute delta against growing corpora.
    // Each corpus size is its own world realization (shard contents
    // depend on the shard count), so times are comparable only within a
    // row — which is the point: scratch grows, update does not.
    let mut corpus_rows = Vec::new();
    let mut corpus_table = Vec::new();
    for n in [num_shards / 4, num_shards / 2, num_shards] {
        let generator_n = make_generator(n);
        let source_n = CorpusSource::new(&generator_n);
        let mut scratch_n_samples = Vec::with_capacity(timed_runs);
        for run in 0..=timed_runs {
            let start = Instant::now();
            let _ = surveyor.run(&source_n);
            if run > 0 {
                scratch_n_samples.push(start.elapsed().as_secs_f64());
            }
        }
        let scratch_n = median(&mut scratch_n_samples);
        let base = mine_base(&surveyor, &generator_n, n - fixed_delta);
        let mut update_n_samples = Vec::with_capacity(timed_runs);
        for run in 0..=timed_runs {
            let input = base.clone();
            let delta = ShardSubset::range(CorpusSource::new(&generator_n), n - fixed_delta, n);
            let start = Instant::now();
            let _ = surveyor
                .try_update(input, &delta, &retry, &policy, WarmStart::Exact)
                .expect("clean update");
            if run > 0 {
                update_n_samples.push(start.elapsed().as_secs_f64());
            }
        }
        let update_n = median(&mut update_n_samples);
        corpus_table.push(vec![
            format!("{n}"),
            format!("{fixed_delta}"),
            format!("{scratch_n:.3}s"),
            format!("{update_n:.3}s"),
            format!("{:.2}", update_n / scratch_n.max(f64::EPSILON)),
        ]);
        corpus_rows.push(json!({
            "shards": n,
            "delta_shards": fixed_delta,
            "scratch_seconds": scratch_n,
            "update_seconds": update_n,
            "update_fraction_of_scratch": update_n / scratch_n.max(f64::EPSILON),
        }));
    }

    // (3) Thread determinism: scratch and update must hit the reference
    // bytes at every worker count.
    let base_shards = num_shards - fixed_delta;
    let threads = [1usize, 2, 4, 8];
    let mut byte_identical_all_threads = true;
    for &t in &threads {
        let surveyor_t = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho,
                em: em.clone(),
                threads: t,
                ..SurveyorConfig::default()
            },
        );
        let scratch_t = surveyor_t.run(&source);
        let base_t = mine_base(&surveyor_t, &generator, base_shards);
        let delta = ShardSubset::range(CorpusSource::new(&generator), base_shards, num_shards);
        let updated_t = surveyor_t
            .try_update(base_t, &delta, &retry, &policy, WarmStart::Exact)
            .expect("clean update");
        byte_identical_all_threads &= surveyor::save_snapshot(&scratch_t) == scratch_bytes
            && surveyor::save_snapshot(&updated_t.output) == scratch_bytes;
    }

    // (4) Chaos replay: mine the base under a fault plan that
    // permanently kills at least one base shard, then update (delta +
    // replay queue) without faults and demand the clean bytes.
    let max_attempts = retry.max_attempts;
    let chaos_seed = (0..1000)
        .find(|&s| {
            FaultPlan::from_seed(s, num_shards)
                .expected_quarantine(max_attempts)
                .iter()
                .any(|&shard| shard < base_shards)
        })
        .expect("some seed quarantines a base shard");
    let injector = FaultInjector::new(
        CorpusSource::new(&generator),
        FaultPlan::from_seed(chaos_seed, num_shards),
    );
    let chaotic_base = ShardSubset::range(injector, 0, base_shards);
    let degraded = surveyor
        .try_run(
            &chaotic_base,
            &retry,
            &FailurePolicy::Degrade {
                min_shard_coverage: 0.0,
            },
        )
        .expect("degraded run survives");
    let quarantined: Vec<usize> = degraded.coverage.quarantined_shards();
    // Replay queue ∪ delta range, in shard order — exactly what the CLI
    // `update` command requests.
    let mut replay: Vec<usize> = quarantined.clone();
    replay.extend(base_shards..num_shards);
    replay.sort_unstable();
    let replay_delta = ShardSubset::new(CorpusSource::new(&generator), replay);
    let replayed = surveyor
        .try_update(
            degraded.output,
            &replay_delta,
            &retry,
            &policy,
            WarmStart::Exact,
        )
        .expect("replay update");
    let byte_identical_after_replay = surveyor::save_snapshot(&replayed.output) == scratch_bytes;

    // (5) Opt-in seeded warm start: time it and note whether decisions
    // (not bytes — traces differ by construction) still match.
    let base = mine_base(&surveyor, &generator, base_shards);
    let mut seeded_outcome = None;
    let mut seeded_samples = Vec::with_capacity(timed_runs);
    for run in 0..=timed_runs {
        let input = base.clone();
        let delta = ShardSubset::range(CorpusSource::new(&generator), base_shards, num_shards);
        let start = Instant::now();
        let out = surveyor
            .try_update(input, &delta, &retry, &policy, WarmStart::Seeded)
            .expect("seeded update");
        if run > 0 {
            seeded_samples.push(start.elapsed().as_secs_f64());
        }
        seeded_outcome = Some(out);
    }
    let seeded_seconds = median(&mut seeded_samples);
    let seeded = seeded_outcome.expect("at least one seeded update ran");
    let triples = |output: &SurveyorOutput| {
        let mut t: Vec<String> = output
            .triples()
            .into_iter()
            .map(|tr| format!("{}\u{1}{}\u{1}{}", tr.entity, tr.property, tr.polarity))
            .collect();
        t.sort_unstable();
        t
    };
    let seeded_decisions_identical = triples(&seeded.output) == triples(&scratch);
    let exact_10pct_seconds = delta_rows
        .iter()
        .find(|r| r["delta_shards"].as_u64() == Some(fixed_delta as u64))
        .and_then(|r| r["update_seconds"].as_f64())
        .unwrap_or(f64::NAN);

    let text = format!(
        "Incremental mining — update vs from-scratch (long_tail_world, {num_shards} shards, \
         from-scratch {scratch_seconds:.3}s)\n{}\n\
         Fixed {fixed_delta}-shard delta against growing corpora\n{}\n\
         byte-identical at 1/2/4/8 threads: {byte_identical_all_threads}\n\
         chaos replay (seed {chaos_seed}, quarantined {quarantined:?}) -> clean bytes: \
         {byte_identical_after_replay}\n\
         seeded warm start: {seeded_seconds:.3}s (exact: {exact_10pct_seconds:.3}s), \
         decisions identical: {seeded_decisions_identical}",
        render::table(
            &[
                "Delta",
                "Fraction",
                "Update",
                "Speedup",
                "Groups",
                "Identical"
            ],
            &sweep_table
        ),
        render::table(
            &["Shards", "Delta", "Scratch", "Update", "Update/scratch"],
            &corpus_table
        ),
    );
    let value = json!({
        "schema_version": 1,
        "preset": "long_tail_world",
        "seed": cfg.seed,
        "shards": num_shards,
        "rho": rho,
        "quick": quick,
        "timing": timing_block(timed_runs),
        "from_scratch_seconds": scratch_seconds,
        "delta_sweep": delta_rows,
        "corpus_sweep": corpus_rows,
        "determinism": json!({
            "threads": threads.to_vec(),
            "byte_identical_all_threads": byte_identical_all_threads,
            "chaos": json!({
                "seed": chaos_seed,
                "quarantined_shards": quarantined,
                "byte_identical_after_replay": byte_identical_after_replay,
            }),
        }),
        "warm_seeded": json!({
            "update_seconds": seeded_seconds,
            "exact_update_seconds": exact_10pct_seconds,
            "decisions_identical": seeded_decisions_identical,
        }),
    });
    (text, value)
}

/// An observed end-to-end run on the `bench pipeline` preset: attaches a
/// metrics registry to the generator and pipeline and returns the
/// versioned run report, so two bench invocations can be compared phase
/// by phase with `bench diff`.
pub fn pipeline_report(cfg: &ReproConfig) -> surveyor::obs::RunReport {
    use std::sync::Arc;
    use surveyor::obs::MetricsRegistry;

    let world = presets::table2_world(cfg.seed);
    let registry = Arc::new(MetricsRegistry::new());
    let generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: 64,
            ..CorpusConfig::default()
        },
    )
    .with_observer(registry.clone());
    let surveyor =
        Surveyor::new(world.kb().clone(), cfg.surveyor()).with_observer(registry.clone());
    surveyor.run(&CorpusSource::new(&generator));
    registry.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproConfig {
        ReproConfig {
            seed: 5,
            shards: 2,
            threads: 2,
            rho: 40,
            panel_seed: 9,
        }
    }

    #[test]
    fn table1_extracts_all_three_patterns() {
        let (text, value) = table1(&tiny());
        assert!(text.contains("Snake"));
        assert!(text.contains("very big"));
        assert!(text.contains("exciting"));
        assert!(value.as_array().unwrap().len() >= 4);
    }

    #[test]
    fn fig5_detects_double_negation() {
        let (text, value) = fig5(&tiny());
        assert!(text.contains("Positive"), "{text}");
        assert_eq!(value["polarity"], "Positive");
    }

    #[test]
    fn fig6_posterior_is_positive_for_60_3() {
        let (_, value) = fig6(&tiny());
        assert!(value["posterior_60_3"].as_f64().unwrap() > 0.99);
    }

    #[test]
    fn table2_lists_five_types() {
        let (text, value) = table2(&tiny());
        assert!(text.contains("animal"));
        assert_eq!(value.as_array().unwrap().len(), 5);
    }
}
