//! Command implementations.

use crate::args::{DiffFormat, FailurePolicyArg, MineArgs, UpdateArgs, WarmModeArg};
use crate::error::CliError;
use std::sync::Arc;
use surveyor::obs::MetricsRegistry;
use surveyor::prelude::*;
use surveyor::wire::{Fnv64, IncrementalState};
use surveyor::{link_objective, LinkDirection, SubjectiveKb, WarmStart};
use surveyor_corpus::{presets, World};

/// Builds a preset world by name.
fn preset_world(preset: &str, seed: u64) -> Result<World, CliError> {
    match preset {
        "table2" => Ok(presets::table2_world(seed)),
        "cities" => Ok(presets::big_cities_world(seed)),
        "longtail" => Ok(presets::long_tail_world(40, 120, 8, seed)),
        other => Err(CliError::Usage(format!(
            "unknown preset: {other} (expected table2, cities, or longtail)"
        ))),
    }
}

/// The chaos seed in effect: the `--chaos-seed` flag, or the
/// `SURVEYOR_CHAOS_SEED` environment variable as a fallback (how the
/// verify script's chaos gate switches injection on without touching
/// every invocation).
fn chaos_seed_or_env(flag: Option<u64>) -> Option<u64> {
    flag.or_else(|| {
        std::env::var("SURVEYOR_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

fn chaos_seed(args: &MineArgs) -> Option<u64> {
    chaos_seed_or_env(args.chaos_seed)
}

/// Digest identifying the corpus a snapshot was mined from: the preset
/// world, master seed, total shard count (shard contents depend on it),
/// and the region restriction. `surveyor update` refuses a delta whose
/// digest disagrees with the base snapshot's.
fn corpus_digest(preset: &str, seed: u64, shards: usize, region: Option<&str>) -> u64 {
    let mut h = Fnv64::new();
    h.write(preset.as_bytes());
    h.write_u64(seed);
    h.write_u64(shards as u64);
    h.write(region.unwrap_or("").as_bytes());
    h.finish()
}

fn mine_store(
    args: &MineArgs,
    observer: Option<Arc<MetricsRegistry>>,
) -> Result<(SubjectiveKb, SurveyorRun, Arc<KnowledgeBase>, World), CliError> {
    let world = preset_world(&args.preset, args.seed)?;
    let kb = world.kb().clone();
    let mut generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: args.shards.max(1),
            ..CorpusConfig::default()
        },
    );
    let mut surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: args.rho,
            ..SurveyorConfig::default()
        },
    );
    if let Some(obs) = observer {
        generator = generator.with_observer(obs.clone());
        surveyor = surveyor.with_observer(obs);
    }
    let source = match &args.region {
        Some(region) => CorpusSource::try_for_region(&generator, region)
            .map_err(|e| CliError::Usage(e.to_string()))?,
        None => CorpusSource::new(&generator),
    };
    let retry = RetryPolicy::default();
    let policy = match args.failure_policy {
        FailurePolicyArg::FailFast => FailurePolicy::FailFast,
        FailurePolicyArg::Degrade => FailurePolicy::Degrade {
            min_shard_coverage: args.min_shard_coverage,
        },
    };
    // With `--ingest-shards M` only the prefix `[0, M)` of the world is
    // mined; the chaos plan is still seeded over the FULL shard count so
    // the same world shard sees the same faults in a base mine, a delta
    // update, and a from-scratch run.
    let base_shards = args
        .ingest_shards
        .unwrap_or_else(|| generator.shard_count());
    let run = match chaos_seed(args) {
        Some(seed) => {
            let injector =
                FaultInjector::new(source, FaultPlan::from_seed(seed, generator.shard_count()));
            if args.ingest_shards.is_some() {
                let subset = ShardSubset::range(injector, 0, base_shards);
                surveyor.try_run(&subset, &retry, &policy)?
            } else {
                surveyor.try_run(&injector, &retry, &policy)?
            }
        }
        None if args.ingest_shards.is_some() => {
            let subset = ShardSubset::range(source, 0, base_shards);
            surveyor.try_run(&subset, &retry, &policy)?
        }
        None => surveyor.try_run(&source, &retry, &policy)?,
    };
    let store = SubjectiveKb::from_output(&run.output, &kb);
    Ok((store, run, kb, world))
}

/// `surveyor mine` / `surveyor run`
pub fn mine(args: &MineArgs) -> Result<String, CliError> {
    let registry = args
        .report
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let (store, run, _, _) = mine_store(args, registry.clone())?;
    let json = store.to_json();
    let mut summary = format!(
        "mined {} statements into {} associations over {} combinations (rho = {})",
        run.output.evidence.total_statements(),
        store.len(),
        store.blocks().len(),
        args.rho,
    );
    let coverage = &run.coverage;
    if coverage.succeeded < coverage.shard_count || coverage.retries > 0 {
        summary.push_str(&format!(
            "\nshard coverage {:.3} ({}/{}); retries {}; quarantined {:?}",
            coverage.fraction(),
            coverage.succeeded,
            coverage.shard_count,
            coverage.retries,
            coverage.quarantined_shards(),
        ));
    }
    if let (Some(dest), Some(registry)) = (args.report.as_deref(), &registry) {
        let run_report = registry.report();
        if dest == "-" {
            summary = format!("{}\n{summary}", run_report.render());
        } else {
            std::fs::write(dest, run_report.to_json())
                .map_err(|e| CliError::Io(format!("cannot write {dest}: {e}")))?;
            summary.push_str(&format!("\nwrote run report to {dest}"));
        }
    }
    match args.out.as_deref() {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!("{summary}\nwrote {path}"))
        }
        None => Ok(format!("{summary}\n{json}")),
    }
}

/// `surveyor snapshot` — mine a preset and save the whole mined world
/// as a binary `surveyor-wire` snapshot (see FORMAT.md).
pub fn snapshot(args: &MineArgs, out: &str, store: Option<&str>) -> Result<String, CliError> {
    let (store_kb, run, _, _) = mine_store(args, None)?;
    let bytes = match args.ingest_shards {
        Some(m) => {
            // Record incremental state so `surveyor update` can extend
            // this snapshot: which shards made it in, and which were
            // quarantined and await replay.
            let quarantined = run.coverage.quarantined_shards();
            let mut state = IncrementalState {
                rho: args.rho,
                config_digest: SurveyorConfig {
                    rho: args.rho,
                    ..SurveyorConfig::default()
                }
                .digest(),
                corpus_digest: corpus_digest(
                    &args.preset,
                    args.seed,
                    args.shards.max(1),
                    args.region.as_deref(),
                ),
                ingested: Vec::new(),
                pending: quarantined.iter().map(|&s| s as u64).collect(),
            };
            state.pending.sort_unstable();
            for shard in 0..m {
                if !quarantined.contains(&shard) {
                    state.ingest_range(shard as u64, shard as u64 + 1);
                }
            }
            surveyor::save_snapshot_with_state(&run.output, &state)
        }
        None => surveyor::save_snapshot(&run.output),
    };
    std::fs::write(out, &bytes).map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    let mut summary = format!(
        "snapshotted {} statements over {} combinations into {} bytes at {out}",
        run.output.evidence.total_statements(),
        run.output.results.len(),
        bytes.len(),
    );
    if let Some(m) = args.ingest_shards {
        summary.push_str(&format!(
            "\nincremental state: ingested shards [0, {m}) of {}, {} pending replay",
            args.shards.max(1),
            run.coverage.quarantined_shards().len(),
        ));
    }
    if let Some(path) = store {
        std::fs::write(path, store_kb.to_json())
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        summary.push_str(&format!("\nwrote store JSON to {path}"));
    }
    Ok(summary)
}

/// `surveyor update` — ingest a delta corpus into an existing snapshot:
/// extract only the requested shards (the delta range plus any shards
/// quarantined by earlier runs), merge the evidence, and re-decide only
/// the groups the delta touched. With the default `--warm exact` mode
/// the written snapshot is byte-identical to mining the concatenated
/// corpus from scratch.
pub fn update(args: &UpdateArgs) -> Result<String, CliError> {
    let bytes = std::fs::read(&args.snapshot)
        .map_err(|e| CliError::Io(format!("cannot read {}: {e}", args.snapshot)))?;
    let (base, state) = surveyor::load_snapshot_with_state(&bytes)
        .map_err(|e| CliError::InvalidInput(format!("invalid snapshot {}: {e}", args.snapshot)))?;
    let mut state = state.ok_or_else(|| {
        CliError::InvalidInput(format!(
            "snapshot {} carries no incremental state; re-mine it with `surveyor snapshot \
             --ingest-shards` to make it updatable",
            args.snapshot
        ))
    })?;

    let preset = presets::delta_preset(&args.delta_preset).ok_or_else(|| {
        let known: Vec<&str> = presets::DELTA_PRESETS.iter().map(|p| p.name).collect();
        CliError::Usage(format!(
            "unknown delta preset: {} (expected one of: {})",
            args.delta_preset,
            known.join(", ")
        ))
    })?;

    // The update must run under the same mining configuration and over
    // the same corpus the base snapshot came from, or carried-forward
    // groups would be silently wrong.
    let config = SurveyorConfig {
        rho: state.rho,
        ..SurveyorConfig::default()
    };
    if config.digest() != state.config_digest {
        return Err(CliError::InvalidInput(format!(
            "snapshot {} was mined under a different configuration (digest {:#018x}, \
             this binary computes {:#018x})",
            args.snapshot,
            state.config_digest,
            config.digest(),
        )));
    }
    let digest = corpus_digest(
        preset.world,
        args.seed,
        preset.num_shards,
        args.region.as_deref(),
    );
    if state.corpus_digest != 0 && state.corpus_digest != digest {
        return Err(CliError::InvalidInput(format!(
            "delta preset {} (world {}, seed {}, {} shards{}) is not the corpus snapshot {} \
             was mined from",
            preset.name,
            preset.world,
            args.seed,
            preset.num_shards,
            args.region
                .as_deref()
                .map(|r| format!(", region {r}"))
                .unwrap_or_default(),
            args.snapshot,
        )));
    }

    // Requested shards: the delta range plus the replay queue, minus
    // anything already ingested.
    let mut requested: Vec<u64> = state.pending.clone();
    for shard in preset.delta_range() {
        let shard = shard as u64;
        if !state.contains(shard) && !requested.contains(&shard) {
            requested.push(shard);
        }
    }
    requested.sort_unstable();
    if let Some(&out_of_range) = requested.iter().find(|&&s| s >= preset.num_shards as u64) {
        return Err(CliError::InvalidInput(format!(
            "snapshot {} queues shard {out_of_range} for replay, but delta preset {} only \
             has {} shards",
            args.snapshot, preset.name, preset.num_shards,
        )));
    }
    if requested.is_empty() {
        // Nothing new and nothing pending: re-save unchanged (the write
        // is byte-identical to the input, so `update` is idempotent).
        let bytes = surveyor::save_snapshot_with_state(&base, &state);
        std::fs::write(&args.out, &bytes)
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", args.out)))?;
        return Ok(format!(
            "nothing to ingest: delta preset {} is fully covered by {} (wrote {} unchanged)",
            preset.name, args.snapshot, args.out,
        ));
    }

    let world = preset_world(preset.world, args.seed)?;
    let kb = world.kb().clone();
    let generator = CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: preset.num_shards,
            ..CorpusConfig::default()
        },
    );
    let surveyor = Surveyor::new(kb, config);
    let source = match &args.region {
        Some(region) => CorpusSource::try_for_region(&generator, region)
            .map_err(|e| CliError::Usage(e.to_string()))?,
        None => CorpusSource::new(&generator),
    };
    let retry = RetryPolicy::default();
    let policy = match args.failure_policy {
        FailurePolicyArg::FailFast => FailurePolicy::FailFast,
        FailurePolicyArg::Degrade => FailurePolicy::Degrade {
            min_shard_coverage: args.min_shard_coverage,
        },
    };
    let warm = match args.warm {
        WarmModeArg::Exact => WarmStart::Exact,
        WarmModeArg::Seeded => WarmStart::Seeded,
    };
    let shard_list: Vec<usize> = requested.iter().map(|&s| s as usize).collect();
    let outcome = match chaos_seed_or_env(args.chaos_seed) {
        Some(seed) => {
            // Same plan shape as `mine`: seeded over the FULL shard
            // count, so world shard `s` fails identically whether it is
            // reached by a base mine, a delta, or a replay.
            let injector =
                FaultInjector::new(source, FaultPlan::from_seed(seed, generator.shard_count()));
            let subset = ShardSubset::new(injector, shard_list.clone());
            surveyor.try_update(base, &subset, &retry, &policy, warm)?
        }
        None => {
            let subset = ShardSubset::new(source, shard_list.clone());
            surveyor.try_update(base, &subset, &retry, &policy, warm)?
        }
    };

    // Fold the run back into the state: quarantined shards (reported in
    // subset-local indexes) stay pending; everything else is ingested.
    let quarantined_world: Vec<u64> = outcome
        .coverage
        .quarantined_shards()
        .iter()
        .map(|&i| shard_list[i] as u64)
        .collect();
    for &shard in &requested {
        if !quarantined_world.contains(&shard) {
            state.ingest_range(shard, shard + 1);
        }
    }
    state.pending = quarantined_world;
    state.pending.sort_unstable();

    let bytes = surveyor::save_snapshot_with_state(&outcome.output, &state);
    std::fs::write(&args.out, &bytes)
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", args.out)))?;

    let stats = outcome.stats;
    let mut summary = format!(
        "updated {} -> {}: ingested {} of {} requested shards \
         ({} new statements over {} pairs)\n\
         groups: {} total, {} dirtied, {} carried forward, {} refit",
        args.snapshot,
        args.out,
        outcome.coverage.succeeded,
        requested.len(),
        stats.delta_statements,
        stats.delta_pairs,
        stats.groups_total,
        stats.groups_dirty,
        stats.groups_carried,
        stats.groups_refit,
    );
    if !state.pending.is_empty() || outcome.coverage.retries > 0 {
        summary.push_str(&format!(
            "\nshard coverage {:.3} ({}/{}); retries {}; pending replay {:?}",
            outcome.coverage.fraction(),
            outcome.coverage.succeeded,
            outcome.coverage.shard_count,
            outcome.coverage.retries,
            state.pending,
        ));
    }
    Ok(summary)
}

/// `surveyor load` — decode a binary snapshot back into the mined world
/// and emit the store JSON without re-mining. Corrupt snapshots are
/// [`CliError::InvalidInput`] (exit 3), never a panic.
pub fn load(snapshot_path: &str, out: Option<&str>) -> Result<String, CliError> {
    let bytes = std::fs::read(snapshot_path)
        .map_err(|e| CliError::Io(format!("cannot read {snapshot_path}: {e}")))?;
    let output = surveyor::load_snapshot(&bytes)
        .map_err(|e| CliError::InvalidInput(format!("invalid snapshot {snapshot_path}: {e}")))?;
    let store = SubjectiveKb::from_output(&output, output.kb());
    let json = store.to_json();
    let summary = format!(
        "loaded {} associations over {} combinations from {snapshot_path}",
        store.len(),
        store.blocks().len(),
    );
    match out {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            Ok(format!("{summary}\nwrote {path}"))
        }
        None => Ok(format!("{summary}\n{json}")),
    }
}

/// `surveyor serve` — serve a snapshot over HTTP with the fault-hardened
/// query server. Blocks until a client POSTs `/ctl/shutdown`, then
/// drains in-flight requests and returns a traffic summary.
pub fn serve(
    snapshot_path: &str,
    addr: &str,
    workers: usize,
    queue: usize,
    budget_ms: u64,
    debug_routes: bool,
) -> Result<String, CliError> {
    let bytes = std::fs::read(snapshot_path)
        .map_err(|e| CliError::Io(format!("cannot read {snapshot_path}: {e}")))?;
    let state = surveyor_server::ServedState::from_snapshot_bytes(&bytes, 1, snapshot_path)
        .map_err(|e| CliError::InvalidInput(format!("invalid snapshot {snapshot_path}: {e}")))?;
    let associations = state.store.len();
    let registry = Arc::new(MetricsRegistry::new());
    let config = surveyor_server::ServerConfig {
        addr: addr.to_owned(),
        workers: workers.max(1),
        queue_capacity: queue.max(1),
        request_budget: std::time::Duration::from_millis(budget_ms.max(1)),
        retry_after_seconds: 1,
        debug_routes,
    };
    let handle = surveyor_server::start(config, Arc::new(state), registry.clone())
        .map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
    println!(
        "serving {snapshot_path} ({associations} associations) on http://{}\n\
         endpoints: /decide/{{entity}}/{{property}}  /entity/{{entity}}  /model/{{type}}/{{property}}\n\
         \x20          /evidence/{{entity}}/{{property}}  /healthz  /readyz  /metrics\n\
         POST /ctl/reload?path=FILE to hot-reload, POST /ctl/shutdown to stop",
        handle.addr(),
    );
    handle.join();
    Ok(format!(
        "server stopped: {} requests served, {} shed, {} reloads accepted, {} rejected",
        registry.counter_value("serve.requests"),
        registry.counter_value("serve.shed"),
        registry.counter_value("serve.reload.ok"),
        registry.counter_value("serve.reload.rejected"),
    ))
}

fn read_snapshot_for_diff(path: &str) -> Result<(surveyor_wire::Snapshot, u16), CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let reader = surveyor_wire::SnapshotReader::new(&bytes)
        .map_err(|e| CliError::InvalidInput(format!("invalid snapshot {path}: {e}")))?;
    let version = reader.version();
    let snapshot = reader
        .to_snapshot()
        .map_err(|e| CliError::InvalidInput(format!("invalid snapshot {path}: {e}")))?;
    Ok((snapshot, version))
}

/// How many keys a human-format section lists before eliding.
const DIFF_HUMAN_KEY_CAP: usize = 8;

fn render_key_list(out: &mut String, label: &str, keys: &[String]) {
    if keys.is_empty() {
        return;
    }
    for key in keys.iter().take(DIFF_HUMAN_KEY_CAP) {
        out.push_str(&format!("    {label} {key}\n"));
    }
    if keys.len() > DIFF_HUMAN_KEY_CAP {
        out.push_str(&format!(
            "    {label} … and {} more\n",
            keys.len() - DIFF_HUMAN_KEY_CAP
        ));
    }
}

/// `surveyor diff` — compare two snapshots section by section. Returns
/// the rendered report and whether the snapshots are identical (the CLI
/// exits 1 on differences, like `bench diff`).
pub fn diff(old: &str, new: &str, format: DiffFormat) -> Result<(String, bool), CliError> {
    let (snapshot_old, version_old) = read_snapshot_for_diff(old)?;
    let (snapshot_new, version_new) = read_snapshot_for_diff(new)?;
    let diff =
        surveyor_wire::diff_with_versions(&snapshot_old, &snapshot_new, version_old, version_new);
    let identical = diff.is_identical();
    let text = match format {
        DiffFormat::Json => {
            let sections: Vec<serde_json::Value> = diff
                .sections
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "section": s.section,
                        "count_old": s.count_a,
                        "count_new": s.count_b,
                        "added": s.added,
                        "removed": s.removed,
                        "changed": s.changed,
                    })
                })
                .collect();
            let value = serde_json::json!({
                "old": old,
                "new": new,
                "identical": identical,
                "version_old": diff.version_a,
                "version_new": diff.version_b,
                "sample_size_changed": diff.sample_size_changed,
                "differences": diff.difference_count(),
                "sections": sections,
            });
            serde_json::to_string_pretty(&value)
                .map_err(|e| CliError::InvalidInput(format!("cannot render diff: {e}")))?
        }
        DiffFormat::Human => {
            let mut out = format!("comparing {old} -> {new}\n");
            if diff.version_a != diff.version_b {
                out.push_str(&format!(
                    "  wire version: {} -> {} (MISMATCH)\n",
                    diff.version_a, diff.version_b
                ));
            }
            if diff.sample_size_changed {
                out.push_str("  provenance sample size changed\n");
            }
            for s in &diff.sections {
                let verdict = if s.is_identical() {
                    "identical".to_owned()
                } else {
                    format!(
                        "+{} -{} ~{}",
                        s.added.len(),
                        s.removed.len(),
                        s.changed.len()
                    )
                };
                out.push_str(&format!(
                    "  {:<11} {:>5} -> {:<5} {verdict}\n",
                    s.section, s.count_a, s.count_b
                ));
                render_key_list(&mut out, "+", &s.added);
                render_key_list(&mut out, "-", &s.removed);
                render_key_list(&mut out, "~", &s.changed);
            }
            out.push_str(if identical {
                "snapshots are identical"
            } else {
                "snapshots differ"
            });
            out
        }
    };
    Ok((text, identical))
}

fn load_store(path: &str) -> Result<SubjectiveKb, CliError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    SubjectiveKb::from_json(&json)
        .map_err(|e| CliError::InvalidInput(format!("invalid store {path}: {e}")))
}

/// `surveyor query`
pub fn query(
    store_path: &str,
    type_name: &str,
    property: &str,
    negative: bool,
    limit: usize,
) -> Result<String, CliError> {
    let store = load_store(store_path)?;
    let property =
        Property::parse(property).ok_or_else(|| CliError::Usage("empty property".to_owned()))?;
    let hits = if negative {
        store.query_negative(type_name, &property)
    } else {
        store.query(type_name, &property)
    };
    if hits.is_empty() {
        return Ok(format!(
            "no results for \"{property} {type_name}\" (combination not modeled or no {} opinions)",
            if negative { "negative" } else { "positive" },
        ));
    }
    let mut out = format!(
        "{} {} of type `{type_name}` the dominant opinion calls{} `{property}`:\n",
        hits.len().min(limit),
        if hits.len() == 1 {
            "entity"
        } else {
            "entities"
        },
        if negative { " NOT" } else { "" },
    );
    for hit in hits.into_iter().take(limit.max(1)) {
        let docs = if hit.supporting_documents.is_empty() {
            String::new()
        } else {
            format!(
                "  docs {}",
                hit.supporting_documents
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        out.push_str(&format!(
            "  {:<24} Pr = {:.3}  evidence +{}/-{}{docs}\n",
            hit.entity_name, hit.probability, hit.positive_statements, hit.negative_statements
        ));
    }
    Ok(out)
}

/// `surveyor combos`
pub fn combos(store_path: &str) -> Result<String, CliError> {
    let store = load_store(store_path)?;
    let mut out = format!("{} combinations:\n", store.blocks().len());
    for block in store.blocks() {
        let positives = block.opinions.iter().filter(|o| o.positive).count();
        out.push_str(&format!(
            "  {:<12} {:<16} pA = {:.2}  np+S = {:>6.1}  np-S = {:>5.1}  ({} entities, {} positive)\n",
            block.type_name,
            block.property.to_string(),
            block.p_agree,
            block.rate_pos,
            block.rate_neg,
            block.opinions.len(),
            positives,
        ));
    }
    Ok(out)
}

/// `surveyor corpus`
pub fn corpus(preset: &str, seed: u64, shard: usize, limit: usize) -> Result<String, CliError> {
    let world = preset_world(preset, seed)?;
    let generator = CorpusGenerator::new(world, CorpusConfig::default());
    if shard >= generator.shard_count() {
        return Err(CliError::Usage(format!(
            "shard {shard} out of range (corpus has {} shards)",
            generator.shard_count()
        )));
    }
    let docs = generator.shard_text(shard);
    let mut out = format!(
        "shard {shard} of {} holds {} documents; first {}:\n",
        generator.shard_count(),
        docs.len(),
        limit.min(docs.len()),
    );
    for doc in docs.iter().take(limit.max(1)) {
        out.push_str(&format!("  [{}] {}\n", doc.id, doc.text));
    }
    Ok(out)
}

/// `surveyor link`
pub fn link(preset: &str, attribute: &str, seed: u64, rho: u64) -> Result<String, CliError> {
    if preset != "cities" {
        return Err(CliError::Usage(
            "`link` currently supports --preset cities (population)".to_owned(),
        ));
    }
    let args = MineArgs {
        seed,
        rho,
        ..MineArgs::new(preset)
    };
    let (_, run, kb, world) = mine_store(&args, None)?;
    let domain = &world.domains()[0];
    let link = link_objective(
        &run.output,
        &kb,
        domain.type_id,
        &domain.property,
        attribute,
        10,
    )
    .ok_or_else(|| {
        CliError::InvalidInput(format!(
            "no {attribute} link found for `{}`",
            domain.property
        ))
    })?;
    Ok(format!(
        "`{} {}` aligns with {attribute} {} {:.0}\n\
         agreement {:.1}% over {} decided entities\n\
         (the paper's section 9: \"a lower bound on the population count of a city\n\
          starting from which an average user would call that city big\")",
        domain.property,
        kb.entity_type(domain.type_id).name(),
        match link.direction {
            LinkDirection::Above => ">=",
            LinkDirection::Below => "<",
        },
        link.threshold,
        link.agreement * 100.0,
        link.samples,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(preset_world("mars", 1).is_err());
        assert!(corpus("mars", 1, 0, 3).is_err());
    }

    #[test]
    fn corpus_prints_documents() {
        let out = corpus("table2", 3, 0, 3).unwrap();
        assert!(out.contains("documents"));
        assert!(out.lines().count() >= 2);
    }

    #[test]
    fn corpus_rejects_out_of_range_shard() {
        assert!(corpus("table2", 3, 99, 3).is_err());
    }

    #[test]
    fn mine_and_query_round_trip() {
        let dir = std::env::temp_dir().join("surveyor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let path_str = path.to_str().unwrap();

        // Small, fast configuration.
        let args = MineArgs {
            out: Some(path_str.to_owned()),
            seed: 5,
            rho: 40,
            shards: 2,
            ..MineArgs::new("cities")
        };
        let summary = mine(&args).unwrap();
        assert!(summary.contains("mined"), "{summary}");

        let out = query(path_str, "city", "big", false, 5).unwrap();
        assert!(out.contains("Pr ="), "{out}");
        let neg = query(path_str, "city", "big", true, 5).unwrap();
        assert!(neg.contains("NOT"), "{neg}");
        let listing = combos(path_str).unwrap();
        assert!(listing.contains("pA"), "{listing}");

        // Unknown combination reports cleanly.
        let none = query(path_str, "city", "purple", false, 5).unwrap();
        assert!(none.contains("no results"), "{none}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn link_discovers_population_boundary() {
        let out = link("cities", "population", 5, 40).unwrap();
        assert!(out.contains("population >="), "{out}");
        assert!(out.contains("agreement"), "{out}");
    }

    #[test]
    fn query_missing_store_is_an_error() {
        assert!(query("/nonexistent/store.json", "city", "big", false, 5).is_err());
    }

    #[test]
    fn mine_writes_a_parseable_run_report() {
        let dir = std::env::temp_dir().join("surveyor-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let report_str = report_path.to_str().unwrap();

        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            report: Some(report_str.to_owned()),
            ..MineArgs::new("cities")
        };
        let summary = mine(&args).unwrap();
        assert!(summary.contains("wrote run report"), "{summary}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        let report = surveyor::obs::RunReport::from_json(&json).unwrap();
        assert_eq!(report.version, surveyor::obs::REPORT_VERSION);
        for phase in ["extract", "group", "model", "decide", "index"] {
            assert!(report.phase(phase).is_some(), "report misses {phase}");
        }
        assert!(!report.em_groups.is_empty());
        std::fs::remove_file(report_path).ok();
    }

    #[test]
    fn mine_report_dash_renders_a_table() {
        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            report: Some("-".to_owned()),
            ..MineArgs::new("cities")
        };
        let out = mine(&args).unwrap();
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("extract"), "{out}");
        assert!(out.contains("EM convergence"), "{out}");
    }

    #[test]
    fn mine_unknown_region_is_a_usage_error_listing_known_regions() {
        let args = MineArgs {
            region: Some("atlantis".to_owned()),
            ..MineArgs::new("table2")
        };
        match mine(&args) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("unknown region: atlantis"), "{msg}");
                assert!(msg.contains("known regions:"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_then_load_reproduces_the_mined_store() {
        let dir = std::env::temp_dir().join("surveyor-cli-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("world.swire");
        let mined = dir.join("mined.json");
        let loaded = dir.join("loaded.json");

        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            ..MineArgs::new("cities")
        };
        let summary =
            snapshot(&args, snap.to_str().unwrap(), Some(mined.to_str().unwrap())).unwrap();
        assert!(summary.contains("snapshotted"), "{summary}");
        assert!(summary.contains("wrote store JSON"), "{summary}");

        let summary = load(snap.to_str().unwrap(), Some(loaded.to_str().unwrap())).unwrap();
        assert!(summary.contains("loaded"), "{summary}");

        // The loaded store is byte-identical JSON to the mined one.
        let mined_json = std::fs::read_to_string(&mined).unwrap();
        let loaded_json = std::fs::read_to_string(&loaded).unwrap();
        assert_eq!(mined_json, loaded_json);

        // Querying the loaded store works exactly like the mined one.
        let out = query(loaded.to_str().unwrap(), "city", "big", false, 5).unwrap();
        assert!(out.contains("Pr ="), "{out}");

        for path in [snap, mined, loaded] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn corrupt_snapshots_are_invalid_input_with_exit_3() {
        let dir = std::env::temp_dir().join("surveyor-cli-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("world.swire");
        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            ..MineArgs::new("cities")
        };
        snapshot(&args, snap.to_str().unwrap(), None).unwrap();
        let good = std::fs::read(&snap).unwrap();

        // Each corruption is a typed error surfaced as InvalidInput
        // (exit 3) — never a panic.
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("bad magic", {
                let mut b = good.clone();
                b[0] ^= 0xff;
                b
            }),
            ("unsupported version", {
                let mut b = good.clone();
                b[8] = 0xff;
                b
            }),
            ("truncated", good[..good.len() / 2].to_vec()),
            ("crc mismatch", {
                let mut b = good.clone();
                let last = b.len() - 1;
                b[last] ^= 0xff;
                b
            }),
        ];
        let bad_path = dir.join("bad.swire");
        for (label, bytes) in cases {
            std::fs::write(&bad_path, &bytes).unwrap();
            match load(bad_path.to_str().unwrap(), None) {
                Err(e @ CliError::InvalidInput(_)) => {
                    assert_eq!(e.exit_code(), 3, "{label}");
                    assert!(e.to_string().contains("invalid snapshot"), "{label}: {e}");
                }
                other => panic!("{label}: unexpected {other:?}"),
            }
        }

        // A missing snapshot file is I/O trouble (exit 1), not corruption.
        match load("/nonexistent/world.swire", None) {
            Err(e @ CliError::Io(_)) => assert_eq!(e.exit_code(), 1),
            other => panic!("unexpected {other:?}"),
        }

        std::fs::remove_file(snap).ok();
        std::fs::remove_file(bad_path).ok();
    }

    #[test]
    fn diff_reports_identical_and_differing_snapshots() {
        let dir = std::env::temp_dir().join("surveyor-cli-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.swire");
        let b = dir.join("b.swire");
        let c = dir.join("c.swire");

        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            ..MineArgs::new("cities")
        };
        snapshot(&args, a.to_str().unwrap(), None).unwrap();
        snapshot(&args, b.to_str().unwrap(), None).unwrap();
        // A different seed generates a different corpus → real
        // differences in evidence counts (at least).
        let other = MineArgs { seed: 6, ..args };
        snapshot(&other, c.to_str().unwrap(), None).unwrap();

        let (text, identical) =
            diff(a.to_str().unwrap(), b.to_str().unwrap(), DiffFormat::Human).unwrap();
        assert!(identical, "{text}");
        assert!(text.contains("snapshots are identical"), "{text}");

        let (text, identical) =
            diff(a.to_str().unwrap(), c.to_str().unwrap(), DiffFormat::Human).unwrap();
        assert!(!identical, "{text}");
        assert!(text.contains("snapshots differ"), "{text}");

        // JSON format parses and carries the verdict + per-section keys.
        let (json, identical) =
            diff(a.to_str().unwrap(), c.to_str().unwrap(), DiffFormat::Json).unwrap();
        assert!(!identical);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["identical"], serde_json::Value::Bool(false));
        assert!(value["differences"].as_u64().unwrap() > 0);
        // Seven required sections plus the optional incremental and
        // fingerprint sections (reported even when absent on both sides).
        assert_eq!(value["sections"].as_array().unwrap().len(), 9);

        // A corrupt operand is InvalidInput (exit 3), not a diff result.
        let bad = dir.join("bad.swire");
        std::fs::write(&bad, b"junk").unwrap();
        match diff(
            a.to_str().unwrap(),
            bad.to_str().unwrap(),
            DiffFormat::Human,
        ) {
            Err(e @ CliError::InvalidInput(_)) => assert_eq!(e.exit_code(), 3),
            other => panic!("unexpected {other:?}"),
        }
        // A missing operand is I/O (exit 1).
        match diff(a.to_str().unwrap(), "/nonexistent.swire", DiffFormat::Human) {
            Err(e @ CliError::Io(_)) => assert_eq!(e.exit_code(), 1),
            other => panic!("unexpected {other:?}"),
        }

        for path in [a, b, c, bad] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn serve_rejects_missing_and_corrupt_snapshots() {
        match serve("/nonexistent.swire", "127.0.0.1:0", 1, 1, 100, false) {
            Err(e @ CliError::Io(_)) => assert_eq!(e.exit_code(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let dir = std::env::temp_dir().join("surveyor-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.swire");
        std::fs::write(&bad, b"definitely not a snapshot").unwrap();
        match serve(bad.to_str().unwrap(), "127.0.0.1:0", 1, 1, 100, false) {
            Err(e @ CliError::InvalidInput(_)) => assert_eq!(e.exit_code(), 3),
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn serve_boots_answers_and_shuts_down() {
        use std::io::{Read, Write};

        let dir = std::env::temp_dir().join("surveyor-cli-serve-e2e-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("world.swire");
        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 2,
            ..MineArgs::new("cities")
        };
        snapshot(&args, snap.to_str().unwrap(), None).unwrap();

        // Boot on an OS-assigned port in a thread; discover the port by
        // racing a readyz poll is impossible without the addr, so bind
        // through the server API path instead: serve() prints the bound
        // address but the test needs it programmatically. Use the lower
        // server API directly for the e2e loop and reserve serve() for
        // its validation behavior (tested above); here we pin that the
        // CLI wiring produces a queryable server end to end.
        let bytes = std::fs::read(&snap).unwrap();
        let state = surveyor_server::ServedState::from_snapshot_bytes(&bytes, 1, "world").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let handle = surveyor_server::start(
            surveyor_server::ServerConfig::default(),
            Arc::new(state),
            registry,
        )
        .unwrap();
        let addr = handle.addr();

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /decide/Los%20Angeles/big HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("\"positive\": true"), "{body}");

        handle.shutdown();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn update_matches_from_scratch_byte_identically() {
        let dir = std::env::temp_dir().join("surveyor-cli-update-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.swire");
        let updated = dir.join("updated.swire");
        let scratch = dir.join("scratch.swire");

        // The `cities-tail` delta preset: a 4-shard cities world whose
        // base is shards [0, 3) and whose delta is shard 3.
        let preset = presets::delta_preset("cities-tail").unwrap();
        let mine = MineArgs {
            seed: 5,
            rho: 40,
            shards: preset.num_shards,
            ingest_shards: Some(preset.base_shards),
            ..MineArgs::new(preset.world)
        };
        let summary = snapshot(&mine, base.to_str().unwrap(), None).unwrap();
        assert!(summary.contains("incremental state"), "{summary}");

        let summary = update(&UpdateArgs {
            snapshot: base.to_str().unwrap().to_owned(),
            delta_preset: "cities-tail".to_owned(),
            out: updated.to_str().unwrap().to_owned(),
            seed: 5,
            region: None,
            warm: WarmModeArg::Exact,
            failure_policy: FailurePolicyArg::FailFast,
            min_shard_coverage: 0.9,
            chaos_seed: None,
        })
        .unwrap();
        assert!(summary.contains("carried forward"), "{summary}");

        // A from-scratch mine of ALL shards (with state recorded so the
        // optional sections match) must be byte-identical to the update.
        let full = MineArgs {
            ingest_shards: Some(preset.num_shards),
            ..mine.clone()
        };
        snapshot(&full, scratch.to_str().unwrap(), None).unwrap();
        let updated_bytes = std::fs::read(&updated).unwrap();
        let scratch_bytes = std::fs::read(&scratch).unwrap();
        assert_eq!(updated_bytes, scratch_bytes, "update != from-scratch");

        // Running the same update again ingests nothing and rewrites the
        // snapshot unchanged.
        let again = update(&UpdateArgs {
            snapshot: updated.to_str().unwrap().to_owned(),
            delta_preset: "cities-tail".to_owned(),
            out: updated.to_str().unwrap().to_owned(),
            seed: 5,
            region: None,
            warm: WarmModeArg::Exact,
            failure_policy: FailurePolicyArg::FailFast,
            min_shard_coverage: 0.9,
            chaos_seed: None,
        })
        .unwrap();
        assert!(again.contains("nothing to ingest"), "{again}");
        assert_eq!(std::fs::read(&updated).unwrap(), scratch_bytes);

        for path in [base, updated, scratch] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn update_rejects_missing_state_bad_preset_and_wrong_corpus() {
        let dir = std::env::temp_dir().join("surveyor-cli-update-reject-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("plain.swire");
        let out = dir.join("out.swire");

        let mine = MineArgs {
            seed: 5,
            rho: 40,
            shards: 4,
            ..MineArgs::new("cities")
        };
        snapshot(&mine, plain.to_str().unwrap(), None).unwrap();

        let args = UpdateArgs {
            snapshot: plain.to_str().unwrap().to_owned(),
            delta_preset: "cities-tail".to_owned(),
            out: out.to_str().unwrap().to_owned(),
            seed: 5,
            region: None,
            warm: WarmModeArg::Exact,
            failure_policy: FailurePolicyArg::FailFast,
            min_shard_coverage: 0.9,
            chaos_seed: None,
        };
        // A snapshot without incremental state is updatable data that
        // simply isn't there: invalid input, exit 3.
        match update(&args) {
            Err(e @ CliError::InvalidInput(_)) => {
                assert_eq!(e.exit_code(), 3);
                assert!(e.to_string().contains("no incremental state"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Re-snapshot with state, then feed mismatching deltas.
        let preset = presets::delta_preset("cities-tail").unwrap();
        let with_state = MineArgs {
            shards: preset.num_shards,
            ingest_shards: Some(preset.base_shards),
            ..mine
        };
        snapshot(&with_state, plain.to_str().unwrap(), None).unwrap();

        // Unknown preset name: usage error, exit 2, listing valid names.
        match update(&UpdateArgs {
            delta_preset: "atlantis-tail".to_owned(),
            ..args.clone()
        }) {
            Err(e @ CliError::Usage(_)) => {
                assert_eq!(e.exit_code(), 2);
                assert!(e.to_string().contains("cities-tail"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }

        // A delta from a different corpus (wrong world or wrong seed) is
        // refused before any mining happens.
        match update(&UpdateArgs {
            delta_preset: "table2-tail".to_owned(),
            ..args.clone()
        }) {
            Err(e @ CliError::InvalidInput(_)) => {
                assert_eq!(e.exit_code(), 3);
                assert!(e.to_string().contains("not the corpus"), "{e}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match update(&UpdateArgs {
            seed: 6,
            ..args.clone()
        }) {
            Err(e @ CliError::InvalidInput(_)) => assert_eq!(e.exit_code(), 3),
            other => panic!("unexpected {other:?}"),
        }

        // Missing file is I/O (exit 1); corrupt file is invalid (exit 3).
        match update(&UpdateArgs {
            snapshot: "/nonexistent.swire".to_owned(),
            ..args.clone()
        }) {
            Err(e @ CliError::Io(_)) => assert_eq!(e.exit_code(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let bad = dir.join("bad.swire");
        std::fs::write(&bad, b"junk").unwrap();
        match update(&UpdateArgs {
            snapshot: bad.to_str().unwrap().to_owned(),
            ..args
        }) {
            Err(e @ CliError::InvalidInput(_)) => assert_eq!(e.exit_code(), 3),
            other => panic!("unexpected {other:?}"),
        }

        for path in [plain, out, bad] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn chaos_quarantine_replays_to_the_clean_run_bytes() {
        let dir = std::env::temp_dir().join("surveyor-cli-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.swire");
        let updated = dir.join("updated.swire");
        let clean = dir.join("clean.swire");

        let preset = presets::delta_preset("cities-tail").unwrap();
        let max_attempts = RetryPolicy::default().max_attempts;
        // Find a chaos seed whose plan permanently kills at least one
        // BASE shard, so the base mine actually quarantines something.
        let chaos = (0..500)
            .find(|&s| {
                FaultPlan::from_seed(s, preset.num_shards)
                    .expected_quarantine(max_attempts)
                    .iter()
                    .any(|&shard| shard < preset.base_shards)
            })
            .expect("no chaos seed quarantines a base shard");

        let mine = MineArgs {
            seed: 5,
            rho: 40,
            shards: preset.num_shards,
            ingest_shards: Some(preset.base_shards),
            chaos_seed: Some(chaos),
            failure_policy: FailurePolicyArg::Degrade,
            min_shard_coverage: 0.0,
            ..MineArgs::new(preset.world)
        };
        let summary = snapshot(&mine, base.to_str().unwrap(), None).unwrap();
        assert!(summary.contains("pending replay"), "{summary}");
        let (_, state) = surveyor::load_snapshot_with_state(&std::fs::read(&base).unwrap())
            .map(|(o, s)| (o, s.unwrap()))
            .unwrap();
        assert!(!state.pending.is_empty(), "base quarantined nothing");

        // Update WITHOUT chaos: the delta shard comes in and the
        // quarantined base shards replay.
        let summary = update(&UpdateArgs {
            snapshot: base.to_str().unwrap().to_owned(),
            delta_preset: "cities-tail".to_owned(),
            out: updated.to_str().unwrap().to_owned(),
            seed: 5,
            region: None,
            warm: WarmModeArg::Exact,
            failure_policy: FailurePolicyArg::FailFast,
            min_shard_coverage: 0.9,
            chaos_seed: None,
        })
        .unwrap();
        assert!(summary.contains("updated"), "{summary}");

        // The replayed result is bit-for-bit the clean full run.
        let clean_args = MineArgs {
            chaos_seed: None,
            failure_policy: FailurePolicyArg::FailFast,
            ingest_shards: Some(preset.num_shards),
            ..mine
        };
        snapshot(&clean_args, clean.to_str().unwrap(), None).unwrap();
        assert_eq!(
            std::fs::read(&updated).unwrap(),
            std::fs::read(&clean).unwrap(),
            "replayed update != clean run"
        );

        for path in [base, updated, clean] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn mine_under_chaos_degrades_and_reports_coverage() {
        let args = MineArgs {
            seed: 5,
            rho: 40,
            shards: 4,
            chaos_seed: Some(7),
            failure_policy: FailurePolicyArg::Degrade,
            min_shard_coverage: 0.0,
            ..MineArgs::new("cities")
        };
        let summary = mine(&args).unwrap();
        assert!(summary.contains("mined"), "{summary}");
        // The summary carries the coverage line exactly when the seeded
        // plan costs the run retries or shards.
        let plan = FaultPlan::from_seed(7, 4);
        let max_attempts = RetryPolicy::default().max_attempts;
        if plan.expected_retries(max_attempts) > 0
            || !plan.expected_quarantine(max_attempts).is_empty()
        {
            assert!(summary.contains("shard coverage"), "{summary}");
        } else {
            assert!(!summary.contains("shard coverage"), "{summary}");
        }
    }
}
