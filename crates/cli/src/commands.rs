//! Command implementations.

use std::sync::Arc;
use surveyor::obs::MetricsRegistry;
use surveyor::prelude::*;
use surveyor::{link_objective, CorpusSource, LinkDirection, SubjectiveKb};
use surveyor_corpus::{presets, World};

/// Builds a preset world by name.
fn preset_world(preset: &str, seed: u64) -> Result<World, String> {
    match preset {
        "table2" => Ok(presets::table2_world(seed)),
        "cities" => Ok(presets::big_cities_world(seed)),
        "longtail" => Ok(presets::long_tail_world(40, 120, 8, seed)),
        other => Err(format!(
            "unknown preset: {other} (expected table2, cities, or longtail)"
        )),
    }
}

fn mine_store(
    preset: &str,
    seed: u64,
    rho: u64,
    shards: usize,
    observer: Option<Arc<MetricsRegistry>>,
) -> Result<
    (
        SubjectiveKb,
        surveyor::SurveyorOutput,
        Arc<KnowledgeBase>,
        World,
    ),
    String,
> {
    let world = preset_world(preset, seed)?;
    let kb = world.kb().clone();
    let mut generator = CorpusGenerator::new(
        world.clone(),
        CorpusConfig {
            num_shards: shards.max(1),
            ..CorpusConfig::default()
        },
    );
    let mut surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho,
            ..SurveyorConfig::default()
        },
    );
    if let Some(obs) = observer {
        generator = generator.with_observer(obs.clone());
        surveyor = surveyor.with_observer(obs);
    }
    let output = surveyor.run(&CorpusSource::new(&generator));
    let store = SubjectiveKb::from_output(&output, &kb);
    Ok((store, output, kb, world))
}

/// `surveyor mine` / `surveyor run`
pub fn mine(
    preset: &str,
    out: Option<&str>,
    seed: u64,
    rho: u64,
    shards: usize,
    report: Option<&str>,
) -> Result<String, String> {
    let registry = report.map(|_| Arc::new(MetricsRegistry::new()));
    let (store, output, _, _) = mine_store(preset, seed, rho, shards, registry.clone())?;
    let json = store.to_json();
    let mut summary = format!(
        "mined {} statements into {} associations over {} combinations (rho = {rho})",
        output.evidence.total_statements(),
        store.len(),
        store.blocks().len(),
    );
    if let (Some(dest), Some(registry)) = (report, &registry) {
        let run_report = registry.report();
        if dest == "-" {
            summary = format!("{}\n{summary}", run_report.render());
        } else {
            std::fs::write(dest, run_report.to_json())
                .map_err(|e| format!("cannot write {dest}: {e}"))?;
            summary.push_str(&format!("\nwrote run report to {dest}"));
        }
    }
    match out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("{summary}\nwrote {path}"))
        }
        None => Ok(format!("{summary}\n{json}")),
    }
}

fn load_store(path: &str) -> Result<SubjectiveKb, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    SubjectiveKb::from_json(&json).map_err(|e| format!("invalid store {path}: {e}"))
}

/// `surveyor query`
pub fn query(
    store_path: &str,
    type_name: &str,
    property: &str,
    negative: bool,
    limit: usize,
) -> Result<String, String> {
    let store = load_store(store_path)?;
    let property = Property::parse(property).ok_or("empty property")?;
    let hits = if negative {
        store.query_negative(type_name, &property)
    } else {
        store.query(type_name, &property)
    };
    if hits.is_empty() {
        return Ok(format!(
            "no results for \"{property} {type_name}\" (combination not modeled or no {} opinions)",
            if negative { "negative" } else { "positive" },
        ));
    }
    let mut out = format!(
        "{} {} of type `{type_name}` the dominant opinion calls{} `{property}`:\n",
        hits.len().min(limit),
        if hits.len() == 1 {
            "entity"
        } else {
            "entities"
        },
        if negative { " NOT" } else { "" },
    );
    for hit in hits.into_iter().take(limit.max(1)) {
        let docs = if hit.supporting_documents.is_empty() {
            String::new()
        } else {
            format!(
                "  docs {}",
                hit.supporting_documents
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        out.push_str(&format!(
            "  {:<24} Pr = {:.3}  evidence +{}/-{}{docs}\n",
            hit.entity_name, hit.probability, hit.positive_statements, hit.negative_statements
        ));
    }
    Ok(out)
}

/// `surveyor combos`
pub fn combos(store_path: &str) -> Result<String, String> {
    let store = load_store(store_path)?;
    let mut out = format!("{} combinations:\n", store.blocks().len());
    for block in store.blocks() {
        let positives = block.opinions.iter().filter(|o| o.positive).count();
        out.push_str(&format!(
            "  {:<12} {:<16} pA = {:.2}  np+S = {:>6.1}  np-S = {:>5.1}  ({} entities, {} positive)\n",
            block.type_name,
            block.property.to_string(),
            block.p_agree,
            block.rate_pos,
            block.rate_neg,
            block.opinions.len(),
            positives,
        ));
    }
    Ok(out)
}

/// `surveyor corpus`
pub fn corpus(preset: &str, seed: u64, shard: usize, limit: usize) -> Result<String, String> {
    let world = preset_world(preset, seed)?;
    let generator = CorpusGenerator::new(world, CorpusConfig::default());
    if shard >= generator.shard_count() {
        return Err(format!(
            "shard {shard} out of range (corpus has {} shards)",
            generator.shard_count()
        ));
    }
    let docs = generator.shard_text(shard);
    let mut out = format!(
        "shard {shard} of {} holds {} documents; first {}:\n",
        generator.shard_count(),
        docs.len(),
        limit.min(docs.len()),
    );
    for doc in docs.iter().take(limit.max(1)) {
        out.push_str(&format!("  [{}] {}\n", doc.id, doc.text));
    }
    Ok(out)
}

/// `surveyor link`
pub fn link(preset: &str, attribute: &str, seed: u64, rho: u64) -> Result<String, String> {
    if preset != "cities" {
        return Err("`link` currently supports --preset cities (population)".to_owned());
    }
    let (_, output, kb, world) = mine_store(preset, seed, rho, 8, None)?;
    let domain = &world.domains()[0];
    let link = link_objective(
        &output,
        &kb,
        domain.type_id,
        &domain.property,
        attribute,
        10,
    )
    .ok_or_else(|| format!("no {attribute} link found for `{}`", domain.property))?;
    Ok(format!(
        "`{} {}` aligns with {attribute} {} {:.0}\n\
         agreement {:.1}% over {} decided entities\n\
         (the paper's section 9: \"a lower bound on the population count of a city\n\
          starting from which an average user would call that city big\")",
        domain.property,
        kb.entity_type(domain.type_id).name(),
        match link.direction {
            LinkDirection::Above => ">=",
            LinkDirection::Below => "<",
        },
        link.threshold,
        link.agreement * 100.0,
        link.samples,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(preset_world("mars", 1).is_err());
        assert!(corpus("mars", 1, 0, 3).is_err());
    }

    #[test]
    fn corpus_prints_documents() {
        let out = corpus("table2", 3, 0, 3).unwrap();
        assert!(out.contains("documents"));
        assert!(out.lines().count() >= 2);
    }

    #[test]
    fn corpus_rejects_out_of_range_shard() {
        assert!(corpus("table2", 3, 99, 3).is_err());
    }

    #[test]
    fn mine_and_query_round_trip() {
        let dir = std::env::temp_dir().join("surveyor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let path_str = path.to_str().unwrap();

        // Small, fast configuration.
        let summary = mine("cities", Some(path_str), 5, 40, 2, None).unwrap();
        assert!(summary.contains("mined"), "{summary}");

        let out = query(path_str, "city", "big", false, 5).unwrap();
        assert!(out.contains("Pr ="), "{out}");
        let neg = query(path_str, "city", "big", true, 5).unwrap();
        assert!(neg.contains("NOT"), "{neg}");
        let listing = combos(path_str).unwrap();
        assert!(listing.contains("pA"), "{listing}");

        // Unknown combination reports cleanly.
        let none = query(path_str, "city", "purple", false, 5).unwrap();
        assert!(none.contains("no results"), "{none}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn link_discovers_population_boundary() {
        let out = link("cities", "population", 5, 40).unwrap();
        assert!(out.contains("population >="), "{out}");
        assert!(out.contains("agreement"), "{out}");
    }

    #[test]
    fn query_missing_store_is_an_error() {
        assert!(query("/nonexistent/store.json", "city", "big", false, 5).is_err());
    }

    #[test]
    fn mine_writes_a_parseable_run_report() {
        let dir = std::env::temp_dir().join("surveyor-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let report_str = report_path.to_str().unwrap();

        let summary = mine("cities", None, 5, 40, 2, Some(report_str)).unwrap();
        assert!(summary.contains("wrote run report"), "{summary}");
        let json = std::fs::read_to_string(&report_path).unwrap();
        let report = surveyor::obs::RunReport::from_json(&json).unwrap();
        assert_eq!(report.version, surveyor::obs::REPORT_VERSION);
        for phase in ["extract", "group", "model", "decide", "index"] {
            assert!(report.phase(phase).is_some(), "report misses {phase}");
        }
        assert!(!report.em_groups.is_empty());
        std::fs::remove_file(report_path).ok();
    }

    #[test]
    fn mine_report_dash_renders_a_table() {
        let out = mine("cities", None, 5, 40, 2, Some("-")).unwrap();
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("extract"), "{out}");
        assert!(out.contains("EM convergence"), "{out}");
    }
}
