//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Mine a preset world into a subjective knowledge base.
    Mine {
        /// Preset name: `table2`, `cities`, or `longtail`.
        preset: String,
        /// Output JSON path (stdout when absent).
        out: Option<String>,
        /// Master seed.
        seed: u64,
        /// Occurrence threshold ρ.
        rho: u64,
        /// Corpus shards.
        shards: usize,
        /// Run-report destination: a JSON path, or `-` for a human table
        /// on stdout (no report when absent).
        report: Option<String>,
    },
    /// Query a mined store.
    Query {
        /// Store JSON path.
        store: String,
        /// Entity type name.
        type_name: String,
        /// Property surface form (e.g. `big` or `very big`).
        property: String,
        /// Return entities the property does *not* apply to.
        negative: bool,
        /// Maximum hits printed.
        limit: usize,
    },
    /// List the combinations in a store with their fitted parameters.
    Combos {
        /// Store JSON path.
        store: String,
    },
    /// Print sample documents from a preset corpus.
    Corpus {
        /// Preset name.
        preset: String,
        /// Master seed.
        seed: u64,
        /// Shard index.
        shard: usize,
        /// Documents printed.
        limit: usize,
    },
    /// Mine a preset and link a subjective property to an objective
    /// attribute (§9 future work).
    Link {
        /// Preset name (currently `cities`).
        preset: String,
        /// Attribute key (e.g. `population`).
        attribute: String,
        /// Master seed.
        seed: u64,
        /// Occurrence threshold ρ.
        rho: u64,
    },
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// Flag given without a value.
    MissingValue(String),
    /// Value failed to parse.
    BadValue(String, String),
    /// A required flag is absent.
    MissingFlag(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "missing subcommand\n{USAGE}"),
            Self::UnknownCommand(c) => write!(f, "unknown subcommand: {c}\n{USAGE}"),
            Self::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            Self::MissingValue(flag) => write!(f, "missing value for {flag}"),
            Self::BadValue(flag, v) => write!(f, "invalid value for {flag}: {v}"),
            Self::MissingFlag(flag) => write!(f, "required flag missing: {flag}"),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage:
  surveyor mine   --preset <table2|cities|longtail> [--out FILE] [--seed N] [--rho N] [--shards N] [--report FILE|-]
  surveyor run    [--preset NAME] [--out FILE] [--seed N] [--rho N] [--shards N] [--report FILE|-]
  surveyor query  --store FILE --type NAME --property ADJ [--negative] [--limit N]
  surveyor combos --store FILE
  surveyor corpus --preset NAME [--seed N] [--shard N] [--limit N]
  surveyor link   --preset cities --attribute KEY [--seed N] [--rho N]";

/// Simple flag scanner: collects `--flag value` pairs and boolean flags.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if !arg.starts_with("--") {
                return Err(ParseError::UnknownFlag(arg.clone()));
            }
            if booleans.contains(&arg.as_str()) {
                pairs.push((arg.clone(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError::MissingValue(arg.clone()))?;
                pairs.push((arg.clone(), Some(value.clone())));
            }
        }
        Ok(Self { pairs })
    }

    fn take(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, flag: &str) -> bool {
        self.pairs.iter().any(|(f, _)| f == flag)
    }

    fn numeric<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ParseError> {
        match self.take(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError::BadValue(flag.to_owned(), v.to_owned())),
        }
    }

    fn required(&self, flag: &'static str) -> Result<String, ParseError> {
        self.take(flag)
            .map(str::to_owned)
            .ok_or(ParseError::MissingFlag(flag))
    }

    fn validate_known(&self, known: &[&str]) -> Result<(), ParseError> {
        for (flag, _) in &self.pairs {
            if !known.contains(&flag.as_str()) {
                return Err(ParseError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }
}

impl Cli {
    /// Parses a full argument list (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ParseError> {
        let (command, rest) = args.split_first().ok_or(ParseError::MissingCommand)?;
        let command = match command.as_str() {
            // `run` is `mine` with a defaulted preset — the spelling the
            // paper reproduction docs use for an observed end-to-end run.
            name @ ("mine" | "run") => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&[
                    "--preset", "--out", "--seed", "--rho", "--shards", "--report",
                ])?;
                let preset = if name == "run" {
                    flags.take("--preset").unwrap_or("table2").to_owned()
                } else {
                    flags.required("--preset")?
                };
                Command::Mine {
                    preset,
                    out: flags.take("--out").map(str::to_owned),
                    seed: flags.numeric("--seed", 2015)?,
                    rho: flags.numeric("--rho", 100)?,
                    shards: flags.numeric("--shards", 8)?,
                    report: flags.take("--report").map(str::to_owned),
                }
            }
            "query" => {
                let flags = Flags::parse(rest, &["--negative"])?;
                flags.validate_known(&[
                    "--store",
                    "--type",
                    "--property",
                    "--negative",
                    "--limit",
                ])?;
                Command::Query {
                    store: flags.required("--store")?,
                    type_name: flags.required("--type")?,
                    property: flags.required("--property")?,
                    negative: flags.has("--negative"),
                    limit: flags.numeric("--limit", 10)?,
                }
            }
            "combos" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--store"])?;
                Command::Combos {
                    store: flags.required("--store")?,
                }
            }
            "corpus" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--preset", "--seed", "--shard", "--limit"])?;
                Command::Corpus {
                    preset: flags.required("--preset")?,
                    seed: flags.numeric("--seed", 2015)?,
                    shard: flags.numeric("--shard", 0)?,
                    limit: flags.numeric("--limit", 10)?,
                }
            }
            "link" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--preset", "--attribute", "--seed", "--rho"])?;
                Command::Link {
                    preset: flags.required("--preset")?,
                    attribute: flags.required("--attribute")?,
                    seed: flags.numeric("--seed", 2015)?,
                    rho: flags.numeric("--rho", 50)?,
                }
            }
            other => return Err(ParseError::UnknownCommand(other.to_owned())),
        };
        Ok(Self { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, ParseError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Cli::parse(&owned)
    }

    #[test]
    fn mine_with_defaults() {
        let cli = parse(&["mine", "--preset", "table2"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Mine {
                preset: "table2".into(),
                out: None,
                seed: 2015,
                rho: 100,
                shards: 8,
                report: None,
            }
        );
    }

    #[test]
    fn run_defaults_preset_and_takes_report() {
        let cli = parse(&["run", "--report", "out.json"]).unwrap();
        match cli.command {
            Command::Mine { preset, report, .. } => {
                assert_eq!(preset, "table2");
                assert_eq!(report.as_deref(), Some("out.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `run` still honors an explicit preset; `mine` still requires one.
        let cli = parse(&["run", "--preset", "cities"]).unwrap();
        match cli.command {
            Command::Mine { preset, .. } => assert_eq!(preset, "cities"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse(&["mine"]), Err(ParseError::MissingFlag("--preset")));
    }

    #[test]
    fn mine_with_overrides() {
        let cli = parse(&[
            "mine", "--preset", "cities", "--out", "s.json", "--seed", "7", "--rho", "40",
            "--shards", "2",
        ])
        .unwrap();
        match cli.command {
            Command::Mine {
                preset,
                out,
                seed,
                rho,
                shards,
                report,
            } => {
                assert_eq!(preset, "cities");
                assert_eq!(out.as_deref(), Some("s.json"));
                assert_eq!((seed, rho, shards), (7, 40, 2));
                assert_eq!(report, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_requires_core_flags() {
        assert_eq!(
            parse(&["query", "--store", "s.json", "--type", "city"]),
            Err(ParseError::MissingFlag("--property"))
        );
        let cli = parse(&[
            "query",
            "--store",
            "s.json",
            "--type",
            "city",
            "--property",
            "big",
            "--negative",
        ])
        .unwrap();
        match cli.command {
            Command::Query {
                negative, limit, ..
            } => {
                assert!(negative);
                assert_eq!(limit, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_informative() {
        assert_eq!(parse(&[]), Err(ParseError::MissingCommand));
        assert_eq!(
            parse(&["explode"]),
            Err(ParseError::UnknownCommand("explode".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--bogus", "1"]),
            Err(ParseError::UnknownFlag("--bogus".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--seed"]),
            Err(ParseError::MissingValue("--seed".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--seed", "abc"]),
            Err(ParseError::BadValue("--seed".into(), "abc".into()))
        );
    }

    #[test]
    fn last_flag_occurrence_wins() {
        let cli = parse(&["mine", "--preset", "a", "--preset", "b"]).unwrap();
        match cli.command {
            Command::Mine { preset, .. } => assert_eq!(preset, "b"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
