//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
}

/// How `mine` treats shards that exhaust their attempt budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicyArg {
    /// Abort on the first failed shard (the default: identical behavior
    /// to a run without the fault-tolerance flags).
    #[default]
    FailFast,
    /// Quarantine failed shards and keep going while coverage stays at
    /// or above `--min-shard-coverage`.
    Degrade,
}

impl std::str::FromStr for FailurePolicyArg {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failfast" | "fail-fast" => Ok(Self::FailFast),
            "degrade" => Ok(Self::Degrade),
            _ => Err(()),
        }
    }
}

/// Everything `surveyor mine` / `surveyor run` takes.
#[derive(Debug, Clone, PartialEq)]
pub struct MineArgs {
    /// Preset name: `table2`, `cities`, or `longtail`.
    pub preset: String,
    /// Output JSON path (stdout when absent).
    pub out: Option<String>,
    /// Master seed.
    pub seed: u64,
    /// Occurrence threshold ρ.
    pub rho: u64,
    /// Corpus shards.
    pub shards: usize,
    /// Run-report destination: a JSON path, or `-` for a human table
    /// on stdout (no report when absent).
    pub report: Option<String>,
    /// Restrict mining to one author region (§2 region-specific mode).
    pub region: Option<String>,
    /// What to do when a shard exhausts its attempt budget.
    pub failure_policy: FailurePolicyArg,
    /// Minimum fraction of shards that must survive under `degrade`.
    pub min_shard_coverage: f64,
    /// Seed for the fault-injection harness (`--chaos-seed`, or the
    /// `SURVEYOR_CHAOS_SEED` environment variable as a fallback).
    pub chaos_seed: Option<u64>,
    /// Mine only shards `[0, N)` of the `--shards`-shard world and record
    /// incremental state (ingested ranges, replay queue) so the snapshot
    /// can later be extended with `surveyor update`.
    pub ingest_shards: Option<usize>,
}

impl MineArgs {
    /// Args for `preset` with every flag at its CLI default.
    pub fn new(preset: &str) -> Self {
        Self {
            preset: preset.to_owned(),
            out: None,
            seed: 2015,
            rho: 100,
            shards: 8,
            report: None,
            region: None,
            failure_policy: FailurePolicyArg::default(),
            min_shard_coverage: 0.9,
            chaos_seed: None,
            ingest_shards: None,
        }
    }
}

/// Which EM start `surveyor update` uses for dirtied groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmModeArg {
    /// Cold multi-restart EM — byte-identical to a from-scratch mine.
    #[default]
    Exact,
    /// Single EM run seeded from the previous fit (faster, approximate).
    Seeded,
}

impl std::str::FromStr for WarmModeArg {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Self::Exact),
            "seeded" => Ok(Self::Seeded),
            _ => Err(()),
        }
    }
}

/// Everything `surveyor update` takes.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateArgs {
    /// Base snapshot path (must carry incremental state).
    pub snapshot: String,
    /// Delta preset name (see `surveyor-corpus` `DELTA_PRESETS`).
    pub delta_preset: String,
    /// Updated snapshot output path.
    pub out: String,
    /// Master seed — must match the base snapshot's corpus.
    pub seed: u64,
    /// Restrict the delta to one author region (must match the base).
    pub region: Option<String>,
    /// EM start mode for dirtied groups.
    pub warm: WarmModeArg,
    /// What to do when a delta shard exhausts its attempt budget.
    pub failure_policy: FailurePolicyArg,
    /// Minimum fraction of requested shards that must survive under
    /// `degrade`.
    pub min_shard_coverage: f64,
    /// Seed for the fault-injection harness.
    pub chaos_seed: Option<u64>,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Mine a preset world into a subjective knowledge base.
    Mine(MineArgs),
    /// Query a mined store.
    Query {
        /// Store JSON path.
        store: String,
        /// Entity type name.
        type_name: String,
        /// Property surface form (e.g. `big` or `very big`).
        property: String,
        /// Return entities the property does *not* apply to.
        negative: bool,
        /// Maximum hits printed.
        limit: usize,
    },
    /// List the combinations in a store with their fitted parameters.
    Combos {
        /// Store JSON path.
        store: String,
    },
    /// Print sample documents from a preset corpus.
    Corpus {
        /// Preset name.
        preset: String,
        /// Master seed.
        seed: u64,
        /// Shard index.
        shard: usize,
        /// Documents printed.
        limit: usize,
    },
    /// Mine a preset and link a subjective property to an objective
    /// attribute (§9 future work).
    Link {
        /// Preset name (currently `cities`).
        preset: String,
        /// Attribute key (e.g. `population`).
        attribute: String,
        /// Master seed.
        seed: u64,
        /// Occurrence threshold ρ.
        rho: u64,
    },
    /// Mine a preset and save the whole mined world as a binary
    /// `surveyor-wire` snapshot (see FORMAT.md).
    Snapshot {
        /// Mining configuration (same flags as `mine`; its `out` field
        /// is unused — the snapshot path is `out` below).
        args: MineArgs,
        /// Snapshot output path (required).
        out: String,
        /// Also write the store JSON here (optional).
        store: Option<String>,
    },
    /// Ingest a delta corpus into an existing snapshot: re-extract only
    /// the new shards, merge evidence, re-decide only dirtied groups.
    Update(UpdateArgs),
    /// Load a binary snapshot and emit the store JSON without re-mining.
    Load {
        /// Snapshot input path.
        snapshot: String,
        /// Store JSON output path (stdout when absent).
        out: Option<String>,
    },
    /// Serve a binary snapshot over HTTP with the fault-hardened query
    /// server (deadlines, load shedding, hot reload).
    Serve {
        /// Snapshot input path.
        snapshot: String,
        /// Bind address (`host:port`; port 0 lets the OS pick).
        addr: String,
        /// Request worker threads.
        workers: usize,
        /// Bounded work-queue capacity (the load-shedding threshold).
        queue: usize,
        /// Per-request budget in milliseconds.
        budget_ms: u64,
        /// Enable the `/ctl/panic` and `/ctl/stall` fault-injection
        /// routes (tests and chaos benches only).
        debug_routes: bool,
    },
    /// Compare two binary snapshots section by section; exits 0 when
    /// identical, 1 when they differ.
    Diff {
        /// The older snapshot ("removed" means present only here).
        old: String,
        /// The newer snapshot ("added" means present only here).
        new: String,
        /// Output format.
        format: DiffFormat,
    },
}

/// Output format for `surveyor diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffFormat {
    /// Indented, truncated, human-readable report.
    #[default]
    Human,
    /// Machine-readable JSON with full key lists.
    Json,
}

impl std::str::FromStr for DiffFormat {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "human" => Ok(Self::Human),
            "json" => Ok(Self::Json),
            _ => Err(()),
        }
    }
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// Flag given without a value.
    MissingValue(String),
    /// Value failed to parse.
    BadValue(String, String),
    /// A required flag is absent.
    MissingFlag(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "missing subcommand\n{USAGE}"),
            Self::UnknownCommand(c) => write!(f, "unknown subcommand: {c}\n{USAGE}"),
            Self::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            Self::MissingValue(flag) => write!(f, "missing value for {flag}"),
            Self::BadValue(flag, v) => write!(f, "invalid value for {flag}: {v}"),
            Self::MissingFlag(flag) => write!(f, "required flag missing: {flag}"),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage:
  surveyor mine     --preset <table2|cities|longtail> [--out FILE] [--seed N] [--rho N] [--shards N] [--report FILE|-]
                    [--region NAME] [--failure-policy failfast|degrade] [--min-shard-coverage F] [--chaos-seed N]
                    [--ingest-shards N]
  surveyor run      [--preset NAME] [mine flags...]
  surveyor query    --store FILE --type NAME --property ADJ [--negative] [--limit N]
  surveyor combos   --store FILE
  surveyor corpus   --preset NAME [--seed N] [--shard N] [--limit N]
  surveyor link     --preset cities --attribute KEY [--seed N] [--rho N]
  surveyor snapshot --preset NAME --out FILE.swire [--store FILE] [mine flags...]
  surveyor update   --snapshot IN.swire --delta-preset NAME --out OUT.swire [--seed N] [--region NAME]
                    [--warm exact|seeded] [--failure-policy failfast|degrade] [--min-shard-coverage F] [--chaos-seed N]
  surveyor load     --snapshot FILE.swire [--out FILE]
  surveyor serve    --snapshot FILE.swire [--addr HOST:PORT] [--workers N] [--queue N] [--budget-ms N] [--debug-routes]
  surveyor diff     --old FILE.swire --new FILE.swire [--format human|json]
global flags: --help | -h, --version | -V";

/// Simple flag scanner: collects `--flag value` pairs and boolean flags.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if !arg.starts_with("--") {
                return Err(ParseError::UnknownFlag(arg.clone()));
            }
            if booleans.contains(&arg.as_str()) {
                pairs.push((arg.clone(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError::MissingValue(arg.clone()))?;
                pairs.push((arg.clone(), Some(value.clone())));
            }
        }
        Ok(Self { pairs })
    }

    fn take(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, flag: &str) -> bool {
        self.pairs.iter().any(|(f, _)| f == flag)
    }

    fn numeric<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ParseError> {
        match self.take(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError::BadValue(flag.to_owned(), v.to_owned())),
        }
    }

    fn required(&self, flag: &'static str) -> Result<String, ParseError> {
        self.take(flag)
            .map(str::to_owned)
            .ok_or(ParseError::MissingFlag(flag))
    }

    fn validate_known(&self, known: &[&str]) -> Result<(), ParseError> {
        for (flag, _) in &self.pairs {
            if !known.contains(&flag.as_str()) {
                return Err(ParseError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }
}

/// Every flag the `mine` family accepts (shared by `mine`, `run`, and
/// `snapshot`).
const MINE_FLAGS: &[&str] = &[
    "--preset",
    "--out",
    "--seed",
    "--rho",
    "--shards",
    "--report",
    "--region",
    "--failure-policy",
    "--min-shard-coverage",
    "--chaos-seed",
    "--ingest-shards",
];

/// Parses the fault-tolerance trio shared by `mine` and `update`:
/// `(--failure-policy, --min-shard-coverage, --chaos-seed)`.
fn fault_flags_from(flags: &Flags) -> Result<(FailurePolicyArg, f64, Option<u64>), ParseError> {
    let failure_policy = match flags.take("--failure-policy") {
        None => FailurePolicyArg::default(),
        Some(v) => v
            .parse()
            .map_err(|()| ParseError::BadValue("--failure-policy".to_owned(), v.to_owned()))?,
    };
    let min_shard_coverage: f64 = flags.numeric("--min-shard-coverage", 0.9)?;
    if !(0.0..=1.0).contains(&min_shard_coverage) {
        return Err(ParseError::BadValue(
            "--min-shard-coverage".to_owned(),
            min_shard_coverage.to_string(),
        ));
    }
    let chaos_seed = match flags.take("--chaos-seed") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| ParseError::BadValue("--chaos-seed".to_owned(), v.to_owned()))?,
        ),
    };
    Ok((failure_policy, min_shard_coverage, chaos_seed))
}

/// Builds [`MineArgs`] from already-validated flags. `preset` is resolved
/// by the caller (required for `mine`/`snapshot`, defaulted for `run`).
fn mine_args_from(flags: &Flags, preset: String) -> Result<MineArgs, ParseError> {
    let (failure_policy, min_shard_coverage, chaos_seed) = fault_flags_from(flags)?;
    let shards = flags.numeric("--shards", 8)?;
    let ingest_shards = match flags.take("--ingest-shards") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| ParseError::BadValue("--ingest-shards".to_owned(), v.to_owned()))?;
            // The base must be a non-empty strict prefix of the world:
            // ingesting 0 shards mines nothing, and ingesting all of them
            // leaves no delta for `update` to add.
            if n == 0 || n > shards {
                return Err(ParseError::BadValue(
                    "--ingest-shards".to_owned(),
                    v.to_owned(),
                ));
            }
            Some(n)
        }
    };
    Ok(MineArgs {
        preset,
        out: flags.take("--out").map(str::to_owned),
        seed: flags.numeric("--seed", 2015)?,
        rho: flags.numeric("--rho", 100)?,
        shards,
        report: flags.take("--report").map(str::to_owned),
        region: flags.take("--region").map(str::to_owned),
        failure_policy,
        min_shard_coverage,
        chaos_seed,
        ingest_shards,
    })
}

impl Cli {
    /// Parses a full argument list (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ParseError> {
        let (command, rest) = args.split_first().ok_or(ParseError::MissingCommand)?;
        let command = match command.as_str() {
            // `run` is `mine` with a defaulted preset — the spelling the
            // paper reproduction docs use for an observed end-to-end run.
            name @ ("mine" | "run") => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(MINE_FLAGS)?;
                let preset = if name == "run" {
                    flags.take("--preset").unwrap_or("table2").to_owned()
                } else {
                    flags.required("--preset")?
                };
                Command::Mine(mine_args_from(&flags, preset)?)
            }
            "snapshot" => {
                let flags = Flags::parse(rest, &[])?;
                let mut known = MINE_FLAGS.to_vec();
                known.push("--store");
                flags.validate_known(&known)?;
                let preset = flags.required("--preset")?;
                let out = flags.required("--out")?;
                let store = flags.take("--store").map(str::to_owned);
                let mut args = mine_args_from(&flags, preset)?;
                // `--out` names the snapshot, not a store JSON.
                args.out = None;
                Command::Snapshot { args, out, store }
            }
            "update" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&[
                    "--snapshot",
                    "--delta-preset",
                    "--out",
                    "--seed",
                    "--region",
                    "--warm",
                    "--failure-policy",
                    "--min-shard-coverage",
                    "--chaos-seed",
                ])?;
                let warm = match flags.take("--warm") {
                    None => WarmModeArg::default(),
                    Some(v) => v
                        .parse()
                        .map_err(|()| ParseError::BadValue("--warm".to_owned(), v.to_owned()))?,
                };
                let (failure_policy, min_shard_coverage, chaos_seed) = fault_flags_from(&flags)?;
                Command::Update(UpdateArgs {
                    snapshot: flags.required("--snapshot")?,
                    delta_preset: flags.required("--delta-preset")?,
                    out: flags.required("--out")?,
                    seed: flags.numeric("--seed", 2015)?,
                    region: flags.take("--region").map(str::to_owned),
                    warm,
                    failure_policy,
                    min_shard_coverage,
                    chaos_seed,
                })
            }
            "load" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--snapshot", "--out"])?;
                Command::Load {
                    snapshot: flags.required("--snapshot")?,
                    out: flags.take("--out").map(str::to_owned),
                }
            }
            "serve" => {
                let flags = Flags::parse(rest, &["--debug-routes"])?;
                flags.validate_known(&[
                    "--snapshot",
                    "--addr",
                    "--workers",
                    "--queue",
                    "--budget-ms",
                    "--debug-routes",
                ])?;
                Command::Serve {
                    snapshot: flags.required("--snapshot")?,
                    addr: flags.take("--addr").unwrap_or("127.0.0.1:7387").to_owned(),
                    workers: flags.numeric("--workers", 4)?,
                    queue: flags.numeric("--queue", 64)?,
                    budget_ms: flags.numeric("--budget-ms", 2_000)?,
                    debug_routes: flags.has("--debug-routes"),
                }
            }
            "diff" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--old", "--new", "--format"])?;
                let format = match flags.take("--format") {
                    None => DiffFormat::default(),
                    Some(v) => v
                        .parse()
                        .map_err(|()| ParseError::BadValue("--format".to_owned(), v.to_owned()))?,
                };
                Command::Diff {
                    old: flags.required("--old")?,
                    new: flags.required("--new")?,
                    format,
                }
            }
            "query" => {
                let flags = Flags::parse(rest, &["--negative"])?;
                flags.validate_known(&[
                    "--store",
                    "--type",
                    "--property",
                    "--negative",
                    "--limit",
                ])?;
                Command::Query {
                    store: flags.required("--store")?,
                    type_name: flags.required("--type")?,
                    property: flags.required("--property")?,
                    negative: flags.has("--negative"),
                    limit: flags.numeric("--limit", 10)?,
                }
            }
            "combos" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--store"])?;
                Command::Combos {
                    store: flags.required("--store")?,
                }
            }
            "corpus" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--preset", "--seed", "--shard", "--limit"])?;
                Command::Corpus {
                    preset: flags.required("--preset")?,
                    seed: flags.numeric("--seed", 2015)?,
                    shard: flags.numeric("--shard", 0)?,
                    limit: flags.numeric("--limit", 10)?,
                }
            }
            "link" => {
                let flags = Flags::parse(rest, &[])?;
                flags.validate_known(&["--preset", "--attribute", "--seed", "--rho"])?;
                Command::Link {
                    preset: flags.required("--preset")?,
                    attribute: flags.required("--attribute")?,
                    seed: flags.numeric("--seed", 2015)?,
                    rho: flags.numeric("--rho", 50)?,
                }
            }
            other => return Err(ParseError::UnknownCommand(other.to_owned())),
        };
        Ok(Self { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, ParseError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Cli::parse(&owned)
    }

    #[test]
    fn mine_with_defaults() {
        let cli = parse(&["mine", "--preset", "table2"]).unwrap();
        assert_eq!(cli.command, Command::Mine(MineArgs::new("table2")));
    }

    #[test]
    fn run_defaults_preset_and_takes_report() {
        let cli = parse(&["run", "--report", "out.json"]).unwrap();
        match cli.command {
            Command::Mine(args) => {
                assert_eq!(args.preset, "table2");
                assert_eq!(args.report.as_deref(), Some("out.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `run` still honors an explicit preset; `mine` still requires one.
        let cli = parse(&["run", "--preset", "cities"]).unwrap();
        match cli.command {
            Command::Mine(args) => assert_eq!(args.preset, "cities"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse(&["mine"]), Err(ParseError::MissingFlag("--preset")));
    }

    #[test]
    fn mine_with_overrides() {
        let cli = parse(&[
            "mine", "--preset", "cities", "--out", "s.json", "--seed", "7", "--rho", "40",
            "--shards", "2",
        ])
        .unwrap();
        match cli.command {
            Command::Mine(args) => {
                assert_eq!(args.preset, "cities");
                assert_eq!(args.out.as_deref(), Some("s.json"));
                assert_eq!((args.seed, args.rho, args.shards), (7, 40, 2));
                assert_eq!(args.report, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mine_fault_tolerance_flags() {
        let cli = parse(&[
            "mine",
            "--preset",
            "table2",
            "--region",
            "west",
            "--failure-policy",
            "degrade",
            "--min-shard-coverage",
            "0.75",
            "--chaos-seed",
            "99",
        ])
        .unwrap();
        match cli.command {
            Command::Mine(args) => {
                assert_eq!(args.region.as_deref(), Some("west"));
                assert_eq!(args.failure_policy, FailurePolicyArg::Degrade);
                assert_eq!(args.min_shard_coverage, 0.75);
                assert_eq!(args.chaos_seed, Some(99));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Both spellings of fail-fast parse; junk does not.
        for spelling in ["failfast", "fail-fast"] {
            let cli = parse(&["mine", "--preset", "table2", "--failure-policy", spelling]);
            match cli.unwrap().command {
                Command::Mine(args) => {
                    assert_eq!(args.failure_policy, FailurePolicyArg::FailFast)
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--failure-policy", "shrug"]),
            Err(ParseError::BadValue(
                "--failure-policy".into(),
                "shrug".into()
            ))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--min-shard-coverage", "1.5"]),
            Err(ParseError::BadValue(
                "--min-shard-coverage".into(),
                "1.5".into()
            ))
        );
    }

    #[test]
    fn query_requires_core_flags() {
        assert_eq!(
            parse(&["query", "--store", "s.json", "--type", "city"]),
            Err(ParseError::MissingFlag("--property"))
        );
        let cli = parse(&[
            "query",
            "--store",
            "s.json",
            "--type",
            "city",
            "--property",
            "big",
            "--negative",
        ])
        .unwrap();
        match cli.command {
            Command::Query {
                negative, limit, ..
            } => {
                assert!(negative);
                assert_eq!(limit, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_informative() {
        assert_eq!(parse(&[]), Err(ParseError::MissingCommand));
        assert_eq!(
            parse(&["explode"]),
            Err(ParseError::UnknownCommand("explode".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--bogus", "1"]),
            Err(ParseError::UnknownFlag("--bogus".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--seed"]),
            Err(ParseError::MissingValue("--seed".into()))
        );
        assert_eq!(
            parse(&["mine", "--preset", "table2", "--seed", "abc"]),
            Err(ParseError::BadValue("--seed".into(), "abc".into()))
        );
    }

    #[test]
    fn snapshot_requires_preset_and_out() {
        assert_eq!(
            parse(&["snapshot", "--out", "w.swire"]),
            Err(ParseError::MissingFlag("--preset"))
        );
        assert_eq!(
            parse(&["snapshot", "--preset", "table2"]),
            Err(ParseError::MissingFlag("--out"))
        );
        let cli = parse(&[
            "snapshot", "--preset", "cities", "--out", "w.swire", "--store", "s.json", "--seed",
            "7", "--rho", "40",
        ])
        .unwrap();
        match cli.command {
            Command::Snapshot { args, out, store } => {
                assert_eq!(out, "w.swire");
                assert_eq!(store.as_deref(), Some("s.json"));
                assert_eq!(args.preset, "cities");
                assert_eq!((args.seed, args.rho), (7, 40));
                // `--out` belongs to the snapshot, not the store JSON.
                assert_eq!(args.out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mine_ingest_shards_must_be_a_nonempty_prefix() {
        let cli = parse(&[
            "mine",
            "--preset",
            "table2",
            "--shards",
            "8",
            "--ingest-shards",
            "6",
        ])
        .unwrap();
        match cli.command {
            Command::Mine(args) => {
                assert_eq!(args.shards, 8);
                assert_eq!(args.ingest_shards, Some(6));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Zero shards and more-than-the-world are both rejected up front.
        for bad in ["0", "9"] {
            assert_eq!(
                parse(&["mine", "--preset", "table2", "--ingest-shards", bad]),
                Err(ParseError::BadValue("--ingest-shards".into(), bad.into())),
                "--ingest-shards {bad}"
            );
        }
        // Ingesting every shard is allowed for `mine` (a full run that
        // still records state), just not zero.
        let cli = parse(&["mine", "--preset", "table2", "--ingest-shards", "8"]).unwrap();
        match cli.command {
            Command::Mine(args) => assert_eq!(args.ingest_shards, Some(8)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_requires_snapshot_delta_preset_and_out() {
        assert_eq!(
            parse(&["update", "--delta-preset", "table2-tail", "--out", "b"]),
            Err(ParseError::MissingFlag("--snapshot"))
        );
        assert_eq!(
            parse(&["update", "--snapshot", "a.swire", "--out", "b.swire"]),
            Err(ParseError::MissingFlag("--delta-preset"))
        );
        assert_eq!(
            parse(&["update", "--snapshot", "a.swire", "--delta-preset", "x"]),
            Err(ParseError::MissingFlag("--out"))
        );
        let cli = parse(&[
            "update",
            "--snapshot",
            "a.swire",
            "--delta-preset",
            "table2-tail",
            "--out",
            "b.swire",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Update(UpdateArgs {
                snapshot: "a.swire".to_owned(),
                delta_preset: "table2-tail".to_owned(),
                out: "b.swire".to_owned(),
                seed: 2015,
                region: None,
                warm: WarmModeArg::Exact,
                failure_policy: FailurePolicyArg::FailFast,
                min_shard_coverage: 0.9,
                chaos_seed: None,
            })
        );
    }

    #[test]
    fn update_overrides_and_warm_mode() {
        let cli = parse(&[
            "update",
            "--snapshot",
            "a.swire",
            "--delta-preset",
            "cities-tail",
            "--out",
            "b.swire",
            "--seed",
            "7",
            "--warm",
            "seeded",
            "--failure-policy",
            "degrade",
            "--min-shard-coverage",
            "0.5",
            "--chaos-seed",
            "99",
        ])
        .unwrap();
        match cli.command {
            Command::Update(args) => {
                assert_eq!(args.seed, 7);
                assert_eq!(args.warm, WarmModeArg::Seeded);
                assert_eq!(args.failure_policy, FailurePolicyArg::Degrade);
                assert_eq!(args.min_shard_coverage, 0.5);
                assert_eq!(args.chaos_seed, Some(99));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&[
                "update",
                "--snapshot",
                "a",
                "--delta-preset",
                "x",
                "--out",
                "b",
                "--warm",
                "lukewarm",
            ]),
            Err(ParseError::BadValue("--warm".into(), "lukewarm".into()))
        );
        assert_eq!(
            parse(&[
                "update",
                "--snapshot",
                "a",
                "--delta-preset",
                "x",
                "--out",
                "b",
                "--rho",
                "5",
            ]),
            Err(ParseError::UnknownFlag("--rho".into()))
        );
    }

    #[test]
    fn load_takes_snapshot_and_optional_out() {
        assert_eq!(parse(&["load"]), Err(ParseError::MissingFlag("--snapshot")));
        let cli = parse(&["load", "--snapshot", "w.swire", "--out", "s.json"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Load {
                snapshot: "w.swire".to_owned(),
                out: Some("s.json".to_owned()),
            }
        );
        assert_eq!(
            parse(&["load", "--snapshot", "w.swire", "--bogus", "1"]),
            Err(ParseError::UnknownFlag("--bogus".into()))
        );
    }

    #[test]
    fn serve_defaults_and_overrides() {
        assert_eq!(
            parse(&["serve"]),
            Err(ParseError::MissingFlag("--snapshot"))
        );
        let cli = parse(&["serve", "--snapshot", "w.swire"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                snapshot: "w.swire".to_owned(),
                addr: "127.0.0.1:7387".to_owned(),
                workers: 4,
                queue: 64,
                budget_ms: 2_000,
                debug_routes: false,
            }
        );
        let cli = parse(&[
            "serve",
            "--snapshot",
            "w.swire",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "8",
            "--budget-ms",
            "500",
            "--debug-routes",
        ])
        .unwrap();
        match cli.command {
            Command::Serve {
                workers,
                queue,
                budget_ms,
                debug_routes,
                ..
            } => {
                assert_eq!((workers, queue, budget_ms), (2, 8, 500));
                assert!(debug_routes);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn diff_requires_both_snapshots_and_validates_format() {
        assert_eq!(
            parse(&["diff", "--old", "a.swire"]),
            Err(ParseError::MissingFlag("--new"))
        );
        let cli = parse(&["diff", "--old", "a.swire", "--new", "b.swire"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Diff {
                old: "a.swire".to_owned(),
                new: "b.swire".to_owned(),
                format: DiffFormat::Human,
            }
        );
        let cli = parse(&[
            "diff", "--old", "a.swire", "--new", "b.swire", "--format", "json",
        ])
        .unwrap();
        match cli.command {
            Command::Diff { format, .. } => assert_eq!(format, DiffFormat::Json),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&["diff", "--old", "a", "--new", "b", "--format", "yaml"]),
            Err(ParseError::BadValue("--format".into(), "yaml".into()))
        );
    }

    #[test]
    fn last_flag_occurrence_wins() {
        let cli = parse(&["mine", "--preset", "a", "--preset", "b"]).unwrap();
        match cli.command {
            Command::Mine(args) => assert_eq!(args.preset, "b"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
