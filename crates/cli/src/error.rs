//! The CLI's error type: every failure a command can hit, with the
//! process exit code it maps to.

use std::fmt;
use surveyor::RunError;

/// Why a CLI command failed. [`exit_code`](Self::exit_code) follows the
/// sysexits-ish convention the scripts rely on: bad invocations exit 2,
/// I/O trouble exits 1, and invalid or corrupt data — a store that does
/// not parse, a snapshot that fails validation, or a pipeline that ran
/// but failed under its failure policy — exits 3. A chaos harness can
/// tell "you typed it wrong" from "the data or run went bad".
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The invocation itself is wrong: unknown preset, unknown region,
    /// out-of-range value. Exits 2.
    Usage(String),
    /// The filesystem let us down (unreadable store, unwritable output).
    /// Exits 1.
    Io(String),
    /// An input file exists but does not parse or fails validation
    /// (mangled store JSON, corrupt binary snapshot). Exits 3.
    InvalidInput(String),
    /// The pipeline ran and failed under its failure policy. Exits 3.
    Run(RunError),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => 2,
            Self::Io(_) => 1,
            Self::InvalidInput(_) | Self::Run(_) => 3,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) | Self::Io(msg) | Self::InvalidInput(msg) => f.write_str(msg),
            Self::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        Self::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
        assert_eq!(CliError::Io("gone".into()).exit_code(), 1);
        // Corrupt data shares exit 3 with failed runs: both mean "your
        // invocation was fine, the data wasn't".
        assert_eq!(CliError::InvalidInput("mangled".into()).exit_code(), 3);
        let run = CliError::Run(RunError::CoverageBelowFloor {
            succeeded: 3,
            shard_count: 8,
            min_shard_coverage: 0.9,
            quarantined: vec![1, 2, 4, 5, 7],
        });
        assert_eq!(run.exit_code(), 3);
        assert!(run.to_string().contains("coverage"));
    }

    #[test]
    fn every_parse_error_is_a_usage_error() {
        use crate::args::{Cli, ParseError};
        // main.rs maps *any* ParseError to stderr + exit 2; pin that the
        // parser actually produces ParseErrors (not panics or silent
        // defaults) for each malformed-invocation class, including the
        // bare invocation with no arguments at all.
        let cases: Vec<(Vec<&str>, ParseError)> = vec![
            (vec![], ParseError::MissingCommand),
            (
                vec!["explode"],
                ParseError::UnknownCommand("explode".into()),
            ),
            (
                vec!["mine", "--bogus", "1"],
                ParseError::UnknownFlag("--bogus".into()),
            ),
            (
                vec!["mine", "--preset"],
                ParseError::MissingValue("--preset".into()),
            ),
            (vec!["serve"], ParseError::MissingFlag("--snapshot")),
            (vec!["diff", "--old", "a"], ParseError::MissingFlag("--new")),
        ];
        for (args, want) in cases {
            let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
            assert_eq!(Cli::parse(&owned), Err(want), "args {args:?}");
        }
        // Usage text rides along on command-level errors so the stderr
        // message is self-contained.
        assert!(ParseError::MissingCommand.to_string().contains("usage:"));
    }

    #[test]
    fn version_string_carries_the_crate_version() {
        let v = crate::version_string();
        assert!(v.starts_with("surveyor "), "{v}");
        assert_eq!(v, format!("surveyor {}", env!("CARGO_PKG_VERSION")));
    }

    #[test]
    fn diff_outcome_exit_codes() {
        use crate::Outcome;
        // `diff` maps identical → 0, differing → 1 through Outcome, so
        // the code rides success, not CliError.
        assert_eq!(Outcome::ok("same".into()).code, 0);
        let differs = Outcome {
            text: "differ".into(),
            code: 1,
        };
        assert_eq!(differs.code, 1);
    }
}
