//! The CLI's error type: every failure a command can hit, with the
//! process exit code it maps to.

use std::fmt;
use surveyor::RunError;

/// Why a CLI command failed. [`exit_code`](Self::exit_code) follows the
/// sysexits-ish convention the scripts rely on: bad invocations exit 2,
/// I/O trouble exits 1, and invalid or corrupt data — a store that does
/// not parse, a snapshot that fails validation, or a pipeline that ran
/// but failed under its failure policy — exits 3. A chaos harness can
/// tell "you typed it wrong" from "the data or run went bad".
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The invocation itself is wrong: unknown preset, unknown region,
    /// out-of-range value. Exits 2.
    Usage(String),
    /// The filesystem let us down (unreadable store, unwritable output).
    /// Exits 1.
    Io(String),
    /// An input file exists but does not parse or fails validation
    /// (mangled store JSON, corrupt binary snapshot). Exits 3.
    InvalidInput(String),
    /// The pipeline ran and failed under its failure policy. Exits 3.
    Run(RunError),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => 2,
            Self::Io(_) => 1,
            Self::InvalidInput(_) | Self::Run(_) => 3,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) | Self::Io(msg) | Self::InvalidInput(msg) => f.write_str(msg),
            Self::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        Self::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
        assert_eq!(CliError::Io("gone".into()).exit_code(), 1);
        // Corrupt data shares exit 3 with failed runs: both mean "your
        // invocation was fine, the data wasn't".
        assert_eq!(CliError::InvalidInput("mangled".into()).exit_code(), 3);
        let run = CliError::Run(RunError::CoverageBelowFloor {
            succeeded: 3,
            shard_count: 8,
            min_shard_coverage: 0.9,
            quarantined: vec![1, 2, 4, 5, 7],
        });
        assert_eq!(run.exit_code(), 3);
        assert!(run.to_string().contains("coverage"));
    }
}
