//! `surveyor` — the command-line entry point. All logic lives in the
//! library ([`surveyor_cli`]) where it is unit tested.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use surveyor_cli::{run, Cli};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{}", surveyor_cli::args::USAGE);
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            // A malformed invocation is a usage error: exit 2.
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
