//! `surveyor` — the command-line entry point. All logic lives in the
//! library ([`surveyor_cli`]) where it is unit tested.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use surveyor_cli::{run, Cli};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", surveyor_cli::args::USAGE);
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("{}", surveyor_cli::version_string());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            // Every usage error — including a bare `surveyor` — goes to
            // stderr with exit 2, so scripts piping stdout never see it.
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(outcome) => {
            println!("{}", outcome.text);
            ExitCode::from(outcome.code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
