//! Command-line interface for the Surveyor subjective-property miner.
//!
//! ```text
//! surveyor mine   --preset table2 --out store.json [--seed N] [--rho N] [--shards N] [--report FILE|-]
//!                 [--region NAME] [--failure-policy failfast|degrade] [--min-shard-coverage F] [--chaos-seed N]
//! surveyor run    [--preset NAME] [mine flags...]
//! surveyor query  --store store.json --type city --property big [--negative] [--limit N]
//! surveyor combos --store store.json
//! surveyor corpus --preset table2 [--seed N] [--shard N] [--limit N]
//! surveyor link   --preset cities --attribute population [--seed N] [--rho N]
//! surveyor snapshot --preset table2 --out world.swire [--store store.json] [mine flags...]
//! surveyor update --snapshot base.swire --delta-preset table2-tail --out updated.swire [--seed N]
//!                 [--region NAME] [--warm exact|seeded] [--failure-policy failfast|degrade]
//!                 [--min-shard-coverage F] [--chaos-seed N]
//! surveyor load   --snapshot world.swire [--out store.json]
//! surveyor serve  --snapshot world.swire [--addr HOST:PORT] [--workers N] [--queue N] [--budget-ms N] [--debug-routes]
//! surveyor diff   --old a.swire --new b.swire [--format human|json]
//! ```
//!
//! Argument parsing and command execution live here so they are unit
//! testable; `main.rs` is a thin shim. Failures map to exit codes via
//! [`CliError::exit_code`]: usage errors exit 2 (printed to stderr),
//! I/O errors exit 1, and invalid or corrupt data — including a snapshot
//! that fails validation — or a pipeline failing under its failure
//! policy exits 3. `diff` additionally exits 1 when the snapshots
//! differ, carried through [`Outcome::code`] rather than an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use args::{
    Cli, Command, DiffFormat, FailurePolicyArg, MineArgs, ParseError, UpdateArgs, WarmModeArg,
};
pub use error::CliError;

/// The result of a successful command: the text to print plus the
/// process exit code. Almost every command exits 0 on success; `diff`
/// exits 1 when the snapshots differ (mirroring `bench diff`), which is
/// a *finding*, not a failure — hence not a [`CliError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Text for stdout.
    pub text: String,
    /// Process exit code.
    pub code: u8,
}

impl Outcome {
    /// A success outcome (exit 0).
    pub fn ok(text: String) -> Self {
        Self { text, code: 0 }
    }
}

/// The version banner `--version` prints.
pub fn version_string() -> String {
    format!("surveyor {}", env!("CARGO_PKG_VERSION"))
}

/// Runs a parsed command, returning the text to print and exit code.
pub fn run(cli: &Cli) -> Result<Outcome, CliError> {
    match &cli.command {
        Command::Mine(args) => commands::mine(args).map(Outcome::ok),
        Command::Query {
            store,
            type_name,
            property,
            negative,
            limit,
        } => commands::query(store, type_name, property, *negative, *limit).map(Outcome::ok),
        Command::Combos { store } => commands::combos(store).map(Outcome::ok),
        Command::Corpus {
            preset,
            seed,
            shard,
            limit,
        } => commands::corpus(preset, *seed, *shard, *limit).map(Outcome::ok),
        Command::Link {
            preset,
            attribute,
            seed,
            rho,
        } => commands::link(preset, attribute, *seed, *rho).map(Outcome::ok),
        Command::Snapshot { args, out, store } => {
            commands::snapshot(args, out, store.as_deref()).map(Outcome::ok)
        }
        Command::Update(args) => commands::update(args).map(Outcome::ok),
        Command::Load { snapshot, out } => {
            commands::load(snapshot, out.as_deref()).map(Outcome::ok)
        }
        Command::Serve {
            snapshot,
            addr,
            workers,
            queue,
            budget_ms,
            debug_routes,
        } => commands::serve(snapshot, addr, *workers, *queue, *budget_ms, *debug_routes)
            .map(Outcome::ok),
        Command::Diff { old, new, format } => {
            let (text, identical) = commands::diff(old, new, *format)?;
            Ok(Outcome {
                text,
                code: u8::from(!identical),
            })
        }
    }
}
