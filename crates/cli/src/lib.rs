//! Command-line interface for the Surveyor subjective-property miner.
//!
//! ```text
//! surveyor mine   --preset table2 --out store.json [--seed N] [--rho N] [--shards N] [--report FILE|-]
//! surveyor run    [--preset NAME] [--out FILE] [--seed N] [--rho N] [--shards N] [--report FILE|-]
//! surveyor query  --store store.json --type city --property big [--negative] [--limit N]
//! surveyor combos --store store.json
//! surveyor corpus --preset table2 [--seed N] [--shard N] [--limit N]
//! surveyor link   --preset cities --attribute population [--seed N] [--rho N]
//! ```
//!
//! Argument parsing and command execution live here so they are unit
//! testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};

/// Runs a parsed command, returning the text to print.
pub fn run(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Mine {
            preset,
            out,
            seed,
            rho,
            shards,
            report,
        } => commands::mine(
            preset,
            out.as_deref(),
            *seed,
            *rho,
            *shards,
            report.as_deref(),
        ),
        Command::Query {
            store,
            type_name,
            property,
            negative,
            limit,
        } => commands::query(store, type_name, property, *negative, *limit),
        Command::Combos { store } => commands::combos(store),
        Command::Corpus {
            preset,
            seed,
            shard,
            limit,
        } => commands::corpus(preset, *seed, *shard, *limit),
        Command::Link {
            preset,
            attribute,
            seed,
            rho,
        } => commands::link(preset, attribute, *seed, *rho),
    }
}
