//! Command-line interface for the Surveyor subjective-property miner.
//!
//! ```text
//! surveyor mine   --preset table2 --out store.json [--seed N] [--rho N] [--shards N] [--report FILE|-]
//!                 [--region NAME] [--failure-policy failfast|degrade] [--min-shard-coverage F] [--chaos-seed N]
//! surveyor run    [--preset NAME] [mine flags...]
//! surveyor query  --store store.json --type city --property big [--negative] [--limit N]
//! surveyor combos --store store.json
//! surveyor corpus --preset table2 [--seed N] [--shard N] [--limit N]
//! surveyor link   --preset cities --attribute population [--seed N] [--rho N]
//! surveyor snapshot --preset table2 --out world.swire [--store store.json] [mine flags...]
//! surveyor load   --snapshot world.swire [--out store.json]
//! ```
//!
//! Argument parsing and command execution live here so they are unit
//! testable; `main.rs` is a thin shim. Failures map to exit codes via
//! [`CliError::exit_code`]: usage errors exit 2, I/O errors exit 1, and
//! invalid or corrupt data — including a snapshot that fails validation —
//! or a pipeline failing under its failure policy exits 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use args::{Cli, Command, FailurePolicyArg, MineArgs, ParseError};
pub use error::CliError;

/// Runs a parsed command, returning the text to print.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Mine(args) => commands::mine(args),
        Command::Query {
            store,
            type_name,
            property,
            negative,
            limit,
        } => commands::query(store, type_name, property, *negative, *limit),
        Command::Combos { store } => commands::combos(store),
        Command::Corpus {
            preset,
            seed,
            shard,
            limit,
        } => commands::corpus(preset, *seed, *shard, *limit),
        Command::Link {
            preset,
            attribute,
            seed,
            rho,
        } => commands::link(preset, attribute, *seed, *rho),
        Command::Snapshot { args, out, store } => commands::snapshot(args, out, store.as_deref()),
        Command::Load { snapshot, out } => commands::load(snapshot, out.as_deref()),
    }
}
