//! Regression tests: serialized observability artifacts must not depend on
//! the order in which metrics were registered or workers finished.
//!
//! The registry's hot-path maps are hash maps (fast, arbitrary iteration
//! order); [`MetricsRegistry::report`] is the boundary where that order is
//! laundered into sorted form. These tests pin that boundary: if someone
//! swaps a `BTreeMap` back to a hash map in the report path, or stops
//! sorting EM groups, the JSON diverges between insertion orders and these
//! tests fail.

use surveyor_obs::{EmGroupReport, MetricsRegistry, RunReport};

fn em_group(type_name: &str, property: &str, entities: u64) -> EmGroupReport {
    EmGroupReport {
        type_name: type_name.to_owned(),
        property: property.to_owned(),
        entities,
        iterations: 7,
        converged: "tolerance".to_owned(),
        log_likelihood: -12.5,
        final_delta: 1e-7,
        q_trace: vec![-20.0, -13.0, -12.5],
        delta_trace: vec![0.5, 0.1, 1e-7],
    }
}

/// Populates a registry with the same facts in the caller's chosen order.
fn populate(names: &[&str], groups: &[(&str, &str, u64)]) -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for name in names {
        // Values derive from the name, not the position, so the same facts
        // land in the registry no matter the registration order.
        let v = name.len() as u64;
        reg.add(&format!("counter.{name}"), v * 10);
        reg.set_gauge(&format!("gauge.{name}"), v as f64 + 0.25);
        reg.observe(&format!("hist.{name}"), v as f64);
    }
    for &(t, p, n) in groups {
        reg.record_em_group(em_group(t, p, n));
    }
    reg
}

#[test]
fn report_json_is_independent_of_registration_order() {
    let names = ["statements", "documents", "entities", "retries"];
    let groups = [
        ("city", "safe", 40),
        ("animal", "cute", 12),
        ("city", "big", 9),
    ];

    let forward = populate(&names, &groups).report();

    let mut rev_names = names;
    rev_names.reverse();
    let mut rev_groups = groups;
    rev_groups.reverse();
    let reverse = populate(&rev_names, &rev_groups).report();

    assert_eq!(forward, reverse);
    assert_eq!(forward.to_json(), reverse.to_json());
}

#[test]
fn report_diff_is_stable_across_insertion_orders() {
    let names = ["alpha", "beta", "gamma"];
    let groups = [("city", "safe", 5)];
    let current = populate(&names, &groups);
    // Perturb one counter so the diff has content to render.
    current.add("counter.beta", 3);
    let current = current.report();

    let mut rev = names;
    rev.reverse();
    let baseline = populate(&rev, &groups).report();

    let diff = current.diff(&baseline);
    assert!(
        diff.contains("counter.beta"),
        "diff should report the perturbed counter:\n{diff}"
    );
    // Diffing in both registration orders yields byte-identical text.
    let baseline_fwd = populate(&names, &groups).report();
    assert_eq!(diff, current.diff(&baseline_fwd));
}

#[test]
fn report_round_trips_through_json_in_sorted_order() {
    let reg = populate(&["zulu", "alpha", "mike"], &[("animal", "cute", 3)]);
    let report = reg.report();
    let restored = RunReport::from_json(&report.to_json()).expect("round trip");
    assert_eq!(report, restored);
    // Counter keys come back sorted — BTreeMap order, not insertion order.
    let keys: Vec<&String> = report.counters.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
