//! Cross-thread behavior of the metrics registry: the registry is shared
//! by extraction and interpretation workers, so counter increments,
//! histogram observations, and phase records must all merge losslessly
//! under contention.

use std::sync::Arc;
use std::time::Duration;
use surveyor_obs::MetricsRegistry;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let reg = Arc::new(MetricsRegistry::new());
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 10_000;

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                // Resolve the handle once, like a hot loop should.
                let counter = reg.counter("docs");
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
                reg.add("shards", 1);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(reg.counter_value("docs"), THREADS as u64 * INCREMENTS);
    assert_eq!(reg.counter_value("shards"), THREADS as u64);
}

#[test]
fn concurrent_histogram_and_phase_records_merge() {
    let reg = Arc::new(MetricsRegistry::new());
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 250;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.observe("em.iterations", (t * PER_THREAD + i) as f64);
                }
                reg.record_phase("model", Duration::from_millis(1), PER_THREAD);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = reg.report();
    let hist = &report.histograms["em.iterations"];
    assert_eq!(hist.count, THREADS * PER_THREAD);
    assert_eq!(hist.min, 0.0);
    assert_eq!(hist.max, (THREADS * PER_THREAD - 1) as f64);

    // All four per-worker slices merged into one phase row.
    assert_eq!(report.phases.len(), 1);
    let model = report.phase("model").unwrap();
    assert_eq!(model.items, THREADS * PER_THREAD);
    assert!((model.seconds - 0.004).abs() < 1e-3);
}
