//! The thread-safe metrics registry and its phase-span guard.

use crate::histogram::Histogram;
use crate::report::{EmGroupReport, PhaseReport, RunReport, REPORT_VERSION};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A handle to a named counter: a shared atomic, so incrementing never
/// touches the registry's maps. Clone freely; clones point at the same
/// underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One accumulated phase: repeated records under the same name merge by
/// summing seconds and items, so per-worker CPU slices report as one row.
#[derive(Debug, Clone, Default)]
struct PhaseAccum {
    name: String,
    seconds: f64,
    items: u64,
}

/// Fault-tolerance accounting for one run, stamped by the pipeline when
/// it runs under a failure policy and copied verbatim into the v2 fields
/// of [`RunReport`] — so a degraded answer is never silent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSummary {
    /// Fraction of shards whose evidence reached the output, in `[0, 1]`.
    pub coverage: f64,
    /// Total shard retry attempts.
    pub retries: u64,
    /// Quarantined shard indices, sorted.
    pub quarantined_shards: Vec<usize>,
}

/// A thread-safe registry of counters, gauges, histograms, phase
/// records, and EM group telemetry — one per observed pipeline run.
///
/// All methods take `&self`; the registry is shared across worker
/// threads behind an `Arc`. Lookup by name locks a map briefly; hot
/// paths should resolve a [`Counter`] handle once (or accumulate
/// locally) and flush aggregates on join.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<FxHashMap<String, Counter>>,
    gauges: Mutex<FxHashMap<String, f64>>,
    histograms: Mutex<FxHashMap<String, Arc<Histogram>>>,
    /// Phase records in first-recorded order (reports preserve it).
    phases: Mutex<Vec<PhaseAccum>>,
    em_groups: Mutex<Vec<EmGroupReport>>,
    fault: Mutex<Option<FaultSummary>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock();
        if let Some(c) = counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.insert(name.to_owned(), c.clone());
        c
    }

    /// Adds `n` to the counter `name` (created on first use).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .get(name)
            .map(Counter::value)
            .unwrap_or(0)
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        if let Some(h) = histograms.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new());
        histograms.insert(name.to_owned(), h.clone());
        h
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.histogram(name).observe(value);
    }

    /// Opens a phase span; the returned guard records wall time and item
    /// count under `name` when dropped. The [`crate::span!`] macro is
    /// shorthand for this call.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            name: name.to_owned(),
            start: Instant::now(),
            items: 0,
        }
    }

    /// Records a measured phase slice directly (the span guard calls
    /// this on drop). Slices recorded under one name accumulate.
    pub fn record_phase(&self, name: &str, duration: Duration, items: u64) {
        let mut phases = self.phases.lock();
        if let Some(p) = phases.iter_mut().find(|p| p.name == name) {
            p.seconds += duration.as_secs_f64();
            p.items += items;
        } else {
            phases.push(PhaseAccum {
                name: name.to_owned(),
                seconds: duration.as_secs_f64(),
                items,
            });
        }
    }

    /// Appends one (type, property) group's EM telemetry.
    pub fn record_em_group(&self, group: EmGroupReport) {
        self.em_groups.lock().push(group);
    }

    /// Stamps the run's fault-tolerance accounting (last write wins).
    pub fn record_fault_summary(&self, summary: FaultSummary) {
        *self.fault.lock() = Some(summary);
    }

    /// The stamped fault-tolerance accounting, if any.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.fault.lock().clone()
    }

    /// Snapshots everything into a versioned [`RunReport`]. Phases keep
    /// first-recorded order; maps are name-sorted; EM groups are sorted
    /// by (type, property) so worker completion order never leaks into
    /// the artifact.
    pub fn report(&self) -> RunReport {
        let phases = self
            .phases
            .lock()
            .iter()
            .map(|p| PhaseReport {
                name: p.name.clone(),
                seconds: p.seconds,
                items: p.items,
                per_second: if p.seconds > 0.0 {
                    p.items as f64 / p.seconds
                } else {
                    0.0
                },
            })
            .collect();
        let counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let gauges: BTreeMap<String, f64> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let histograms: BTreeMap<String, crate::HistogramSummary> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect();
        let mut em_groups: Vec<EmGroupReport> = self.em_groups.lock().clone();
        em_groups.sort_by(|a, b| {
            (a.type_name.as_str(), a.property.as_str())
                .cmp(&(b.type_name.as_str(), b.property.as_str()))
        });
        let fault = self.fault.lock().clone().unwrap_or_default();
        RunReport {
            version: REPORT_VERSION,
            phases,
            counters,
            gauges,
            histograms,
            em_groups,
            coverage: self.fault.lock().as_ref().map(|f| f.coverage),
            retries: fault.retries,
            quarantined_shards: fault.quarantined_shards,
        }
    }
}

/// Scope guard for one phase measurement; created by
/// [`MetricsRegistry::span`]. Records `(name, wall time, items)` into
/// the registry when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    start: Instant,
    items: u64,
}

impl SpanGuard<'_> {
    /// Sets the item count the phase processed (drives the derived
    /// throughput in reports). Last call wins.
    pub fn set_items(&mut self, items: u64) {
        self.items = items;
    }

    /// Adds to the item count.
    pub fn add_items(&mut self, items: u64) {
        self.items += items;
    }

    /// Wall time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .record_phase(&self.name, self.start.elapsed(), self.items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.add("docs", 3);
        let handle = reg.counter("docs");
        handle.inc();
        assert_eq!(reg.counter_value("docs"), 4);
        assert_eq!(reg.counter_value("never"), 0);
        reg.set_gauge("speedup", 1.98);
        assert_eq!(reg.gauge("speedup"), Some(1.98));
        assert_eq!(reg.gauge("never"), None);
    }

    #[test]
    fn span_records_phase_with_throughput() {
        let reg = MetricsRegistry::new();
        {
            let mut span = reg.span("extract");
            std::thread::sleep(Duration::from_millis(2));
            span.set_items(100);
        }
        let report = reg.report();
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert_eq!(p.name, "extract");
        assert!(p.seconds > 0.0);
        assert_eq!(p.items, 100);
        assert!(p.per_second > 0.0);
    }

    #[test]
    fn repeated_phase_records_accumulate() {
        let reg = MetricsRegistry::new();
        reg.record_phase("model", Duration::from_millis(10), 2);
        reg.record_phase("model", Duration::from_millis(30), 3);
        let report = reg.report();
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].items, 5);
        assert!((report.phases[0].seconds - 0.04).abs() < 1e-9);
    }

    #[test]
    fn phase_order_is_first_recorded() {
        let reg = MetricsRegistry::new();
        for name in ["extract", "group", "model", "decide", "index"] {
            reg.record_phase(name, Duration::from_micros(1), 1);
        }
        reg.record_phase("model", Duration::from_micros(1), 1);
        let report = reg.report();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["extract", "group", "model", "decide", "index"]);
    }
}
