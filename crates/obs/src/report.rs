//! The versioned run report: schema, rendering, and diffing.

use crate::histogram::HistogramSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Current report schema version. Bump on any breaking field change so
/// `bench diff` can refuse to compare incompatible artifacts.
///
/// v2 adds the fault-tolerance accounting (`coverage`, `retries`,
/// `quarantined_shards`); v1 reports parse with those fields defaulted,
/// so a v1 baseline still diffs against a v2 report.
pub const REPORT_VERSION: u32 = 2;

/// One pipeline phase: accumulated wall (or summed per-worker CPU) time
/// plus the item count it processed and the derived throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name (`extract`, `group`, `model`, `decide`, `index`, …).
    pub name: String,
    /// Accumulated seconds.
    pub seconds: f64,
    /// Items processed (documents, statements, combinations, …).
    pub items: u64,
    /// `items / seconds` (0 when no time was recorded).
    pub per_second: f64,
}

/// Per-(type, property) EM telemetry captured during interpretation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmGroupReport {
    /// Entity type name of the combination.
    pub type_name: String,
    /// Property surface form.
    pub property: String,
    /// Entities in the group (including never-mentioned ones).
    pub entities: u64,
    /// EM iterations of the winning restart.
    pub iterations: u64,
    /// Why EM stopped: `tolerance`, `max_iterations`, or `degenerate`.
    pub converged: String,
    /// Final mixture log-likelihood of the fitted parameters.
    pub log_likelihood: f64,
    /// Largest parameter movement in the final iteration.
    pub final_delta: f64,
    /// Expected complete-data log-likelihood `Q'` per iteration.
    pub q_trace: Vec<f64>,
    /// Max parameter delta per iteration.
    pub delta_trace: Vec<f64>,
}

/// A versioned snapshot of one observed pipeline run.
///
/// Serialized with `--report out.json`; the schema is stable per
/// [`REPORT_VERSION`] so tooling (`bench diff`) can compare runs
/// recorded by different builds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`REPORT_VERSION`] at write time).
    pub version: u32,
    /// Phases in first-recorded order.
    pub phases: Vec<PhaseReport>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// EM telemetry, sorted by (type, property).
    pub em_groups: Vec<EmGroupReport>,
    /// Shard coverage of the extraction phase in `[0, 1]` (v2; `None`
    /// for v1 reports and runs without a fault-tolerance layer).
    #[serde(default)]
    pub coverage: Option<f64>,
    /// Total shard retry attempts (v2; 0 for v1 reports).
    #[serde(default)]
    pub retries: u64,
    /// Quarantined shard indices, sorted (v2; empty for v1 reports).
    #[serde(default)]
    pub quarantined_shards: Vec<usize>,
}

impl RunReport {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable") // lint:allow(no-panic-in-lib): the report value tree holds only serializable primitives
    }

    /// Parses a report written by [`to_json`](Self::to_json). Errors on
    /// malformed JSON or a schema the struct cannot hold.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid run report: {e}"))
    }

    /// The phase named `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Renders the human-readable table (`--report -`).
    pub fn render(&self) -> String {
        let mut out = format!("run report (schema v{})\n\nphases:\n", self.version);
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>12} {:>14}",
            "phase", "seconds", "items", "items/s"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<10} {:>10.4} {:>12} {:>14.0}",
                p.name, p.seconds, p.items, p.per_second
            );
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name} = {value:.4}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} min={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
                    h.count, h.min, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if let Some(coverage) = self.coverage {
            out.push_str("\nfault tolerance:\n");
            let _ = writeln!(out, "  shard coverage = {coverage:.3}");
            let _ = writeln!(out, "  retries = {}", self.retries);
            let _ = writeln!(out, "  quarantined shards = {:?}", self.quarantined_shards);
        }
        if !self.em_groups.is_empty() {
            out.push_str("\nEM convergence:\n");
            let _ = writeln!(
                out,
                "  {:<12} {:<16} {:>8} {:>6} {:>15} {:<14}",
                "type", "property", "entities", "iters", "logL", "stopped"
            );
            for g in &self.em_groups {
                let _ = writeln!(
                    out,
                    "  {:<12} {:<16} {:>8} {:>6} {:>15.2} {:<14}",
                    g.type_name,
                    g.property,
                    g.entities,
                    g.iterations,
                    g.log_likelihood,
                    g.converged
                );
            }
        }
        out
    }

    /// Compares this run against a `baseline` report: per-phase time
    /// ratios, counter deltas, and (when present) fault-tolerance
    /// accounting. Known schema versions (1..=[`REPORT_VERSION`])
    /// compare against each other — a v1 baseline diffs against a v2
    /// report with the fault fields treated as absent; unknown (newer)
    /// versions are flagged rather than compared field-by-field.
    pub fn diff(&self, baseline: &RunReport) -> String {
        let known = 1..=REPORT_VERSION;
        if !known.contains(&self.version) || !known.contains(&baseline.version) {
            return format!(
                "schema mismatch: this report is v{}, baseline is v{} — not comparable",
                self.version, baseline.version
            );
        }
        let mut out = String::new();
        if self.version != baseline.version {
            let _ = writeln!(
                out,
                "note: comparing schema v{} against v{} (v1 reports carry no fault-tolerance fields)",
                self.version, baseline.version
            );
        }
        out.push_str("phase comparison (current vs baseline):\n");
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>12} {:>9}",
            "phase", "current s", "baseline s", "speedup"
        );
        for p in &self.phases {
            match baseline.phase(&p.name) {
                Some(b) if p.seconds > 0.0 && b.seconds > 0.0 => {
                    let _ = writeln!(
                        out,
                        "  {:<10} {:>12.4} {:>12.4} {:>8.2}x",
                        p.name,
                        p.seconds,
                        b.seconds,
                        b.seconds / p.seconds
                    );
                }
                Some(b) => {
                    let _ = writeln!(
                        out,
                        "  {:<10} {:>12.4} {:>12.4}        -",
                        p.name, p.seconds, b.seconds
                    );
                }
                None => {
                    let _ = writeln!(out, "  {:<10} {:>12.4}    (new phase)", p.name, p.seconds);
                }
            }
        }
        let changed: Vec<String> = self
            .counters
            .iter()
            .filter_map(|(name, &value)| {
                let base = baseline.counters.get(name).copied().unwrap_or(0);
                (value != base).then(|| {
                    format!(
                        "  {name}: {base} -> {value} ({:+})",
                        value as i64 - base as i64
                    )
                })
            })
            .collect();
        if !changed.is_empty() {
            out.push_str("counter changes:\n");
            for line in changed {
                out.push_str(&line);
                out.push('\n');
            }
        }
        if self.coverage.is_some() || baseline.coverage.is_some() {
            let show = |c: Option<f64>| c.map_or("-".to_owned(), |c| format!("{c:.3}"));
            let _ = writeln!(
                out,
                "fault tolerance: coverage {} -> {}, retries {} -> {}, quarantined {:?} -> {:?}",
                show(baseline.coverage),
                show(self.coverage),
                baseline.retries,
                self.retries,
                baseline.quarantined_shards,
                self.quarantined_shards,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::time::Duration;

    fn sample() -> RunReport {
        let reg = MetricsRegistry::new();
        reg.record_phase("extract", Duration::from_millis(100), 1000);
        reg.record_phase("group", Duration::from_millis(10), 1000);
        reg.add("extract.documents", 1000);
        reg.observe("em.iterations", 7.0);
        reg.set_gauge("speedup", 2.0);
        reg.record_em_group(EmGroupReport {
            type_name: "city".into(),
            property: "big".into(),
            entities: 500,
            iterations: 7,
            converged: "tolerance".into(),
            log_likelihood: -1234.5,
            final_delta: 1e-10,
            q_trace: vec![-2000.0, -1300.0, -1234.5],
            delta_trace: vec![0.5, 0.01, 1e-10],
        });
        reg.report()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let report = sample();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.version, REPORT_VERSION);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(RunReport::from_json("{").is_err());
        assert!(RunReport::from_json("[1, 2]").is_err());
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = sample().render();
        for needle in [
            "phases:",
            "extract",
            "counters:",
            "gauges:",
            "EM convergence:",
            "big",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn diff_reports_speedup_and_counter_changes() {
        let baseline = sample();
        let mut current = sample();
        current.phases[0].seconds = 0.05; // 2x faster extraction
        *current.counters.get_mut("extract.documents").unwrap() = 1100;
        let text = current.diff(&baseline);
        assert!(text.contains("2.00x"), "{text}");
        assert!(text.contains("1000 -> 1100 (+100)"), "{text}");
    }

    #[test]
    fn diff_refuses_unknown_versions() {
        let baseline = sample();
        let mut current = sample();
        current.version = REPORT_VERSION + 1;
        assert!(current.diff(&baseline).contains("schema mismatch"));
        current.version = 0;
        assert!(current.diff(&baseline).contains("schema mismatch"));
    }

    /// A v1 report as written by the previous schema: no fault fields.
    fn v1_json() -> String {
        let mut value = serde_json::to_value(sample()).unwrap();
        let serde_json::Value::Object(ref mut fields) = value else {
            panic!("report serializes as an object");
        };
        fields.insert("version".to_owned(), serde_json::to_value(1u32).unwrap());
        for v2_field in ["coverage", "retries", "quarantined_shards"] {
            fields.remove(v2_field);
        }
        serde_json::to_string_pretty(&value).unwrap()
    }

    #[test]
    fn v1_report_parses_with_defaulted_fault_fields() {
        let json = v1_json();
        assert!(!json.contains("coverage"), "fixture still has v2 fields");
        let report = RunReport::from_json(&json).unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.coverage, None);
        assert_eq!(report.retries, 0);
        assert!(report.quarantined_shards.is_empty());
    }

    #[test]
    fn v2_report_diffs_against_v1_baseline() {
        let baseline = RunReport::from_json(&v1_json()).unwrap();
        let mut current = sample();
        current.coverage = Some(0.875);
        current.retries = 3;
        current.quarantined_shards = vec![2, 5];
        let text = current.diff(&baseline);
        assert!(text.contains("comparing schema v2 against v1"), "{text}");
        assert!(text.contains("phase comparison"), "{text}");
        assert!(text.contains("coverage - -> 0.875"), "{text}");
    }

    #[test]
    fn fault_summary_round_trips_and_renders() {
        let reg = MetricsRegistry::new();
        reg.record_phase("extract", Duration::from_millis(10), 100);
        reg.record_fault_summary(crate::FaultSummary {
            coverage: 0.75,
            retries: 4,
            quarantined_shards: vec![1, 3],
        });
        let report = reg.report();
        assert_eq!(report.version, REPORT_VERSION);
        assert_eq!(report.coverage, Some(0.75));
        assert_eq!(report.retries, 4);
        assert_eq!(report.quarantined_shards, vec![1, 3]);
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        let text = report.render();
        assert!(text.contains("fault tolerance:"), "{text}");
        assert!(text.contains("quarantined shards = [1, 3]"), "{text}");
    }
}
