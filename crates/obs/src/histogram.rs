//! Value histograms with nearest-rank percentiles.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A recording histogram: observations are kept exactly (the pipeline
/// records thousands of values per run, not millions), and percentiles
/// are computed on demand by nearest rank over the sorted values.
#[derive(Debug, Default)]
pub struct Histogram {
    values: Mutex<Vec<f64>>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.values.lock().push(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.values.lock().len() as u64
    }

    /// The `q`-quantile (`0 < q <= 1`) by the nearest-rank definition:
    /// the `ceil(q·n)`-th smallest observation. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let mut values = self.values.lock().clone();
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        Some(values[rank - 1])
    }

    /// A serializable summary (count, extrema, mean, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        let mut values = self.values.lock().clone();
        if values.is_empty() {
            return HistogramSummary::default();
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let rank = |q: f64| values[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        HistogramSummary {
            count: n as u64,
            min: values[0],
            max: values[n - 1],
            mean: values.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
        }
    }
}

/// Point-in-time digest of a [`Histogram`], as embedded in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_empty_summary() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn nearest_rank_percentiles() {
        let h = Histogram::new();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.percentile(0.50), Some(50.0));
        assert_eq!(h.percentile(0.90), Some(90.0));
        assert_eq!(h.percentile(0.99), Some(99.0));
        assert_eq!(h.percentile(1.0), Some(100.0));
        // Tiny quantiles clamp to the smallest observation.
        assert_eq!(h.percentile(0.001), Some(1.0));
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (100, 1.0, 100.0));
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let h = Histogram::new();
        h.observe(7.0);
        assert_eq!(h.percentile(0.5), Some(7.0));
        assert_eq!(h.percentile(0.99), Some(7.0));
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99), (7.0, 7.0, 7.0));
    }
}
