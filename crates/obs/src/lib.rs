//! Observability layer for the Surveyor pipeline.
//!
//! The paper's evaluation (§7) hinges on quantities the pipeline would
//! otherwise keep to itself: per-phase wall time, extraction throughput,
//! and how many EM iterations each (type, property) combination needed
//! before converging. This crate makes those observable without adding
//! any third-party dependency (only the workspace's vendored shims):
//!
//! - [`MetricsRegistry`] — a thread-safe registry of named counters,
//!   gauges, and histograms. Counter handles are plain atomics, so hot
//!   paths increment worker-local integers and flush once on join.
//! - [`SpanGuard`] (via [`MetricsRegistry::span`] or the [`span!`]
//!   macro) — a scope guard that records a named phase's wall time and
//!   item count on drop; repeated records under one name accumulate, so
//!   per-worker CPU slices sum into a single phase row.
//! - [`RunReport`] — a versioned, serializable snapshot of everything
//!   the registry collected, plus the per-group EM telemetry pushed by
//!   the interpretation phase. Reports render as a human-readable table,
//!   round-trip through JSON, and diff against a baseline report.
//!
//! ## Typical wiring
//!
//! ```
//! use surveyor_obs::{span, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! {
//!     let mut span = span!(registry, "extract");
//!     // ... do the work ...
//!     registry.add("extract.documents", 128);
//!     span.set_items(128);
//! } // span drop records wall time + throughput
//! let report = registry.report();
//! assert_eq!(report.phases[0].name, "extract");
//! assert_eq!(report.counters["extract.documents"], 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod report;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, FaultSummary, MetricsRegistry, SpanGuard};
pub use report::{EmGroupReport, PhaseReport, RunReport, REPORT_VERSION};

/// Opens a phase span on a registry: `span!(registry, "extract")` is
/// shorthand for [`MetricsRegistry::span`]. The guard records the phase
/// on drop.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
}
